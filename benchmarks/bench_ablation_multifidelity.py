"""Ablation: multi-fidelity evaluation vs full-fidelity everywhere.

The paper's search evaluates coarse grids with short simulations and
reserves "more accurate simulation results (longer run times)" for the
refined regions.  This ablation runs the identical search twice — once
with the normal fidelity schedule and once forcing every evaluation to
the top fidelity — and compares evaluator wall time against result
quality.  The multi-fidelity schedule should reach an equivalent winner
in a fraction of the simulation time.
"""

from __future__ import annotations

import pytest

from repro.core import BERThresholdCurve, SearchConfig
from repro.core.evaluation import Evaluator
from repro.core.search import MetacoreSearch
from repro.viterbi import (
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    viterbi_design_space,
)
from repro.viterbi.metacore import normalize_viterbi_point


class _FullFidelityEvaluator:
    """Wrapper forcing every evaluation to the inner top fidelity."""

    def __init__(self, inner: Evaluator) -> None:
        self._inner = inner
        self.max_fidelity = 0  # the search sees a single level

    def evaluate(self, point, fidelity):
        return self._inner.evaluate(point, self._inner.max_fidelity)


def _spec() -> ViterbiSpec:
    return ViterbiSpec(
        throughput_bps=2e6,
        ber_curve=BERThresholdCurve.single(2.0, 1e-3),
    )


def _run_pair():
    spec = _spec()
    config = SearchConfig(max_resolution=2, refine_top_k=3)
    # A reduced space keeps the deliberately expensive full-fidelity
    # arm affordable; the comparison is about *scheduling*, not scope.
    space = viterbi_design_space(
        fixed={"G": "standard", "N": 1, "Q": "adaptive", "R2": 3}
    )

    multi = MetacoreSearch(
        space, spec.goal(), ViterbiMetacoreEvaluator(spec),
        config=config, normalizer=normalize_viterbi_point,
    ).run()
    full = MetacoreSearch(
        space, spec.goal(),
        _FullFidelityEvaluator(ViterbiMetacoreEvaluator(spec)),
        config=config, normalizer=normalize_viterbi_point,
    ).run()
    return multi, full


@pytest.mark.benchmark(group="ablation-multifidelity")
def test_ablation_multifidelity_schedule(benchmark, report):
    multi, full = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    report("Ablation — multi-fidelity schedule vs all-top-fidelity "
           "(BER<=1e-3 @ 2 dB, 2 Mbps)")
    for label, result in (("multi-fidelity", multi), ("full-fidelity", full)):
        area = (
            f"{result.best_metrics['area_mm2']:.2f}"
            if result.feasible else "infeasible"
        )
        report(
            f"  {label:15s} evals={result.log.n_evaluations:4d} "
            f"sim-time={result.log.total_time_s:7.1f}s area={area}"
        )
    assert multi.feasible and full.feasible
    # Equivalent result quality...
    assert (
        multi.best_metrics["area_mm2"]
        <= full.best_metrics["area_mm2"] * 1.15
    )
    # ...at a clearly lower simulation cost.  (The multi-fidelity arm
    # still pays for threshold-resolving confirmations at the end, so
    # the saving is a solid fraction rather than an order of magnitude.)
    assert multi.log.total_time_s < 0.85 * full.log.total_time_s
