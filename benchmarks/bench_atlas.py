"""Benchmark: warm-started search speedup from the design atlas.

Runs the real Viterbi facade search twice against a fresh atlas and
writes ``BENCH_atlas.json`` at the repo root:

- ``cold_s``  — first search of the scenario (empty library), the
  price every query pays without an atlas;
- ``warm_s``  — the identical search warm-started from the library
  the cold run just populated (exact-fingerprint replay preloads the
  evaluation cache, so no decoder ever runs);
- ``recommend_s`` — mean latency of a zero-evaluation ``recommend``
  answered straight from the stored Pareto frontier.

The acceptance bar is the subsystem's contract: the warm search must
select the **same design** as the cold one (bit-reproducible warm
start) at **>= MIN_SPEEDUP x** the speed, and a covered ``recommend``
must answer without touching the evaluator.  The scenario is small so
the benchmark finishes in seconds; the speedup grows with scenario
size because replay cost is O(records) while search cost is
O(evaluations x simulation).

Run with::

    PYTHONPATH=src python benchmarks/bench_atlas.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core import BERThresholdCurve, SearchConfig
from repro.viterbi import ViterbiMetaCore, ViterbiSpec

#: Pinned scenario: small but real (decoder + BER simulation runs).
FIXED = {"G": "standard", "N": 1, "K": 3, "Q": "hard"}
CONFIG = SearchConfig(max_resolution=1, refine_top_k=1)
RECOMMEND_REPEATS = 20

#: Warm search must beat cold by at least this factor.
MIN_SPEEDUP = 2.0


def build(atlas_path: str) -> ViterbiMetaCore:
    return ViterbiMetaCore(
        ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2)),
        fixed=dict(FIXED),
        config=CONFIG,
        atlas_path=atlas_path,
    )


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    with tempfile.TemporaryDirectory() as tmp:
        metacore = build(str(Path(tmp) / "atlas.jsonl"))

        start = time.perf_counter()
        cold = metacore.search()
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = metacore.search()
        warm_s = time.perf_counter() - start

        recommend_start = time.perf_counter()
        for _ in range(RECOMMEND_REPEATS):
            recommendation = metacore.recommend()
        recommend_s = (
            time.perf_counter() - recommend_start
        ) / RECOMMEND_REPEATS

    same_design = warm.best_point == cold.best_point
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report = {
        "benchmark": "design-atlas warm-start speedup (Viterbi facade search)",
        "fixed": FIXED,
        "cold_s": round(cold_s, 4),
        "cold_evaluations": cold.log.n_evaluations,
        "warm_s": round(warm_s, 4),
        "warm_evaluations": warm.log.n_evaluations,
        "warm_replayed": warm.atlas_replayed,
        "warm_seeds": warm.atlas_seeds,
        "speedup": round(speedup, 1),
        "same_design": same_design,
        "recommend_s": round(recommend_s, 6),
        "recommend_source": recommendation.source,
        "recommend_evaluations": recommendation.n_evaluations,
    }
    out = repo_root / "BENCH_atlas.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    ok = (
        same_design
        and speedup >= MIN_SPEEDUP
        and recommendation.source == "atlas"
        and recommendation.n_evaluations == 0
    )
    if not ok:
        print(
            f"FAIL: warm search must reproduce the cold selection "
            f"(got same_design={same_design}) at >= {MIN_SPEEDUP:.0f}x "
            f"speed (got {speedup:.1f}x), and recommend must answer "
            f"from the library with zero evaluations (got "
            f"source={recommendation.source!r}, "
            f"n={recommendation.n_evaluations})",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
