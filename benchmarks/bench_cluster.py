"""Benchmark: cluster routing throughput and hedged tail latency.

Measures what the fingerprint-sharded router actually buys:

- **throughput scaling** — the same 96-eval workload (8 specification
  sessions, unique points) driven by 8 concurrent clients against a
  direct single-node service and against 1/2/4 router replicas,
  writing evals/s for each.  The hard gate: 4-replica throughput must
  be strictly above single-node.
- **hedged tail latency** — on a 4-replica cluster with one replica
  made a deliberate straggler, per-request p50/p99 with hedging off
  vs on (`hedge_after_s=0.1`).  Hedging should cut the p99 paid by
  sessions the ring happens to home on the slow node.

The evaluator is *simulated*, following ``bench_serve.py``: metrics
are deterministic hash-derived pseudo-values (so any routing mistake
would surface as a wrong byte), and cost is a ``time.sleep`` of
``BATCH_SETUP + PER_POINT * n`` per batch.  Each node's capacity is
its service's ``eval_threads`` pool (2 here) — the per-node bound that
makes "more nodes" mean "more capacity" — which a sleep bill renders
faithfully on the single-CPU CI boxes where CPU-bound work could
never show overlap.  Everything else — sockets, the router, the ring,
hedging, micro-batching — is exactly the production path.

Results land in ``BENCH_cluster.json`` at the repo root.  Run with::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import hashlib
import json
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster import ClusterHandle, RouterConfig
from repro.serve import ServeHandle, ServiceConfig

BATCH_SETUP = 0.020
PER_POINT = 0.004
STRAGGLER_EXTRA = 0.25
HEDGE_AFTER_S = 0.1

SESSIONS = [f"bench-spec-{i}" for i in range(8)]
CLIENTS = 8
POINTS_PER_CLIENT = 12
EVAL_THREADS = 2


def simulated_metrics(point: Dict[str, float], fidelity: int) -> Dict[str, float]:
    """Deterministic pseudo-metrics: a pure function of the request."""
    payload = json.dumps([point, fidelity], sort_keys=True).encode()
    digest = hashlib.sha256(payload).digest()
    return {
        "area_mm2": 0.1 + digest[0] / 255.0,
        "cycles_per_bit": 10.0 + digest[1],
        "spec_violation": 0.0,
    }


class SimulatedClusterEvaluator:
    """Sleep-billed stand-in for one node's share of a cost engine."""

    max_fidelity = 2

    def __init__(self, extra_s: float = 0.0) -> None:
        self.extra_s = extra_s
        self.n_evaluated = 0
        self._lock = threading.Lock()

    def evaluate(self, point, fidelity):
        return self.evaluate_many([point], fidelity)[0]

    def evaluate_many(self, points, fidelity):
        time.sleep(BATCH_SETUP + PER_POINT * len(points) + self.extra_s)
        with self._lock:
            self.n_evaluated += len(points)
        return [simulated_metrics(dict(p), fidelity) for p in points]


def workload() -> List[List[Dict[str, float]]]:
    """Unique (session, point) pairs partitioned across client threads."""
    jobs: List[List[Dict[str, float]]] = [[] for _ in range(CLIENTS)]
    for c in range(CLIENTS):
        for i in range(POINTS_PER_CLIENT):
            jobs[c].append(
                {
                    "session": SESSIONS[(c + i) % len(SESSIONS)],
                    "point": {"client": float(c), "index": float(i)},
                }
            )
    return jobs


def drive(make_client, record_latency=None) -> float:
    """Run the full workload through concurrent clients; returns seconds."""
    jobs = workload()
    errors: List[BaseException] = []

    def run(client_jobs) -> None:
        try:
            with make_client() as client:
                for job in client_jobs:
                    t0 = time.perf_counter()
                    metrics = client.eval(
                        job["point"], fidelity=1, session=job["session"]
                    )
                    if record_latency is not None:
                        record_latency(time.perf_counter() - t0)
                    expected = simulated_metrics(job["point"], 1)
                    assert metrics == expected, (metrics, expected)
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=run, args=(j,)) for j in jobs]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return elapsed


def service_config() -> ServiceConfig:
    return ServiceConfig(eval_threads=EVAL_THREADS)


def register_sessions(handle: ServeHandle, extra_s: float = 0.0) -> None:
    for name in SESSIONS:
        handle.service.register_evaluator(
            name, SimulatedClusterEvaluator(extra_s)
        )


def bench_single_node() -> Dict[str, float]:
    with ServeHandle(service_config()) as handle:
        register_sessions(handle)
        elapsed = drive(handle.client)
    total = CLIENTS * POINTS_PER_CLIENT
    return {"seconds": elapsed, "evals_per_s": total / elapsed}


def bench_cluster(replicas: int) -> Dict[str, float]:
    cluster = ClusterHandle(
        service_config(),
        replicas=replicas,
        router_config=RouterConfig(hedge_after_s=None),
    )
    with cluster:
        for replica in cluster.replica_handles:
            register_sessions(replica)
        elapsed = drive(cluster.client)
    total = CLIENTS * POINTS_PER_CLIENT
    return {"seconds": elapsed, "evals_per_s": total / elapsed}


def bench_hedging(hedge_after_s: Optional[float]) -> Dict[str, float]:
    """4 replicas, one straggler; per-request latency distribution."""
    cluster = ClusterHandle(
        service_config(),
        replicas=4,
        router_config=RouterConfig(hedge_after_s=hedge_after_s),
    )
    latencies: List[float] = []
    lock = threading.Lock()

    def record(latency_s: float) -> None:
        with lock:
            latencies.append(latency_s)

    with cluster:
        for index, replica in enumerate(cluster.replica_handles):
            # replica-0 pays an extra 250 ms per batch: the straggler
            # every production cluster eventually contains.
            register_sessions(
                replica, extra_s=STRAGGLER_EXTRA if index == 0 else 0.0
            )
        drive(cluster.client, record_latency=record)
        router = cluster.router
        hedges = router.metrics.counter("cluster.hedges").value
        hedge_wins = router.metrics.counter("cluster.hedge_wins").value
    latencies.sort()
    return {
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": latencies[int(0.99 * (len(latencies) - 1))] * 1e3,
        "max_ms": latencies[-1] * 1e3,
        "hedges": hedges,
        "hedge_wins": hedge_wins,
    }


def main() -> int:
    results: Dict[str, object] = {
        "workload": {
            "clients": CLIENTS,
            "points_per_client": POINTS_PER_CLIENT,
            "sessions": len(SESSIONS),
            "fidelity": 1,
            "batch_setup_s": BATCH_SETUP,
            "per_point_s": PER_POINT,
            "eval_threads_per_node": EVAL_THREADS,
            "straggler_extra_s": STRAGGLER_EXTRA,
            "hedge_after_s": HEDGE_AFTER_S,
        }
    }

    print("single node (direct, no router)...")
    single = bench_single_node()
    results["single_node"] = single
    print(f"  {single['evals_per_s']:.1f} evals/s ({single['seconds']:.2f}s)")

    throughput = {"single_node": single}
    for replicas in (1, 2, 4):
        print(f"router with {replicas} replica(s)...")
        r = bench_cluster(replicas)
        throughput[f"router_{replicas}"] = r
        print(f"  {r['evals_per_s']:.1f} evals/s ({r['seconds']:.2f}s)")
    results["throughput"] = throughput

    print("hedging off (4 replicas, one straggler)...")
    off = bench_hedging(None)
    print(f"  p50 {off['p50_ms']:.0f}ms  p99 {off['p99_ms']:.0f}ms")
    print(f"hedging on after {HEDGE_AFTER_S * 1e3:.0f}ms...")
    on = bench_hedging(HEDGE_AFTER_S)
    print(
        f"  p50 {on['p50_ms']:.0f}ms  p99 {on['p99_ms']:.0f}ms  "
        f"({on['hedges']:.0f} hedges, {on['hedge_wins']:.0f} wins)"
    )
    results["hedging"] = {"off": off, "on": on}

    speedup = (
        throughput["router_4"]["evals_per_s"] / single["evals_per_s"]
    )
    tail_cut = off["p99_ms"] / on["p99_ms"] if on["p99_ms"] else 1.0
    results["speedup_4_replicas"] = speedup
    results["p99_tail_cut"] = tail_cut
    print(f"4-replica speedup over single node: {speedup:.2f}x")
    print(f"hedging p99 tail cut: {tail_cut:.2f}x")

    out = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if throughput["router_4"]["evals_per_s"] <= single["evals_per_s"]:
        print("FAIL: 4-replica throughput did not beat single node")
        return 1
    if on["hedge_wins"] < 1:
        print("FAIL: hedging never won against the straggler")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
