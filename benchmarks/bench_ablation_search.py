"""Ablation: multiresolution search vs baselines (paper Sec. 4.4).

The paper motivates the multiresolution search with the infeasibility
of exhaustive enumeration over ~10^8 points and justifies its greedy
pruning with speed.  This ablation runs the multiresolution search,
random sampling at the same evaluation budget, and simulated annealing
on the identical Viterbi cost evaluator, then compares result quality
and evaluation counts.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BERThresholdCurve,
    RandomSearch,
    SearchConfig,
    SimulatedAnnealing,
)
from repro.viterbi import (
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
)
from repro.viterbi.metacore import normalize_viterbi_point


def _spec() -> ViterbiSpec:
    return ViterbiSpec(
        throughput_bps=2e6,
        ber_curve=BERThresholdCurve.single(3.0, 1e-3),
    )


def _run_all():
    spec = _spec()
    metacore = ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=SearchConfig(max_resolution=2, refine_top_k=3),
    )
    multires = metacore.search()
    budget = multires.log.n_evaluations
    space = metacore.design_space()
    random_result = RandomSearch(
        space, spec.goal(), ViterbiMetacoreEvaluator(spec),
        fidelity=0, normalizer=normalize_viterbi_point,
    ).run(n_samples=budget, seed=11)
    annealing_result = SimulatedAnnealing(
        space, spec.goal(), ViterbiMetacoreEvaluator(spec),
        fidelity=0, normalizer=normalize_viterbi_point,
    ).run(n_steps=budget, seed=11)
    return multires, random_result, annealing_result, budget


@pytest.mark.benchmark(group="ablation-search")
def test_ablation_search_strategies(benchmark, report):
    multires, random_result, annealing_result, budget = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )
    report("Ablation — search strategy comparison (Viterbi MetaCore, "
           "BER<=1e-3 @ 3 dB, 2 Mbps)")
    report(f"{'method':>16s} {'evals':>6s} {'feasible':>9s} {'area mm^2':>10s}")
    for result in (multires, random_result, annealing_result):
        area = (
            f"{result.best_metrics['area_mm2']:.2f}"
            if result.best is not None and result.feasible
            else "-"
        )
        report(
            f"{result.method:>16s} {result.log.n_evaluations:6d} "
            f"{str(result.feasible):>9s} {area:>10s}"
        )
    # The multiresolution search must find a feasible instance within
    # its (small) budget...
    assert multires.feasible
    assert budget < 2000
    # ...and match or beat both baselines at comparable budgets.
    if random_result.feasible:
        assert (
            multires.best_metrics["area_mm2"]
            <= random_result.best_metrics["area_mm2"] * 1.15
        )
    if annealing_result.feasible:
        assert (
            multires.best_metrics["area_mm2"]
            <= annealing_result.best_metrics["area_mm2"] * 1.15
        )
