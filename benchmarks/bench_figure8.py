"""Figure 8: BER for hard / soft / multiresolution Viterbi decoding.

Paper setting: K=5, L=5K, R1=1 bit, R2=3 bit with adaptive
quantization.  Paper result: "on average, using 4 high-resolution paths
(M=4) results in a 64% improvement in BER while using 8 high-resolution
paths (M=8) results in 82% improvement over pure hard-decision
decoding", with full soft decoding better still.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.viterbi import BERSimulator, ConvolutionalEncoder, build_decoder

SNR_GRID_DB = [0.0, 1.0, 2.0, 3.0]

BASE_POINT = {
    "K": 5, "L_mult": 5, "G": "standard", "R1": 1, "R2": 3,
    "Q": "adaptive", "N": 1, "M": 0,
}

VARIANTS = [
    ("hard (R1=1)", {"M": 0, "R1": 1, "Q": "hard"}),
    ("multires M=4", {"M": 4}),
    ("multires M=8", {"M": 8}),
    ("soft (R=3)", {"M": 0, "R1": 3}),
]


def _sweeps():
    simulator = BERSimulator(ConvolutionalEncoder(5), frame_length=256)
    sweeps = {}
    for label, overrides in VARIANTS:
        point = dict(BASE_POINT)
        point.update(overrides)
        sweeps[label] = simulator.sweep(
            build_decoder(point),
            SNR_GRID_DB,
            max_bits=scaled_bits(80_000),
            target_errors=400,
            label=label,
        )
    return sweeps


@pytest.mark.benchmark(group="figure8")
def test_figure8_multiresolution_ber(benchmark, report):
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    report("Figure 8 — BER vs Es/N0, K=5 L=5K R1=1 R2=3 adaptive")
    labels = [label for label, _ in VARIANTS]
    report(f"{'Es/N0 dB':>9s}" + "".join(f"{label:>16s}" for label in labels))
    for i, snr in enumerate(SNR_GRID_DB):
        report(
            f"{snr:9.1f}"
            + "".join(f"{sweeps[label].points[i].ber:16.3e}" for label in labels)
        )
    hard = sweeps["hard (R1=1)"]
    m4 = sweeps["multires M=4"]
    m8 = sweeps["multires M=8"]
    improvement_m4 = m4.improvement_over(hard)
    improvement_m8 = m8.improvement_over(hard)
    report()
    report(f"average BER improvement over hard decoding:")
    report(f"  M=4: {improvement_m4:5.1f} %   (paper: 64 %)")
    report(f"  M=8: {improvement_m8:5.1f} %   (paper: 82 %)")
    # Shape: ordering hard > M=4 > M=8 > soft at every measurable point.
    for i in range(len(SNR_GRID_DB) - 1):
        assert hard.points[i].ber > m4.points[i].ber
        assert m4.points[i].ber >= m8.points[i].ber
    # Magnitude: the paper's 64% / 82% within a generous band.
    assert 45.0 < improvement_m4 < 85.0
    assert 65.0 < improvement_m8 < 97.0
    assert improvement_m8 > improvement_m4
