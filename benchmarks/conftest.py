"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and

1. prints the rows/series to stdout (run pytest with ``-s`` to watch),
2. writes them under ``benchmarks/results/`` so the artifacts persist,
3. asserts the *shape* of the paper's result (who wins, what grows).

Budgets scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0; larger values mean longer Monte-Carlo runs and tighter
statistics).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Global budget multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_bits(base: int) -> int:
    return int(base * bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, request):
    """Collect lines, print them, and persist them per benchmark."""

    lines = []

    def add(line: str = "") -> None:
        lines.append(line)

    yield add
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    name = request.node.name.replace("[", "_").replace("]", "")
    (results_dir / f"{name}.txt").write_text(text)
