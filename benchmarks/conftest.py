"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and

1. prints the rows/series to stdout (run pytest with ``-s`` to watch),
2. writes them under ``benchmarks/results/`` so the artifacts persist,
3. asserts the *shape* of the paper's result (who wins, what grows).

Budgets scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0; larger values mean longer Monte-Carlo runs and tighter
statistics).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.observability.export import JsonlSink
from repro.observability.trace import Tracer

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-benchmark timing trace (one span per benchmark + final metrics
#: snapshot); inspect with ``metacores trace-report``.
TIMINGS_FILE = "benchmark_timings.jsonl"


def bench_scale() -> float:
    """Global budget multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_bits(base: int) -> int:
    return int(base * bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def _timing_tracer(results_dir):
    """Session-wide tracer collecting one timing span per benchmark.

    A private tracer (not the process-wide default) so the library's
    fine-grained spans stay no-ops and benchmarks run at full speed;
    only the coarse per-benchmark wall-clock is recorded.  The final
    record snapshots the default metrics registry, which the library's
    counters feed regardless of tracing.
    """
    with JsonlSink(results_dir / TIMINGS_FILE) as sink:
        yield Tracer(sink)
        sink.write_metrics()


@pytest.fixture(autouse=True)
def _time_benchmark(_timing_tracer, request):
    """Wrap every benchmark in a span so wall-clock per test persists."""
    with _timing_tracer.span("benchmark", test=request.node.name):
        yield


@pytest.fixture()
def report(results_dir, request):
    """Collect lines, print them, and persist them per benchmark."""

    lines = []

    def add(line: str = "") -> None:
        lines.append(line)

    yield add
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    name = request.node.name.replace("[", "_").replace("]", "")
    (results_dir / f"{name}.txt").write_text(text)
