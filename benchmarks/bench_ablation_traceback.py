"""Ablation: trace-back depth L (paper Sec. 4.1).

"Our experiments have shown that in most cases, trellis depths larger
than 7*K do not have any significant impact on BER."  This ablation
sweeps L in multiples of K and checks that BER improves sharply up to
a few K and saturates by 7K, while path-memory area keeps growing —
the reason L is a worthwhile search dimension.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.hardware import ViterbiInstanceParams, optimize_machine, viterbi_program
from repro.viterbi import (
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
)

K = 5
L_MULTIPLES = [1, 2, 3, 5, 7, 10]
ES_N0_DB = 2.0


def _run():
    encoder = ConvolutionalEncoder(K)
    trellis = Trellis.from_encoder(encoder)
    simulator = BERSimulator(encoder, frame_length=256)
    rows = []
    for multiple in L_MULTIPLES:
        depth = multiple * K
        decoder = ViterbiDecoder(trellis, HardQuantizer(), depth)
        ber = simulator.measure(
            decoder, ES_N0_DB, max_bits=scaled_bits(80_000), target_errors=500
        ).ber
        area = optimize_machine(
            viterbi_program(ViterbiInstanceParams(K, depth, 1)), 1e6
        ).area_mm2
        rows.append((multiple, depth, ber, area))
    return rows


@pytest.mark.benchmark(group="ablation-traceback")
def test_ablation_traceback_depth(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(f"Ablation — trace-back depth sweep (K={K}, hard decision, "
           f"Es/N0={ES_N0_DB} dB)")
    report(f"{'L/K':>4s} {'L':>4s} {'BER':>11s} {'area mm^2':>10s}")
    for multiple, depth, ber, area in rows:
        report(f"{multiple:4d} {depth:4d} {ber:11.3e} {area:10.3f}")
    bers = {multiple: ber for multiple, _, ber, _ in rows}
    areas = [area for *_, area in rows]
    # Short trace-back is clearly bad.
    assert bers[1] > 2.0 * bers[5]
    # Beyond 5K the curve has saturated: 7K and 10K sit within
    # Monte-Carlo noise of each other and of 5K (the paper's "depths
    # larger than 7K have no significant impact").
    saturated = [bers[5], bers[7], bers[10]]
    assert max(saturated) < 2.5 * min(saturated)
    # Path memory keeps costing area though.
    assert areas[-1] > areas[0]
