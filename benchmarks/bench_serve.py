"""Benchmark: served micro-batched throughput vs single-client serial.

Drives 4 concurrent socket clients against a served simulated
evaluator on a **cold cache** and compares aggregate throughput with a
single-client serial loop over the same points, writing
``BENCH_serve.json`` at the repo root:

- ``serial_s``  — one client, one point at a time, no service;
- ``served_s``  — 4 concurrent clients through ``ServeHandle``, whose
  requests coalesce into dynamic micro-batches.

The evaluator is *simulated*: metrics are deterministic pseudo-values
derived from the design point (hash-derived, so the differential check
below is meaningful), and the cost model is a ``time.sleep`` of
``BATCH_SETUP + PER_POINT * n`` per batch — the shape of the real
evaluators, whose per-batch setup (trellis/metric-table construction,
pool dispatch, Monte-Carlo warm-up) amortizes over the batch.  A sleep
reproduces that bill faithfully on single-CPU CI boxes where a
CPU-bound workload could never show overlap.  Everything else — the
socket protocol, admission, the micro-batcher, the caching chain — is
exactly the production path.

Alongside the speedup, the benchmark proves the bit-identical
guarantee on this workload: every record answered by the service is
compared byte-for-byte (canonical JSON) against serial evaluation.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import hashlib
import json
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.core.evaluation import TimedEvaluation
from repro.core.parameters import Point
from repro.serve import ServeHandle, ServiceConfig

#: Per-batch fixed setup bill and per-point marginal bill (seconds).
BATCH_SETUP = 0.020
PER_POINT = 0.004

CLIENTS = 4
POINTS_PER_CLIENT = 12
FIDELITY = 1

POINTS = [
    {"x": float(i), "y": float(i % 7)}
    for i in range(CLIENTS * POINTS_PER_CLIENT)
]


def canonical(record: Dict[str, float]) -> bytes:
    """The byte-level form the differential comparison uses."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


class SimulatedServeEvaluator:
    """Deterministic stand-in for a served Monte-Carlo cost engine.

    Metrics are a pure function of (point, fidelity), so served and
    serial runs must agree bit-for-bit; the cost of a batch is a sleep
    with a fixed setup component, so micro-batching has something real
    to amortize.
    """

    max_fidelity = 2

    def __init__(self) -> None:
        self.batch_sizes: List[int] = []
        self._lock = threading.Lock()

    def fingerprint(self) -> str:
        return f"bench-serve:v1:setup={BATCH_SETUP}:per_point={PER_POINT}"

    def _metrics(self, point: Point, fidelity: int) -> Dict[str, float]:
        digest = hashlib.md5(
            repr((sorted(point.items()), fidelity)).encode("utf-8")
        ).digest()
        area = 1.0 + int.from_bytes(digest[:4], "big") / 2**32 * 9.0
        ber_exp = 2.0 + int.from_bytes(digest[4:8], "big") / 2**32 * 7.0
        return {"area_mm2": area, "ber_exponent": ber_exp}

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        time.sleep(BATCH_SETUP + PER_POINT)
        return self._metrics(point, fidelity)

    def evaluate_many_timed(self, points, fidelity):
        with self._lock:
            self.batch_sizes.append(len(points))
        time.sleep(BATCH_SETUP + PER_POINT * len(points))
        return [
            TimedEvaluation(metrics=self._metrics(p, fidelity), elapsed_s=0.0)
            for p in points
        ]

    def evaluate_many(self, points, fidelity):
        return [
            t.metrics for t in self.evaluate_many_timed(points, fidelity)
        ]


def run_serial() -> "tuple[List[bytes], float]":
    """Single client, one point at a time, no service."""
    evaluator = SimulatedServeEvaluator()
    start = time.perf_counter()
    records = [
        canonical(evaluator.evaluate(point, FIDELITY)) for point in POINTS
    ]
    return records, time.perf_counter() - start


def run_served() -> "tuple[List[bytes], float, List[int]]":
    """4 concurrent socket clients through the service, cold cache."""
    evaluator = SimulatedServeEvaluator()
    config = ServiceConfig(max_batch=8, linger_s=0.004)
    records: Dict[int, bytes] = {}
    errors: List[BaseException] = []
    lock = threading.Lock()

    with ServeHandle(config) as handle:
        handle.service.register_evaluator("bench", evaluator)

        def client_worker(worker: int) -> None:
            indices = range(
                worker * POINTS_PER_CLIENT, (worker + 1) * POINTS_PER_CLIENT
            )
            try:
                with handle.client() as client:
                    for index in indices:
                        metrics = client.eval(
                            POINTS[index], fidelity=FIDELITY, session="bench"
                        )
                        with lock:
                            records[index] = canonical(metrics)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client_worker, args=(w,))
            for w in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

    if errors:
        raise errors[0]
    ordered = [records[i] for i in range(len(POINTS))]
    return ordered, elapsed, evaluator.batch_sizes


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent

    serial_records, serial_s = run_serial()
    served_records, served_s, batch_sizes = run_served()

    assert served_records == serial_records, (
        "differential FAILURE: served records are not byte-identical "
        "to serial evaluation"
    )
    assert max(batch_sizes) >= 2, (
        f"micro-batching never coalesced (batch sizes: {batch_sizes})"
    )

    speedup = serial_s / served_s
    report = {
        "benchmark": "served micro-batching vs single-client serial "
        "(simulated costs, cold cache)",
        "clients": CLIENTS,
        "points": len(POINTS),
        "serial_s": round(serial_s, 4),
        "served_s": round(served_s, 4),
        "aggregate_speedup": round(speedup, 2),
        "batches": len(batch_sizes),
        "batch_size_mean": round(statistics.mean(batch_sizes), 2),
        "batch_size_max": max(batch_sizes),
        "byte_identical": True,
    }
    out = repo_root / "BENCH_serve.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    ok = speedup >= 2.0
    if not ok:
        print(
            f"FAIL: need >=2x aggregate throughput (got {speedup:.2f}x)",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
