"""Benchmark: the power-aware cost engine's two core contracts.

Writes ``BENCH_power.json`` at the repo root and exits nonzero when
either gate is violated (the contract in ``docs/power.md``):

- **Gate A (bit-identity off).** With no ``PowerConfig``, the golden
  Viterbi search scenario reproduces the frozen selection in
  ``tests/golden/viterbi_search.json`` exactly — point, metrics,
  feasibility, and evaluation count.  Power support must be invisible
  until asked for.
- **Gate B (energy under a cap).** The power-on search at the node's
  nominal operating point selects the same area-optimal design and
  prices its energy; re-searching at a reduced supply voltage under an
  energy cap of 95% of that figure must find a *feasible* design with
  *strictly lower* energy per bit.  Dynamic energy scales with Vdd²,
  so under-volting must beat the nominal area-optimal point.

Run with::

    PYTHONPATH=src python benchmarks/bench_power.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import BERThresholdCurve, SearchConfig
from repro.power import PowerConfig, technology_node
from repro.viterbi import ViterbiMetaCore, ViterbiSpec

#: Energy cap for Gate B, relative to the nominal area-optimal energy.
CAP_FRACTION = 0.95

#: Reduced supply for Gate B, relative to the node's nominal Vdd.
VDD_FRACTION = 0.8

FIXED = {"G": "standard", "N": 1, "K": 3, "Q": "hard"}
CONFIG = dict(max_resolution=1, refine_top_k=1)


def run_search(power):
    """The golden search scenario, with optional power pricing."""
    metacore = ViterbiMetaCore(
        ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
            power=power,
        ),
        fixed=FIXED,
        config=SearchConfig(**CONFIG),
    )
    start = time.perf_counter()
    result = metacore.search()
    return result, time.perf_counter() - start


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    failures = []

    # Gate A: power off reproduces the golden fixture bit-for-bit.
    golden = json.loads(
        (repo_root / "tests" / "golden" / "viterbi_search.json").read_text(
            encoding="utf-8"
        )
    )
    off, off_wall = run_search(None)
    off_row = {
        "feasible": off.feasible,
        "best_point": off.best_point,
        "best_metrics": off.best_metrics,
        "n_evaluations": off.log.n_evaluations,
    }
    identical = off_row == golden
    if not identical:
        failures.append(
            "power-off selection diverged from tests/golden/"
            "viterbi_search.json — the opt-in gate leaked"
        )
    if any("energy" in name for name in off.best_metrics):
        failures.append("power-off metrics contain energy keys")

    # Gate B: nominal pricing, then an under-volted search beats it
    # under a 95% energy cap.
    node = technology_node(ViterbiSpec.__dataclass_fields__["feature_um"].default)
    nominal, _ = run_search(PowerConfig())
    if nominal.best_point != off.best_point:
        failures.append(
            "nominal-point power pricing changed the selected design"
        )
    nominal_energy = nominal.best_metrics["energy_nj_per_bit"]
    cap = CAP_FRACTION * nominal_energy

    capped, capped_wall = run_search(
        PowerConfig(vdd_v=VDD_FRACTION * node.vdd_nominal_v, max_energy_nj=cap)
    )
    if not capped.feasible:
        failures.append(
            f"under-volted search infeasible under cap {cap:.4g} nJ/bit"
        )
    capped_energy = (
        capped.best_metrics["energy_nj_per_bit"] if capped.feasible else None
    )
    if capped.feasible and not capped_energy < nominal_energy:
        failures.append(
            f"under-volted energy {capped_energy:.4g} nJ/bit not below "
            f"nominal area-optimal {nominal_energy:.4g} nJ/bit"
        )

    report = {
        "benchmark": "power-aware cost engine: gating + energy-capped search",
        "gates": {
            "A": "power off bit-identical to the golden search selection",
            "B": f"under-volted ({VDD_FRACTION:.0%} Vdd) search feasible "
            f"under a {CAP_FRACTION:.0%} energy cap with lower energy",
        },
        "power_off": {
            "bit_identical_to_golden": identical,
            "best_point": off.best_point,
            "area_mm2": off.best_metrics["area_mm2"],
            "n_evaluations": off.log.n_evaluations,
            "wall_s": round(off_wall, 4),
        },
        "nominal": {
            "node_um": node.feature_um,
            "vdd_v": node.vdd_nominal_v,
            "best_point": nominal.best_point,
            "energy_nj_per_bit": nominal_energy,
            "power_mw": nominal.best_metrics["power_mw"],
        },
        "energy_capped": {
            "vdd_v": VDD_FRACTION * node.vdd_nominal_v,
            "max_energy_nj": cap,
            "feasible": capped.feasible,
            "best_point": capped.best_point,
            "energy_nj_per_bit": capped_energy,
            "power_mw": capped.best_metrics["power_mw"]
            if capped.feasible
            else None,
            "wall_s": round(capped_wall, 4),
        },
    }
    out = repo_root / "BENCH_power.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
