"""Benchmark: fault-injection overhead on the Viterbi decode path.

Times the same BER measurement three ways and writes
``BENCH_resilience.json`` at the repo root:

- ``uninstrumented_s`` — no fault hook attached;
- ``inert_s``          — a rate-0 injector attached (the hook must cost
  (almost) nothing when it has nothing to inject);
- ``injecting_s``      — an active SEU injector on every storage class
  (the honest price of a campaign cell).

The acceptance bar is the subsystem's contract: a rate-0 injector is
**bit-identical** to the uninstrumented decoder and stays within 5% of
its throughput.  Timings are best-of-``REPEATS`` to shave scheduler
noise.

Run with::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.resilience import FaultInjector, FaultSpec
from repro.viterbi import BERSimulator, ConvolutionalEncoder, build_decoder

DESIGN = {"K": 5, "L_mult": 5, "G": "standard", "R1": 1, "R2": 3,
          "Q": "adaptive", "N": 1, "M": 4}
ES_N0_DB = 2.0
#: Short measurements, many repeats: the best-of estimator converges to
#: the uncontended floor even on busy machines, where long measurements
#: would integrate whole contention episodes instead.
BITS = 24_000
REPEATS = 15

#: Inert throughput must stay within this fraction of uninstrumented.
MAX_INERT_OVERHEAD = 0.05


def measure(decoder, injector):
    simulator = BERSimulator(ConvolutionalEncoder(int(DESIGN["K"])), seed=11)
    decoder.fault_hook = injector
    start = time.perf_counter()
    try:
        point = simulator.measure(
            decoder, ES_N0_DB, max_bits=BITS, target_errors=None
        )
    finally:
        decoder.fault_hook = None
    return point, time.perf_counter() - start


def timed_rounds(decoder, injectors):
    """Per-round wall seconds and errors per configuration, interleaved.

    The configurations are timed round-robin (and once untimed for
    warm-up) so cache warm-up hits none of the timed rounds and a
    contention episode spreads over all configurations instead of
    biasing whichever one happened to run during it.
    """
    for injector in injectors:
        measure(decoder, injector)  # warm-up: simulator + table caches
    rounds = []
    errors = [None] * len(injectors)
    for _ in range(REPEATS):
        row = []
        for slot, injector in enumerate(injectors):
            point, elapsed = measure(decoder, injector)
            row.append(elapsed)
            if errors[slot] is None:
                errors[slot] = point.errors
            elif point.errors != errors[slot]:
                raise AssertionError("measurement is not deterministic")
        rounds.append(row)
    return rounds, errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    decoder = build_decoder(DESIGN)
    inert = FaultInjector(
        FaultSpec(model="seu", rate=0.0, targets=("traceback",)),
        instance="bench",
    )
    active = FaultInjector(
        FaultSpec(
            model="seu",
            rate=1e-3,
            targets=("path_metrics", "branch_metrics", "traceback"),
        ),
        instance="bench",
    )

    rounds, (bare_errors, inert_errors, faulty_errors) = timed_rounds(
        decoder, [None, inert, active]
    )
    bare_s = min(row[0] for row in rounds)
    inert_s = min(row[1] for row in rounds)
    faulty_s = min(row[2] for row in rounds)

    identical = inert_errors == bare_errors
    # Contention only ever adds time, so the best-of floor of each
    # configuration is its uncontended cost and the floors' ratio is
    # the honest overhead estimate.
    inert_overhead = inert_s / bare_s - 1.0
    report = {
        "benchmark": "fault-injection hook overhead (Viterbi BER measurement)",
        "design": DESIGN,
        "bits": BITS,
        "repeats": REPEATS,
        "uninstrumented_s": round(bare_s, 4),
        "inert_s": round(inert_s, 4),
        "injecting_s": round(faulty_s, 4),
        "inert_overhead": round(inert_overhead, 4),
        "injecting_overhead": round(faulty_s / bare_s - 1.0, 4),
        "rate0_bit_identical": identical,
        "uninstrumented_errors": bare_errors,
        "injecting_errors": faulty_errors,
        "injected_faults": int(sum(active.n_injected.values())),
    }
    out = repo_root / "BENCH_resilience.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    ok = identical and inert_overhead <= MAX_INERT_OVERHEAD
    if not ok:
        print(
            f"FAIL: rate-0 injector must be bit-identical "
            f"(got identical={identical}) and within "
            f"{MAX_INERT_OVERHEAD:.0%} of uninstrumented throughput "
            f"(got {inert_overhead:+.1%})",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
