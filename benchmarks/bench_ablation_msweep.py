"""Ablation: multiresolution path count M from 1 to 2^(K-1).

Figure 8 shows M = 4 and M = 8; this ablation sweeps the whole range
and verifies the design story end to end: BER improves monotonically
(within Monte-Carlo noise) from hard decoding toward the full-soft
limit as M grows, while the recomputation hardware cost rises only
mildly — the knob the paper's search exploits to buy just enough BER.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.hardware import ViterbiInstanceParams, optimize_machine, viterbi_program
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    Trellis,
    ViterbiDecoder,
)

K = 5
ES_N0_DB = 2.0
M_VALUES = [1, 2, 4, 8, 16]


def _run():
    encoder = ConvolutionalEncoder(K)
    trellis = Trellis.from_encoder(encoder)
    simulator = BERSimulator(encoder, frame_length=256)

    def measure(decoder):
        return simulator.measure(
            decoder, ES_N0_DB, max_bits=scaled_bits(80_000), target_errors=400
        ).ber

    rows = []
    hard = ViterbiDecoder(trellis, HardQuantizer(), 25)
    hard_area = optimize_machine(
        viterbi_program(ViterbiInstanceParams(K, 25, 1)), 1e6
    ).area_mm2
    rows.append(("hard", measure(hard), hard_area))
    for m in M_VALUES:
        decoder = MultiresolutionViterbiDecoder(
            trellis, HardQuantizer(), AdaptiveQuantizer(3), 25,
            multires_paths=m,
        )
        area = optimize_machine(
            viterbi_program(ViterbiInstanceParams(K, 25, 1, 2, 3, m, 1)), 1e6
        ).area_mm2
        rows.append((f"M={m}", measure(decoder), area))
    soft = ViterbiDecoder(trellis, AdaptiveQuantizer(3), 25)
    soft_area = optimize_machine(
        viterbi_program(ViterbiInstanceParams(K, 25, 3)), 1e6
    ).area_mm2
    rows.append(("soft", measure(soft), soft_area))
    return rows


@pytest.mark.benchmark(group="ablation-msweep")
def test_ablation_m_sweep(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(f"Ablation — path count sweep (K={K}, Es/N0={ES_N0_DB} dB, "
           "area at 1 Mbps)")
    report(f"{'config':>6s} {'BER':>11s} {'area mm^2':>10s}")
    for label, ber, area in rows:
        report(f"{label:>6s} {ber:11.3e} {area:10.2f}")
    bers = {label: ber for label, ber, _ in rows}
    areas = {label: area for label, _, area in rows}
    # Broad monotone improvement hard -> M=16 (pairwise comparisons two
    # steps apart to ride out Monte-Carlo noise).
    sequence = ["hard"] + [f"M={m}" for m in M_VALUES]
    for early, late in zip(sequence, sequence[2:]):
        assert bers[late] < bers[early]
    # Full recomputation approaches the soft-decision quality (within
    # an order of magnitude; the normalization correction keeps the
    # metrics slightly perturbed relative to a native soft decoder).
    assert bers["M=16"] < 10.0 * max(bers["soft"], 1e-6)
    assert bers["M=16"] < 0.1 * bers["hard"]
    # The hardware cost of recomputation grows only mildly with M.
    assert areas["M=16"] < 1.6 * areas["M=1"]
