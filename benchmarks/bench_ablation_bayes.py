"""Ablation: Bayesian BER regularization in the search (paper Sec. 4.4).

"BER is probabilistic by nature and interpolation can lead to
inaccurate conclusions especially if simulation times are kept short."
This ablation runs the same Viterbi search with and without the
Bayesian neighbor posterior and compares the winners and the evaluation
effort: with short simulation budgets, the regularized search should be
at least as reliable at finding a feasible, small instance.
"""

from __future__ import annotations

import pytest

from repro.core import BERThresholdCurve, SearchConfig
from repro.viterbi import ViterbiMetaCore, ViterbiSpec, describe_point


def _run(use_bayes: bool):
    spec = ViterbiSpec(
        throughput_bps=2e6,
        ber_curve=BERThresholdCurve.single(3.0, 1e-3),
    )
    metacore = ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=SearchConfig(
            max_resolution=2, refine_top_k=3, use_bayesian_ber=use_bayes
        ),
    )
    return metacore.search()


def _run_both():
    return _run(True), _run(False)


@pytest.mark.benchmark(group="ablation-bayes")
def test_ablation_bayesian_regularization(benchmark, report):
    with_bayes, without_bayes = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    report("Ablation — Bayesian BER posterior on/off (BER<=1e-3 @ 3 dB, 2 Mbps)")
    for label, result in (("bayes on", with_bayes), ("bayes off", without_bayes)):
        area = (
            f"{result.best_metrics['area_mm2']:.2f}"
            if result.feasible
            else "infeasible"
        )
        point = (
            describe_point(result.best_point) if result.best_point else "-"
        )
        report(
            f"  {label:10s} evals={result.log.n_evaluations:4d} "
            f"area={area:>10s}  {point}"
        )
    # The regularized search must succeed and be competitive.
    assert with_bayes.feasible
    if without_bayes.feasible:
        assert (
            with_bayes.best_metrics["area_mm2"]
            <= without_bayes.best_metrics["area_mm2"] * 1.25
        )
