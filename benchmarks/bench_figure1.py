"""Figure 1: BER vs Es/N0 for the three Table-1 Viterbi instances.

The paper's point: despite a ~7x area spread (Table 1), "all three
cases exhibit comparable BER curves".  We regenerate the three curves
by Monte-Carlo simulation and assert they stay within about an order of
magnitude of one another across the sweep while all improving steeply
with SNR.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.viterbi import BERSimulator, ConvolutionalEncoder, build_decoder

SNR_GRID_DB = [0.0, 1.0, 2.0, 3.0, 4.0]

#: The Table-1 instances expressed as MetaCore design points.
INSTANCES = [
    (
        "K=3 R=3 soft",
        {"K": 3, "L_mult": 2, "G": "standard", "R1": 3, "R2": 4,
         "Q": "adaptive", "N": 1, "M": 0},
    ),
    (
        "K=5 multires M=8",
        {"K": 5, "L_mult": 5, "G": "standard", "R1": 1, "R2": 3,
         "Q": "adaptive", "N": 1, "M": 8},
    ),
    (
        "K=7 multires M=4",
        {"K": 7, "L_mult": 5, "G": "standard", "R1": 1, "R2": 3,
         "Q": "adaptive", "N": 1, "M": 4},
    ),
]


def _sweeps():
    sweeps = []
    for label, point in INSTANCES:
        simulator = BERSimulator(
            ConvolutionalEncoder(point["K"]), frame_length=256
        )
        sweep = simulator.sweep(
            build_decoder(point),
            SNR_GRID_DB,
            max_bits=scaled_bits(60_000),
            target_errors=300,
            label=label,
        )
        sweeps.append(sweep)
    return sweeps


@pytest.mark.benchmark(group="figure1")
def test_figure1_ber_curves_comparable(benchmark, report):
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    report("Figure 1 — BER vs Es/N0 for the Table-1 instances")
    header = f"{'Es/N0 dB':>9s}" + "".join(
        f"{s.label:>22s}" for s in sweeps
    )
    report(header)
    for i, snr in enumerate(SNR_GRID_DB):
        row = f"{snr:9.1f}" + "".join(
            f"{s.points[i].ber:22.3e}" for s in sweeps
        )
        report(row)
    # Shape 1: every curve decreases steeply with SNR.
    for sweep in sweeps:
        bers = sweep.ber
        assert bers[0] > bers[-1]
        assert bers[0] / max(bers[-1], 1e-9) > 10
    # Shape 2: the three instances stay comparable (within ~1.5 orders
    # of magnitude) at the low-to-mid SNR points where statistics are
    # reliable.
    for i in range(3):
        values = [s.points[i].ber for s in sweeps if s.points[i].ber > 0]
        assert max(values) / min(values) < 30.0
