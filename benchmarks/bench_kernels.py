"""Benchmark: fused decode kernels vs the reference forward loops.

Times one *cold* Table-3-style cost evaluation — a full BER-curve
Monte-Carlo run through :class:`ViterbiMetacoreEvaluator` — once per
decode kernel, for a classic (single-resolution) point and for a
multiresolution point, and writes ``BENCH_kernels.json`` at the repo
root.

``kernel="reference"`` reproduces the pre-kernel behavior exactly
(step-by-step forward loop, batch-at-a-time simulation), so the ratio
is a true before/after A/B on the same machine.  The reference run goes
first; the fused timing therefore *includes* building the combo lookup
tables, which is the honest cold-start accounting.  Both runs must
produce bit-identical metrics — any divergence fails the benchmark
before any speedup is considered.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick   # CI smoke

Full mode evaluates at the top Monte-Carlo fidelity and requires a
>= 5x speedup on the classic point (and >= 2.5x on the multiresolution
point, whose reference loop spends a larger share of its time in real
arithmetic).  Quick mode evaluates at fidelity 1 — a budget too small
for adaptive batching to grow, so it isolates the kernel fusion — and
only requires that fused is not slower.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Tuple

from repro.core import BERThresholdCurve
from repro.viterbi import ViterbiMetacoreEvaluator, ViterbiSpec

#: Table-3-style specification: 1 Mb/s at BER <= 1e-5 (Es/N0 = 2 dB),
#: one of the paper's Table-3 rows.  The tight threshold drives the
#: top-fidelity bit budget to its cap, which is exactly the cold
#: evaluation that dominates a production search's wall-clock.
SPEC_THROUGHPUT_BPS = 1e6
SPEC_ES_N0_DB = 2.0
SPEC_BER_THRESHOLD = 1e-5

#: Classic soft-decision decoder: strong code, no multiresolution.
CLASSIC_POINT = {
    "K": 7, "L_mult": 5, "G": "standard", "R1": 3,
    "R2": 3, "Q": "adaptive", "N": 1, "M": 0,
}

#: Multiresolution decoder: 1-bit trellis plus 3-bit recomputation on
#: the M best paths (the paper's Sec. 3.3 algorithm).
MULTIRES_POINT = {
    "K": 7, "L_mult": 5, "G": "standard", "R1": 1,
    "R2": 3, "Q": "adaptive", "N": 1, "M": 16,
}

FULL_FIDELITY = 3
QUICK_FIDELITY = 1

MIN_SPEEDUP_CLASSIC = 5.0
MIN_SPEEDUP_MULTIRES = 2.5
MIN_SPEEDUP_QUICK = 1.0


def _spec() -> ViterbiSpec:
    return ViterbiSpec(
        throughput_bps=SPEC_THROUGHPUT_BPS,
        ber_curve=BERThresholdCurve.single(SPEC_ES_N0_DB, SPEC_BER_THRESHOLD),
    )


def time_evaluation(
    kernel: str, point: Dict[str, object], fidelity: int
) -> Tuple[Dict[str, float], float]:
    """One cold BER-curve evaluation; returns (metrics, seconds).

    Times ``ViterbiMetacoreEvaluator._ber_metrics`` — the Monte-Carlo
    BER-curve pricing that the decode kernels accelerate — on a fresh
    evaluator.  The VLIW machine pricing that a full ``evaluate`` adds
    on top is kernel-independent (identical work either way) and would
    only dilute the A/B ratio, so it is excluded.
    """
    evaluator = ViterbiMetacoreEvaluator(_spec(), kernel=kernel)
    start = time.perf_counter()
    metrics = evaluator._ber_metrics(point, fidelity)
    return metrics, time.perf_counter() - start


def run_workload(
    name: str, point: Dict[str, object], fidelity: int
) -> Dict[str, object]:
    reference_metrics, reference_s = time_evaluation(
        "reference", point, fidelity
    )
    fused_metrics, fused_s = time_evaluation("fused", point, fidelity)
    if fused_metrics != reference_metrics:
        diverged = {
            key: (fused_metrics.get(key), reference_metrics.get(key))
            for key in set(fused_metrics) | set(reference_metrics)
            if fused_metrics.get(key) != reference_metrics.get(key)
        }
        raise AssertionError(
            f"{name}: fused metrics diverged from reference: {diverged}"
        )
    speedup = reference_s / fused_s if fused_s > 0 else float("inf")
    report = {
        "workload": name,
        "point": point,
        "fidelity": fidelity,
        "ber_bits": reference_metrics.get("ber_bits"),
        "ber": reference_metrics.get("ber"),
        "reference_s": round(reference_s, 4),
        "fused_s": round(fused_s, 4),
        "speedup": round(speedup, 2),
        "metrics_identical": True,
    }
    print(
        f"{name}: reference {reference_s:.3f}s, fused {fused_s:.3f}s "
        f"-> {speedup:.2f}x (bit-identical)"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: low fidelity, only assert bit-identity and "
        "fused-not-slower; does not write the JSON report",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: BENCH_kernels.json at the repo root "
        "in full mode, nowhere in quick mode)",
    )
    args = parser.parse_args(argv)

    fidelity = QUICK_FIDELITY if args.quick else FULL_FIDELITY
    classic = run_workload("classic", CLASSIC_POINT, fidelity)
    multires = run_workload("multires", MULTIRES_POINT, fidelity)

    if args.quick:
        floors = {"classic": MIN_SPEEDUP_QUICK, "multires": MIN_SPEEDUP_QUICK}
    else:
        floors = {
            "classic": MIN_SPEEDUP_CLASSIC,
            "multires": MIN_SPEEDUP_MULTIRES,
        }
    failures = [
        f"{report['workload']}: {report['speedup']:.2f}x < "
        f"{floors[report['workload']]:.1f}x"
        for report in (classic, multires)
        if report["speedup"] < floors[report["workload"]]
    ]

    report = {
        "benchmark": "fused decode kernels, cold Table-3-style evaluation",
        "mode": "quick" if args.quick else "full",
        "spec": {
            "throughput_bps": SPEC_THROUGHPUT_BPS,
            "es_n0_db": SPEC_ES_N0_DB,
            "ber_threshold": SPEC_BER_THRESHOLD,
        },
        "workloads": [classic, multires],
        "floors": floors,
    }
    out = args.out
    if out is None and not args.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")

    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
