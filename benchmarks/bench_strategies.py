"""Benchmark: search strategies vs the cold multiresolution grid.

Runs the paper's Table 4 IIR scenario (the real evaluator — filter
design, quantization measurement, synthesis estimation) once per
strategy and writes ``BENCH_strategies.json`` at the repo root:

- ``grid``      — the cold multiresolution baseline;
- ``evolve``    — seeded tournament selection + mutation + polish;
- ``surrogate`` — the model-pruned funnel (ridge + nearest-neighbor).

The hard gate (the contract in ``docs/search-strategies.md``): each
alternative strategy must select a design **no worse** than the grid's
while spending **at most half** of the grid's evaluator calls.

Run with::

    PYTHONPATH=src python benchmarks/bench_strategies.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import STRATEGIES, SearchConfig
from repro.iir import IIRMetaCore, IIRSpec

#: Evaluator-call ceiling relative to the grid baseline.
MAX_EVAL_FRACTION = 0.5


def run_strategy(strategy: str):
    """One Table 4 search; returns (SearchResult, wall_seconds)."""
    metacore = IIRMetaCore(
        IIRSpec.paper(4.0),
        config=SearchConfig(
            max_resolution=3, refine_top_k=4, strategy=strategy
        ),
    )
    start = time.perf_counter()
    result = metacore.search()
    return result, time.perf_counter() - start


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    results = {}
    for strategy in STRATEGIES:
        result, wall_s = run_strategy(strategy)
        assert result.feasible, f"{strategy} found no feasible design"
        results[strategy] = {
            "evaluations": result.log.n_evaluations,
            "evals_saved": result.evals_saved,
            "area_mm2": result.best_metrics["area_mm2"],
            "best_point": result.best_point,
            "wall_s": round(wall_s, 4),
        }

    grid = results["grid"]
    failures = []
    for strategy in ("evolve", "surrogate"):
        row = results[strategy]
        row["eval_fraction"] = round(
            row["evaluations"] / grid["evaluations"], 4
        )
        if row["area_mm2"] > grid["area_mm2"]:
            failures.append(
                f"{strategy} selected a worse design "
                f"({row['area_mm2']} vs grid {grid['area_mm2']})"
            )
        if row["evaluations"] > MAX_EVAL_FRACTION * grid["evaluations"]:
            failures.append(
                f"{strategy} spent {row['evaluations']} evaluations; "
                f"gate is {MAX_EVAL_FRACTION:.0%} of grid's "
                f"{grid['evaluations']}"
            )

    report = {
        "benchmark": "Table 4 IIR search, grid vs pluggable strategies",
        "gate": f"no-worse selection at <={MAX_EVAL_FRACTION:.0%} "
        "of the grid's evaluator calls",
        "results": results,
    }
    out = repo_root / "BENCH_strategies.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
