"""Table 3: Viterbi MetaCore search outcomes for five specifications.

Each row fixes a desired BER and throughput; the multiresolution search
returns the smallest-area decoder instance meeting both (normalization
N and polynomials G fixed, as in the paper).  The last row (BER 1e-9)
must come back "Not Feasible".

The paper states its BER targets "at Es/N0 = 1.0" without units; at
1.0 (linear or dB) the 1e-5 rows are unreachable by any faithful AWGN
simulation of these codes, so this reproduction evaluates the BER
constraint at Es/N0 = 2 dB, where the paper's qualitative pattern — a
cheap short-constraint instance for 1e-2, escalating through soft /
multiresolution decoding to long constraint lengths at 1e-5, and
infeasibility at 1e-9 — reproduces.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import math

import pytest

from repro.core import BERThresholdCurve, SearchConfig
from repro.viterbi import ViterbiMetaCore, ViterbiSpec, describe_point

ES_N0_DB = 2.0

#: (max BER, throughput bps, paper row summary, paper area).
TABLE3_SPECS = [
    (1e-2, 5e6, "K=3 soft", 0.35),
    (1e-4, 2e6, "K=5 multires", 1.2),
    (1e-5, 1e6, "K=7 soft", 2.2),
    (1e-5, 3e6, "K=7 soft/multires", 3.3),
    (1e-9, 1e6, "Not Feasible", None),
]


def _run_searches():
    rows = []
    for max_ber, throughput, _, _ in TABLE3_SPECS:
        spec = ViterbiSpec(
            throughput_bps=throughput,
            ber_curve=BERThresholdCurve.single(ES_N0_DB, max_ber),
        )
        metacore = ViterbiMetaCore(
            spec,
            fixed={"G": "standard", "N": 1},
            config=SearchConfig(max_resolution=2, refine_top_k=3),
        )
        rows.append(metacore.search())
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_search_outcomes(benchmark, report):
    results = benchmark.pedantic(_run_searches, rounds=1, iterations=1)
    report("Table 3 — Viterbi MetaCore search outcomes "
           f"(BER constraint at Es/N0 = {ES_N0_DB} dB)")
    report(
        f"{'BER spec':>9s} {'Mbps':>5s} {'feasible':>9s} {'area':>7s} "
        f"{'paper':>6s}  instance"
    )
    for (max_ber, throughput, paper_row, paper_area), result in zip(
        TABLE3_SPECS, results
    ):
        if result.feasible:
            area = result.best_metrics["area_mm2"]
            instance = describe_point(result.best_point)
            paper_str = f"{paper_area:5.2f}" if paper_area else "  n/a"
            report(
                f"{max_ber:9.0e} {throughput / 1e6:5.1f} {'yes':>9s} "
                f"{area:7.2f} {paper_str:>6s}  {instance} "
                f"[paper: {paper_row}]"
            )
        else:
            report(
                f"{max_ber:9.0e} {throughput / 1e6:5.1f} {'NO':>9s} "
                f"{'-':>7s} {'-':>6s}  Not Feasible [paper: {paper_row}]"
            )

    # Shape assertions.
    feasibility = [r.feasible for r in results]
    assert feasibility == [True, True, True, True, False]
    # Constraint-length / decoding-richness escalation with tighter
    # BER requirements: 1e-2 is met by a short code, 1e-5 needs a long
    # one (the paper's K=3 -> K=5 -> K=7 progression).
    ks = [r.best_point["K"] for r in results[:4]]
    assert ks[0] <= 4
    assert ks[1] >= ks[0]
    assert ks[2] >= 5 and ks[3] >= 5
    # Harder specs at equal/looser throughput cost more area, and the
    # tight-throughput 1e-5 row is the most expensive of all.
    areas = [r.best_metrics["area_mm2"] for r in results[:4]]
    assert areas[2] > areas[1]
    assert areas[3] >= areas[2]
    assert areas[3] == max(areas)
    # Winners stay within a small factor of the paper's absolute areas.
    for (_, _, _, paper_area), area in zip(TABLE3_SPECS[:4], areas):
        assert paper_area / 3.0 < area < paper_area * 3.0
