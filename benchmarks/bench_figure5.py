"""Figure 5: typical transfer function of an elliptic IIR filter.

The paper's Fig. 5 plots the magnitude response of a low-pass elliptic
filter (equiripple passband and stopband).  We regenerate the response
series from our from-scratch elliptic design path and assert its
defining features: equiripple passband hugging 0 dB, a sharp
transition, and an equiripple stopband at the design attenuation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.iir import LowpassSpec, design_filter, measure_bands

SPEC = LowpassSpec(
    passband_edge=0.3 * math.pi,
    stopband_edge=0.36 * math.pi,
    passband_ripple=0.02,
    stopband_ripple=0.01,  # 40 dB
)


def _response():
    filt = design_filter(SPEC, "elliptic")
    tf = filt.to_tf()
    omega = np.linspace(1e-3, math.pi - 1e-3, 512)
    return filt, tf, omega, tf.magnitude_db(omega)


@pytest.mark.benchmark(group="figure5")
def test_figure5_elliptic_lowpass_response(benchmark, report):
    filt, tf, omega, mag_db = benchmark.pedantic(_response, rounds=1, iterations=1)
    measurement = measure_bands(tf, SPEC.passbands, SPEC.stopbands)
    report("Figure 5 — elliptic low-pass transfer function (magnitude, dB)")
    report(f"prototype order: {filt.order}, digital order: {tf.order}")
    report(f"{'omega/pi':>9s} {'mag dB':>9s}")
    for i in range(0, omega.size, 16):
        report(f"{omega[i] / math.pi:9.3f} {mag_db[i]:9.2f}")
    report()
    report(
        f"measured: ripple={measurement.passband_ripple:.4f} "
        f"stopband={measurement.stopband_attenuation_db:.1f} dB "
        f"3dB-band=[{(measurement.three_db_low or 0) / math.pi:.3f}, "
        f"{(measurement.three_db_high or 0) / math.pi:.3f}] * pi"
    )
    # Equiripple passband within spec, hugging 0 dB.
    assert measurement.passband_ripple <= SPEC.passband_ripple * 1.02
    assert measurement.peak_gain <= 1.001
    # Stopband at/below the design level.
    assert measurement.stopband_attenuation_db >= 39.5
    # Sharp transition: response falls from -3 dB to -40 dB within the
    # narrow transition band.
    assert measurement.three_db_high is not None
    assert SPEC.passband_edge < measurement.three_db_high < SPEC.stopband_edge
    # Equiripple stopband: the stopband maxima touch the design level
    # repeatedly (at least two local maxima near -40 dB).
    stop = mag_db[omega >= SPEC.stopband_edge]
    near_level = np.sum(np.abs(stop - (-40.0)) < 1.5)
    assert near_level >= 2
