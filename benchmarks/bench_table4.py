"""Table 4: IIR MetaCore performance across seven throughput targets.

For every sample period the multiresolution search minimizes area over
{structure x family x word length x ripple allocation} under the paper's
Sec. 5.3 band-pass specification.  Reported per row: best area, average
area over all feasible candidates generated during the search, the
reduction percentage, and the winning structure — mirroring the paper's
Table 4 columns.

Paper rows: 5 us Ladder 5.73/15.75 (63.6%), 4-2 us Parallel 5.92/18-21
(67-72%), 1-0.25 us Cascade 6.11-22.14 / 35.8-158.9 (82.9-86.1%).
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core import SearchConfig
from repro.iir import IIRMetaCore, IIRSpec

PERIODS_US = [5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25]

PAPER_ROWS = {
    5.0: ("Ladder", 5.73, 15.75, 63.62),
    4.0: ("Parallel", 5.92, 18.27, 67.60),
    3.0: ("Parallel", 5.92, 19.94, 70.31),
    2.0: ("Parallel", 5.92, 21.08, 71.92),
    1.0: ("Cascade", 6.11, 35.81, 82.94),
    0.5: ("Cascade", 11.63, 69.98, 83.39),
    0.25: ("Cascade", 22.14, 158.90, 86.07),
}


def _run_searches():
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for period in PERIODS_US:
            metacore = IIRMetaCore(
                IIRSpec.paper(period),
                config=SearchConfig(max_resolution=3, refine_top_k=4),
            )
            result = metacore.search()
            feasible_areas = [
                record.metrics["area_mm2"]
                for record in result.log.records
                if record.metrics.get("spec_violation", 1.0) == 0.0
                and math.isfinite(record.metrics["area_mm2"])
            ]
            average = sum(feasible_areas) / len(feasible_areas)
            rows.append((period, result, average))
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_iir_search_across_throughputs(benchmark, report):
    rows = benchmark.pedantic(_run_searches, rounds=1, iterations=1)
    report("Table 4 — IIR MetaCore results (Sec. 5.3 band-pass spec)")
    report(
        f"{'T us':>6s} {'best':>7s} {'avg':>8s} {'red %':>6s} "
        f"{'structure':>10s} {'paper best/avg/red/structure':>34s}"
    )
    reductions = []
    for period, result, average in rows:
        best = result.best_metrics["area_mm2"]
        reduction = 100.0 * (1.0 - best / average)
        reductions.append(reduction)
        paper_struct, paper_best, paper_avg, paper_red = PAPER_ROWS[period]
        report(
            f"{period:6.2f} {best:7.2f} {average:8.2f} {reduction:6.1f} "
            f"{result.best_point['structure']:>10s} "
            f"{paper_best:8.2f}/{paper_avg:6.1f}/{paper_red:5.1f}/"
            f"{paper_struct}"
        )
    best_areas = [r.best_metrics["area_mm2"] for _, r, _ in rows]
    averages = [avg for _, _, avg in rows]
    structures = [r.best_point["structure"] for _, r, _ in rows]

    # Shape 1: every spec is feasible and the best area is monotone
    # (non-decreasing) as the throughput constraint tightens, growing
    # substantially at the fast end (paper: 5.73 -> 22.14).
    assert all(result.feasible for _, result, _ in rows)
    for previous, current in zip(best_areas, best_areas[1:]):
        assert current >= previous * 0.98
    assert best_areas[-1] / best_areas[0] > 2.0
    # Shape 2: average candidate area grows much faster than the best,
    # so the reduction percentage grows toward the fast end (paper:
    # 63.6% -> 86.1%) and is large everywhere.
    assert averages[-1] / averages[0] > 4.0
    assert reductions[-1] > reductions[0]
    assert all(reduction > 35.0 for reduction in reductions)
    assert reductions[-1] > 80.0
    # Shape 3: the winner rotation — a serial low-word-length structure
    # (ladder) at the loosest constraint, short-loop structures
    # (parallel/cascade) at the tightest; ladder cannot win the fastest
    # rows (its feedback loop no longer fits the sample period).
    assert structures[0] == "ladder"
    assert structures[-1] in ("cascade", "parallel")
    assert structures[-2] in ("cascade", "parallel")
    serial = {"ladder", "continued"}
    assert structures[-1] not in serial and structures[-2] not in serial
