"""Figure 4: adaptive soft quantization.

The paper's Fig. 4 shows a 3-bit (8-level) uniform quantizer whose
decision level D is derived from Es/N0.  We regenerate the decision
thresholds across an Es/N0 sweep and check the defining properties:
8 levels, symmetric thresholds at integer multiples of D, and D
tracking the noise standard deviation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.viterbi import AdaptiveQuantizer, noise_sigma

SNR_GRID_DB = [0.0, 2.0, 4.0, 6.0]


def _threshold_table():
    quantizer = AdaptiveQuantizer(3)
    rows = []
    for es_n0_db in SNR_GRID_DB:
        sigma = noise_sigma(es_n0_db)
        rows.append(
            (
                es_n0_db,
                sigma,
                quantizer.decision_level(sigma),
                quantizer.thresholds(sigma),
            )
        )
    return quantizer, rows


@pytest.mark.benchmark(group="figure4")
def test_figure4_adaptive_quantizer_levels(benchmark, report):
    quantizer, rows = benchmark.pedantic(_threshold_table, rounds=1, iterations=1)
    report("Figure 4 — adaptive 3-bit quantizer decision levels")
    report(f"{'Es/N0 dB':>9s} {'sigma':>8s} {'D':>8s}  thresholds")
    for es_n0_db, sigma, decision, thresholds in rows:
        pretty = ", ".join(f"{t:+.3f}" for t in thresholds)
        report(f"{es_n0_db:9.1f} {sigma:8.3f} {decision:8.3f}  [{pretty}]")
    assert quantizer.n_levels == 8
    for es_n0_db, sigma, decision, thresholds in rows:
        # D is derived from the channel's Es/N0 (via sigma).
        assert decision == pytest.approx(0.5 * sigma)
        # 7 symmetric thresholds at consecutive multiples of D.
        assert thresholds.size == 7
        assert np.allclose(thresholds, -thresholds[::-1])
        assert np.allclose(np.diff(thresholds), decision)
    # Higher SNR -> smaller sigma -> finer decision levels.
    decisions = [row[2] for row in rows]
    assert decisions == sorted(decisions, reverse=True)
