"""Benchmark: parallel grid evaluation and the persistent cache.

Times a fixed table3-style multiresolution search three ways and writes
``BENCH_search.json`` at the repo root:

- ``serial_cold``   — 1 worker, empty persistent cache;
- ``parallel_cold`` — 4 workers, empty persistent cache;
- ``serial_warm``   — 1 worker, cache pre-populated by the cold run.

The evaluator is a *simulated* Table-3 cost model: it returns
deterministic pseudo-metrics derived from the design point and models
the Monte-Carlo simulation bill with a ``time.sleep`` per fidelity
level (the real evaluator's cost is wall-clock spent simulating, which
a sleep reproduces faithfully without requiring N free cores on the
benchmark machine — CI boxes often pin this benchmark to one CPU, where
a CPU-bound workload could never show process-level overlap).  The
search machinery exercised — grid batching, process fan-out, result
ordering, persistent-cache lookups — is exactly the production path.

Run with::

    PYTHONPATH=src python benchmarks/bench_search_speed.py
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.core.evaluation import EvaluationLog  # noqa: F401  (import check)
from repro.core.objectives import DesignGoal, Objective
from repro.core.parallel import ParallelEvaluator
from repro.core.evalcache import PersistentEvalCache
from repro.core.parameters import Correlation, DesignSpace, DiscreteParameter, Point
from repro.core.search import MetacoreSearch, SearchConfig

#: Simulated evaluation bill per fidelity level (seconds of "simulation").
SLEEP_PER_FIDELITY = (0.004, 0.010, 0.020, 0.045)

WORKERS = 4


class SimulatedTable3Evaluator:
    """Deterministic stand-in for the Viterbi Table-3 cost engine.

    Metrics are a pure function of the design point (hash-derived), so
    serial, parallel, and cached runs agree bit-for-bit; the cost of an
    evaluation is a sleep scaled by fidelity, modelling the Monte-Carlo
    run time the real evaluator pays.
    """

    def __init__(self) -> None:
        self.max_fidelity = len(SLEEP_PER_FIDELITY) - 1

    def fingerprint(self) -> str:
        return f"bench-table3:v1:sleeps={SLEEP_PER_FIDELITY}"

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        time.sleep(SLEEP_PER_FIDELITY[fidelity])
        digest = hashlib.md5(
            repr(sorted(point.items())).encode("utf-8")
        ).digest()
        area = 1.0 + int.from_bytes(digest[:4], "big") / 2**32 * 9.0
        ber_exp = 2.0 + int.from_bytes(digest[4:8], "big") / 2**32 * 7.0
        return {"area_mm2": area, "ber_exponent": ber_exp}


def bench_space() -> DesignSpace:
    """A Table-2-shaped discrete space (same axis cardinalities)."""
    return DesignSpace(
        [
            DiscreteParameter("K", (3, 4, 5, 6, 7), Correlation.MONOTONIC),
            DiscreteParameter(
                "L_mult", (1, 2, 3, 4, 5, 6, 7), Correlation.MONOTONIC
            ),
            DiscreteParameter("R1", (1, 2, 3), Correlation.MONOTONIC),
            DiscreteParameter("R2", (2, 3, 4, 5), Correlation.MONOTONIC),
            DiscreteParameter(
                "M", (0, 1, 2, 4, 8, 16, 32, 64), Correlation.MONOTONIC
            ),
        ]
    )


def run_search(workers: int, cache_path: Path):
    """One table3-style search; returns (SearchResult, wall_seconds)."""
    evaluator = SimulatedTable3Evaluator()
    parallel = None
    if workers > 1:
        parallel = ParallelEvaluator(evaluator, workers=workers)
    store = PersistentEvalCache(cache_path)
    searcher = MetacoreSearch(
        bench_space(),
        DesignGoal(objectives=[Objective("area_mm2")]),
        parallel if parallel is not None else evaluator,
        config=SearchConfig(max_resolution=2, refine_top_k=3),
        store=store,
    )
    start = time.perf_counter()
    try:
        result = searcher.run()
    finally:
        if parallel is not None:
            parallel.close()
        store.close()
    return result, time.perf_counter() - start


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        serial_result, serial_cold_s = run_search(
            1, tmp_path / "serial.jsonl"
        )
        parallel_result, parallel_cold_s = run_search(
            WORKERS, tmp_path / "parallel.jsonl"
        )
        warm_result, serial_warm_s = run_search(
            1, tmp_path / "serial.jsonl"
        )

    assert serial_result.best_point == parallel_result.best_point, (
        "parallel search diverged from serial"
    )
    assert serial_result.best_point == warm_result.best_point, (
        "warm search diverged from cold"
    )
    parallel_speedup = serial_cold_s / parallel_cold_s
    warm_speedup = serial_cold_s / serial_warm_s
    report = {
        "benchmark": "table3-style multiresolution search (simulated costs)",
        "workers": WORKERS,
        "evaluations": serial_result.log.n_evaluations,
        "serial_cold_s": round(serial_cold_s, 4),
        "parallel_cold_s": round(parallel_cold_s, 4),
        "serial_warm_s": round(serial_warm_s, 4),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "warm_persistent_hits": warm_result.persistent_hits,
    }
    out = repo_root / "BENCH_search.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    ok = parallel_speedup >= 2.0 and warm_speedup >= 5.0
    if not ok:
        print(
            f"FAIL: need >=2x parallel (got {parallel_speedup:.2f}x) "
            f"and >=5x warm (got {warm_speedup:.2f}x)",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
