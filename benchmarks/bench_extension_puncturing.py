"""Extension: punctured-rate sweep on one Viterbi core.

Not a paper table — an extension exercising the general code rate k/n
of Sec. 3.1.  The shape to hold: at fixed Es/N0, BER degrades
monotonically as puncturing removes redundancy, while the decoder
hardware (trellis, datapath) stays identical.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    STANDARD_PATTERNS,
    Trellis,
    ViterbiDecoder,
)

ES_N0_DB = 4.0
RATES = ["1/2", "2/3", "3/4", "5/6", "7/8"]


def _run():
    encoder = ConvolutionalEncoder(7)
    decoder = ViterbiDecoder(
        Trellis.from_encoder(encoder), AdaptiveQuantizer(3), 49
    )
    rows = []
    for rate in RATES:
        simulator = BERSimulator(
            encoder, frame_length=280, puncture=STANDARD_PATTERNS[rate]
        )
        point = simulator.measure(
            decoder, ES_N0_DB, max_bits=scaled_bits(60_000),
            target_errors=300,
        )
        rows.append((rate, point))
    return rows


@pytest.mark.benchmark(group="extension-puncturing")
def test_extension_punctured_rates(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(f"Extension — punctured rates, K=7 soft decoding, "
           f"Es/N0={ES_N0_DB} dB")
    report(f"{'rate':>5s} {'BER':>12s} {'errors/bits':>16s}")
    for rate, point in rows:
        report(f"{rate:>5s} {point.ber:12.3e} "
               f"{point.errors:>7d}/{point.bits}")
    bers = [point.ber for _, point in rows]
    # Monotone degradation with rate (allowing zero-error ties at the
    # strong end).
    for previous, current in zip(bers, bers[1:]):
        assert current >= previous
    assert bers[-1] > bers[0]
    assert bers[-1] > 10 * max(bers[0], 1e-7)
