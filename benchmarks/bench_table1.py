"""Table 1: area of three Viterbi instances at a fixed 1 Mbps.

Paper values (0.35->0.25 um scaled model): K=3 instance 0.26 mm^2,
K=5 multiresolution instance 0.56 mm^2, K=7 multiresolution instance
1.73 mm^2 — a ~7x spread across instances with comparable BER.
"""

from __future__ import annotations

import pytest

from repro.hardware import ViterbiInstanceParams, optimize_machine, viterbi_program

#: The three instances of Table 1 (trellis depth is given in multiples
#: of K there: 2*K and 5*K).
TABLE1_INSTANCES = [
    ("K=3  L=2K  R=3 soft", ViterbiInstanceParams(3, 6, 3), 0.26),
    (
        "K=5  L=5K  R1=1 R2=3 M=8",
        ViterbiInstanceParams(5, 25, 1, 2, 3, 8, 1),
        0.56,
    ),
    (
        "K=7  L=5K  R1=1 R2=3 M=4",
        ViterbiInstanceParams(7, 35, 1, 2, 3, 4, 1),
        1.73,
    ),
]

THROUGHPUT_BPS = 1.0e6


def _areas():
    rows = []
    for label, params, paper_mm2 in TABLE1_INSTANCES:
        estimate = optimize_machine(viterbi_program(params), THROUGHPUT_BPS)
        rows.append((label, estimate, paper_mm2))
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_viterbi_instance_areas(benchmark, report):
    rows = benchmark.pedantic(_areas, rounds=1, iterations=1)
    report("Table 1 — Viterbi instance areas at fixed 1 Mbps throughput")
    report(f"{'instance':28s} {'area mm^2':>10s} {'paper':>7s} {'ALUs':>5s} {'cyc/bit':>8s}")
    for label, estimate, paper_mm2 in rows:
        report(
            f"{label:28s} {estimate.area_mm2:10.2f} {paper_mm2:7.2f} "
            f"{estimate.machine.n_alus:5d} {estimate.schedule.cycles:8.0f}"
        )
    areas = [estimate.area_mm2 for _, estimate, _ in rows]
    papers = [paper for _, _, paper in rows]
    # Shape: strictly increasing across the three instances, with a
    # large spread between the smallest and largest, and each row
    # within a factor ~2 of the paper's absolute number.
    assert areas[0] < areas[1] < areas[2]
    assert areas[2] / areas[0] > 3.0
    for area, paper in zip(areas, papers):
        assert paper / 2.0 < area < paper * 2.0
