"""Ablation: multiresolution normalization methods (paper Sec. 3.3).

The paper insists on a correction term keeping low- and high-resolution
accumulated errors comparable, and proposes averaging the difference of
the best N branch metrics.  This ablation measures BER for: no
normalization (catastrophic), the pure difference-of-best correction
("offset"), the rescale-then-correct variant ("scale-offset", the
library default), and a sweep of the averaging count N.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_bits
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    Trellis,
    ViterbiDecoder,
)

ES_N0_DB = 2.0


def _run():
    encoder = ConvolutionalEncoder(5)
    trellis = Trellis.from_encoder(encoder)
    simulator = BERSimulator(encoder, frame_length=256)

    def measure(decoder):
        return simulator.measure(
            decoder, ES_N0_DB, max_bits=scaled_bits(60_000), target_errors=400
        ).ber

    rows = {}
    rows["hard reference"] = measure(
        ViterbiDecoder(trellis, HardQuantizer(), 25)
    )
    for method in ("none", "offset", "scale-offset"):
        decoder = MultiresolutionViterbiDecoder(
            trellis, HardQuantizer(), AdaptiveQuantizer(3), 25,
            multires_paths=8, normalization_count=1,
            normalization_method=method,
        )
        rows[f"M=8 norm={method}"] = measure(decoder)
    for n in (1, 2, 4, 8):
        decoder = MultiresolutionViterbiDecoder(
            trellis, HardQuantizer(), AdaptiveQuantizer(3), 25,
            multires_paths=8, normalization_count=n,
        )
        rows[f"M=8 N={n}"] = measure(decoder)
    return rows


@pytest.mark.benchmark(group="ablation-normalization")
def test_ablation_normalization_methods(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(f"Ablation — normalization methods (K=5, M=8, Es/N0={ES_N0_DB} dB)")
    for label, ber in rows.items():
        report(f"  {label:24s} BER = {ber:.3e}")
    hard = rows["hard reference"]
    # No correction term: worse than not recomputing at all.
    assert rows["M=8 norm=none"] > hard
    # Both corrections beat hard decoding decisively.
    assert rows["M=8 norm=offset"] < hard
    assert rows["M=8 norm=scale-offset"] < hard * 0.5
    # Every averaging count N works (the knob is a refinement, not a
    # stability requirement).
    for n in (1, 2, 4, 8):
        assert rows[f"M=8 N={n}"] < hard
