"""Tests for the AWGN channel and the quantizers (paper Fig. 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.viterbi import (
    AWGNChannel,
    AdaptiveQuantizer,
    FixedQuantizer,
    HardQuantizer,
    bpsk_modulate,
    es_n0_db_to_linear,
    es_n0_linear_to_db,
    make_quantizer,
    noise_sigma,
)


class TestChannel:
    def test_db_linear_round_trip(self):
        for db in (-3.0, 0.0, 1.0, 4.5):
            assert es_n0_linear_to_db(es_n0_db_to_linear(db)) == pytest.approx(db)

    def test_linear_one_is_zero_db(self):
        assert es_n0_linear_to_db(1.0) == pytest.approx(0.0)

    def test_noise_sigma_at_zero_db(self):
        assert noise_sigma(0.0) == pytest.approx(math.sqrt(0.5))

    def test_bpsk_mapping(self):
        out = bpsk_modulate(np.array([0, 1, 0]))
        assert np.array_equal(out, [1.0, -1.0, 1.0])

    def test_transmit_reproducible(self):
        channel = AWGNChannel(2.0)
        symbols = np.array([0, 1, 1, 0])
        a = channel.transmit(symbols, rng=11)
        b = channel.transmit(symbols, rng=11)
        assert np.array_equal(a, b)

    def test_transmit_noise_statistics(self):
        channel = AWGNChannel(0.0)
        symbols = np.zeros(200_000, dtype=np.int8)
        received = channel.transmit(symbols, rng=0)
        noise = received - 1.0
        assert abs(noise.mean()) < 0.01
        assert noise.std() == pytest.approx(channel.sigma, rel=0.01)

    def test_uncoded_ber_formula(self):
        # Q(sqrt(2)) at 0 dB.
        assert AWGNChannel(0.0).uncoded_ber() == pytest.approx(
            0.5 * math.erfc(1.0), rel=1e-12
        )

    def test_from_linear_matches_paper_units(self):
        assert AWGNChannel.from_linear(1.0).es_n0_db == pytest.approx(0.0)

    def test_from_linear_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            AWGNChannel.from_linear(0.0)


class TestQuantizers:
    def test_hard_is_sign(self):
        quantizer = HardQuantizer()
        out = quantizer.quantize(np.array([-0.2, 0.0, 0.7]))
        assert np.array_equal(out, [0, 1, 1])

    def test_hard_levels(self):
        quantizer = HardQuantizer()
        assert quantizer.n_levels == 2
        assert quantizer.ideal_level(0) == 1
        assert quantizer.ideal_level(1) == 0

    def test_fixed_three_bit_levels(self):
        """The 8-level uniform quantizer of the paper's Fig. 4."""
        quantizer = FixedQuantizer(3, decision_level=0.25)
        samples = np.array([-2.0, -0.6, -0.3, -0.1, 0.1, 0.3, 0.6, 2.0])
        out = quantizer.quantize(samples)
        assert np.array_equal(out, [0, 1, 2, 3, 4, 5, 6, 7])

    def test_thresholds_count_and_symmetry(self):
        quantizer = FixedQuantizer(3, decision_level=0.5)
        thresholds = quantizer.thresholds()
        assert thresholds.size == 7
        assert np.allclose(thresholds, -thresholds[::-1])

    def test_adaptive_tracks_sigma(self):
        quantizer = AdaptiveQuantizer(3)
        assert quantizer.decision_level(0.8) == pytest.approx(0.4)
        assert quantizer.decision_level(0.2) == pytest.approx(0.1)

    def test_adaptive_needs_sigma(self):
        with pytest.raises(ConfigurationError):
            AdaptiveQuantizer(3).quantize(np.array([0.5]))

    @given(st.integers(2, 6), st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_quantizer_monotonic(self, bits, step):
        quantizer = FixedQuantizer(bits, decision_level=step)
        samples = np.linspace(-4, 4, 201)
        levels = quantizer.quantize(samples)
        assert np.all(np.diff(levels) >= 0)

    @given(st.integers(1, 6))
    def test_noiseless_symbols_nearest_their_ideal(self, bits):
        """A clean symbol must land closer to its own ideal level than
        to the opposite bit's (saturation to the exact ideal only
        happens when the decision level is small enough)."""
        quantizer = (
            HardQuantizer() if bits == 1 else AdaptiveQuantizer(bits)
        )
        clean = bpsk_modulate(np.array([0, 1]))
        levels = quantizer.quantize(clean, sigma=0.3)
        for index, bit in enumerate((0, 1)):
            own = abs(levels[index] - quantizer.ideal_level(bit))
            other = abs(levels[index] - quantizer.ideal_level(1 - bit))
            assert own < other

    def test_factory_aliases(self):
        assert isinstance(make_quantizer("A", 3), AdaptiveQuantizer)
        assert isinstance(make_quantizer("F", 3), FixedQuantizer)
        assert isinstance(make_quantizer("hard", 1), HardQuantizer)

    def test_factory_one_bit_soft_degenerates_to_hard(self):
        assert isinstance(make_quantizer("adaptive", 1), HardQuantizer)

    def test_factory_rejects_hard_multibit(self):
        with pytest.raises(ConfigurationError):
            make_quantizer("hard", 3)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_quantizer("fuzzy", 3)

    def test_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            FixedQuantizer(0)
        with pytest.raises(ConfigurationError):
            FixedQuantizer(9)
        with pytest.raises(ConfigurationError):
            FixedQuantizer(3, decision_level=-1.0)
