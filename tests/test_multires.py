"""Tests for the multiresolution Viterbi decoder (paper Sec. 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viterbi import (
    AWGNChannel,
    AdaptiveQuantizer,
    BERSimulator,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    ViterbiDecoder,
    bpsk_modulate,
)


def _multires(trellis, m, n=1, method="scale-offset", depth=25):
    return MultiresolutionViterbiDecoder(
        trellis,
        HardQuantizer(),
        AdaptiveQuantizer(3),
        depth,
        multires_paths=m,
        normalization_count=n,
        normalization_method=method,
    )


class TestConstruction:
    def test_rejects_equal_resolutions(self, trellis_k5):
        with pytest.raises(ConfigurationError):
            MultiresolutionViterbiDecoder(
                trellis_k5, AdaptiveQuantizer(3), AdaptiveQuantizer(3), 25, 4
            )

    def test_rejects_m_out_of_range(self, trellis_k5):
        with pytest.raises(ConfigurationError):
            _multires(trellis_k5, 17)
        with pytest.raises(ConfigurationError):
            _multires(trellis_k5, 0)

    def test_rejects_n_above_m(self, trellis_k5):
        with pytest.raises(ConfigurationError):
            _multires(trellis_k5, 4, n=5)

    def test_rejects_unknown_normalization(self, trellis_k5):
        with pytest.raises(ConfigurationError):
            _multires(trellis_k5, 4, method="magic")

    def test_describe_lists_parameters(self, trellis_k5):
        decoder = _multires(trellis_k5, 8, n=2)
        text = decoder.describe()
        assert "M=8" in text and "N=2" in text and "R1=1" in text


class TestDecoding:
    def test_noiseless_round_trip(self, encoder_k5, trellis_k5, rng):
        decoder = _multires(trellis_k5, 4)
        bits = rng.integers(0, 2, size=200, dtype=np.int8)
        clean = bpsk_modulate(encoder_k5.encode(bits))
        assert np.array_equal(decoder.decode(clean, sigma=0.4), bits)

    def test_full_recompute_matches_soft(self, encoder_k5, trellis_k5):
        """M = 2**(K-1) with scale-offset behaves like soft decoding."""
        channel = AWGNChannel(2.0)
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(16, 256), dtype=np.int8)
        received = channel.transmit(encoder_k5.encode(bits), rng)
        multires = _multires(trellis_k5, 16)
        soft = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        errors_multires = np.count_nonzero(
            multires.decode(received, channel.sigma) != bits
        )
        errors_soft = np.count_nonzero(
            soft.decode(received, channel.sigma) != bits
        )
        # Not bit-identical (the correction term shifts metrics), but
        # the error counts must be of the same quality.
        assert errors_multires <= max(2 * errors_soft, errors_soft + 12)

    def test_ber_ordering_hard_multires_soft(self, encoder_k5, trellis_k5):
        """The Fig. 8 ordering: hard > M=4 > M=8 > soft in BER."""
        simulator = BERSimulator(encoder_k5, frame_length=256)
        hard = ViterbiDecoder(trellis_k5, HardQuantizer(), 25)
        soft = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        m4 = _multires(trellis_k5, 4)
        m8 = _multires(trellis_k5, 8)
        bers = {}
        for label, decoder in [
            ("hard", hard), ("m4", m4), ("m8", m8), ("soft", soft)
        ]:
            point = simulator.measure(
                decoder, 1.0, max_bits=60_000, target_errors=400
            )
            bers[label] = point.ber
        assert bers["hard"] > bers["m4"] > bers["m8"] > bers["soft"] * 0.5

    def test_improvement_magnitude_matches_paper(self, encoder_k5, trellis_k5):
        """M=4 recovers a large fraction of the hard-decision BER.

        The paper reports ~64% average improvement for M=4; we accept a
        generous band around it to stay robust to seeds.
        """
        simulator = BERSimulator(encoder_k5, frame_length=256)
        hard = ViterbiDecoder(trellis_k5, HardQuantizer(), 25)
        m4 = _multires(trellis_k5, 4)
        sweep_hard = simulator.sweep(hard, [0.0, 1.0, 2.0], max_bits=60_000,
                                     target_errors=400)
        sweep_m4 = simulator.sweep(m4, [0.0, 1.0, 2.0], max_bits=60_000,
                                   target_errors=400)
        improvement = sweep_m4.improvement_over(sweep_hard)
        assert 40.0 < improvement < 85.0

    def test_no_normalization_is_catastrophic(self, encoder_k5, trellis_k5):
        """Without the correction term the decoder breaks (Sec. 3.3)."""
        simulator = BERSimulator(encoder_k5, frame_length=256)
        broken = _multires(trellis_k5, 4, method="none")
        point = simulator.measure(broken, 2.0, max_bits=20_000, target_errors=200)
        assert point.ber > 0.05

    def test_offset_normalization_works_at_m8(self, encoder_k5, trellis_k5):
        """The paper's pure difference-of-best correction is viable."""
        simulator = BERSimulator(encoder_k5, frame_length=256)
        hard = ViterbiDecoder(trellis_k5, HardQuantizer(), 25)
        offset = _multires(trellis_k5, 8, method="offset")
        ber_hard = simulator.measure(hard, 2.0, max_bits=40_000,
                                     target_errors=300).ber
        ber_offset = simulator.measure(offset, 2.0, max_bits=40_000,
                                       target_errors=300).ber
        assert ber_offset < ber_hard

    def test_averaged_correction_n(self, encoder_k5, trellis_k5):
        """N > 1 (averaging more branch differences) still decodes."""
        simulator = BERSimulator(encoder_k5, frame_length=256)
        decoder = _multires(trellis_k5, 8, n=4)
        point = simulator.measure(decoder, 2.0, max_bits=40_000,
                                  target_errors=300)
        assert point.ber < 1e-2

    def test_m1_still_valid(self, encoder_k5, trellis_k5, rng):
        decoder = _multires(trellis_k5, 1)
        bits = rng.integers(0, 2, size=100, dtype=np.int8)
        clean = bpsk_modulate(encoder_k5.encode(bits))
        assert np.array_equal(decoder.decode(clean, sigma=0.4), bits)
