"""End-to-end integration tests across subsystems.

These reproduce miniature versions of the paper's experiments so that
regressions in any layer (substrate, cost models, search) surface as
behavioural failures, not just unit mismatches.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BERThresholdCurve,
    Objective,
    SearchConfig,
    pareto_front,
)
from repro.iir import (
    IIRMetaCore,
    IIRSpec,
    design_filter,
    minimum_word_length,
    paper_bandpass_spec,
    realize,
)
from repro.viterbi import (
    BERSimulator,
    ConvolutionalEncoder,
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    build_decoder,
)


class TestViterbiPipeline:
    def test_encode_channel_decode_chain_all_methods(self):
        """Full chain for hard, soft, and multiresolution decoding."""
        encoder = ConvolutionalEncoder(5)
        simulator = BERSimulator(encoder, frame_length=256)
        points = {}
        for label, overrides in [
            ("hard", {"M": 0, "R1": 1, "Q": "hard"}),
            ("soft", {"M": 0, "R1": 3, "Q": "adaptive"}),
            ("multires", {"M": 8, "R1": 1, "R2": 3, "Q": "adaptive"}),
        ]:
            point = {
                "K": 5, "L_mult": 5, "G": "standard", "R1": 1,
                "R2": 3, "Q": "adaptive", "N": 1, "M": 0,
            }
            point.update(overrides)
            decoder = build_decoder(point)
            points[label] = simulator.measure(
                decoder, 2.0, max_bits=40_000, target_errors=250
            ).ber
        assert points["hard"] > points["multires"] > points["soft"] * 0.3

    def test_area_ber_tradeoff_pareto(self):
        """Larger K buys BER with area — a genuine trade-off curve."""
        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(3.0, 0.5),
        )
        evaluator = ViterbiMetacoreEvaluator(spec)
        from repro.core import EvaluationRecord

        records = []
        for k in (3, 5, 7):
            point = {
                "K": k, "L_mult": 5, "G": "standard", "R1": 3,
                "R2": 4, "Q": "adaptive", "N": 1, "M": 0,
            }
            metrics = evaluator.evaluate(point, fidelity=0)
            records.append(
                EvaluationRecord(tuple(sorted(point.items())), 0, metrics)
            )
        front = pareto_front(
            records, [Objective("area_mm2"), Objective("ber")]
        )
        # All three sit on the front: more area always buys better BER.
        assert len(front) == 3

    def test_search_prefers_multires_over_pure_soft_when_it_wins(self):
        """At a mid BER target, some cheap configuration wins over the
        most expensive soft decoder (the paper's core claim that the
        richer space contains cheaper feasible points)."""
        spec = ViterbiSpec(
            throughput_bps=2e6,
            ber_curve=BERThresholdCurve.single(3.0, 1e-3),
        )
        metacore = ViterbiMetaCore(
            spec, fixed={"G": "standard", "N": 1},
            config=SearchConfig(max_resolution=2, refine_top_k=3),
        )
        result = metacore.search()
        assert result.feasible
        winner_area = result.best_metrics["area_mm2"]
        # Compare against the brute-force "max everything" instance.
        evaluator = ViterbiMetacoreEvaluator(spec)
        big = evaluator.evaluate(
            {
                "K": 7, "L_mult": 7, "G": "standard", "R1": 3,
                "R2": 5, "Q": "adaptive", "N": 1, "M": 0,
            },
            fidelity=0,
        )
        assert winner_area < big["area_mm2"]


class TestIIRPipeline:
    def test_design_realize_quantize_synthesize(self):
        """The full Sec. 4.5 flow for one candidate."""
        from repro.hardware.synthesis import estimate_iir_implementation

        spec = paper_bandpass_spec()
        tf = design_filter(spec, "elliptic").to_tf()
        realization = realize("cascade", tf)
        word = minimum_word_length(realization, spec, 24)
        assert word is not None
        estimate = estimate_iir_implementation(
            realization.dataflow(), word, 1.0
        )
        assert estimate.area_mm2 > 0
        assert estimate.cycles_per_sample >= 1

    def test_structures_disagree_on_word_length(self):
        """The quantization-sensitivity spread that drives Table 4."""
        from repro.iir.design import BandpassSpec

        spec = paper_bandpass_spec()
        margin = BandpassSpec(
            spec.passband_low, spec.passband_high,
            spec.stopband_low, spec.stopband_high,
            0.6 * spec.passband_ripple, 0.6 * spec.stopband_ripple,
        )
        tf = design_filter(margin, "elliptic").to_tf()
        words = {}
        for name in ("ladder", "cascade", "direct2"):
            words[name] = minimum_word_length(realize(name, tf), spec, 28)
        assert words["ladder"] < words["direct2"] if words["direct2"] else True
        assert words["ladder"] <= words["cascade"]

    def test_best_area_monotone_in_throughput(self):
        config = SearchConfig(max_resolution=2, refine_top_k=3)
        areas = []
        for period in (5.0, 1.0, 0.25):
            result = IIRMetaCore(IIRSpec.paper(period), config=config).search()
            assert result.feasible
            areas.append(result.best_metrics["area_mm2"])
        assert areas[0] <= areas[1] <= areas[2]

    def test_search_reduction_over_average(self):
        """Best solution is well below the average feasible candidate
        (the paper's headline Table 4 statistic)."""
        result = IIRMetaCore(
            IIRSpec.paper(1.0),
            config=SearchConfig(max_resolution=2, refine_top_k=3),
        ).search()
        feasible = [
            r.metrics["area_mm2"]
            for r in result.log.records
            if r.metrics.get("spec_violation", 1.0) == 0.0
            and math.isfinite(r.metrics["area_mm2"])
        ]
        average = sum(feasible) / len(feasible)
        best = result.best_metrics["area_mm2"]
        assert best < 0.6 * average  # at least 40% reduction


class TestCrossSubsystem:
    def test_search_beats_random_at_equal_budget(self):
        """Multiresolution search vs random sampling on the Viterbi
        space with the same evaluator."""
        from repro.core import RandomSearch
        from repro.viterbi.metacore import normalize_viterbi_point

        spec = ViterbiSpec(
            throughput_bps=2e6,
            ber_curve=BERThresholdCurve.single(3.0, 1e-2),
        )
        metacore = ViterbiMetaCore(
            spec, fixed={"G": "standard", "N": 1},
            config=SearchConfig(max_resolution=2, refine_top_k=2),
        )
        result = metacore.search()
        assert result.feasible
        budget = result.log.n_evaluations
        random_result = RandomSearch(
            metacore.design_space(),
            spec.goal(),
            ViterbiMetacoreEvaluator(spec),
            fidelity=0,
            normalizer=normalize_viterbi_point,
        ).run(n_samples=budget, seed=7)
        if random_result.feasible:
            assert (
                result.best_metrics["area_mm2"]
                <= random_result.best_metrics["area_mm2"] * 1.2
            )
