"""Tests for the Bayesian BER predictor (paper Sec. 4.4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BayesianBERPredictor,
    DesignSpace,
    DiscreteParameter,
    Gaussian,
    observation_from_counts,
)
from repro.errors import ConfigurationError


def _space() -> DesignSpace:
    return DesignSpace([DiscreteParameter("x", tuple(range(11)))])


class TestGaussian:
    def test_combination_between_means(self):
        a = Gaussian(-2.0, 0.5)
        b = Gaussian(-4.0, 0.5)
        combined = a.combined_with(b)
        assert -4.0 < combined.mean < -2.0
        assert combined.std < 0.5

    def test_precision_weighting(self):
        tight = Gaussian(-2.0, 0.1)
        loose = Gaussian(-6.0, 2.0)
        combined = tight.combined_with(loose)
        assert abs(combined.mean - tight.mean) < 0.05

    def test_ber_clamped(self):
        assert Gaussian(0.0, 1.0).ber == 0.5
        assert Gaussian(-3.0, 1.0).ber == pytest.approx(1e-3)


class TestObservation:
    def test_mean_matches_counts(self):
        obs = observation_from_counts(10, 10_000)
        assert obs.mean == pytest.approx(math.log10(1e-3))

    def test_more_errors_tighter(self):
        loose = observation_from_counts(4, 10_000)
        tight = observation_from_counts(400, 1_000_000)
        assert tight.std < loose.std

    def test_zero_errors_is_vague_upper_bound(self):
        obs = observation_from_counts(0, 10_000)
        assert obs.std >= 1.0

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            observation_from_counts(5, 0)
        with pytest.raises(ConfigurationError):
            observation_from_counts(-1, 10)
        with pytest.raises(ConfigurationError):
            observation_from_counts(11, 10)


class TestPredictor:
    def test_empty_predictor_has_no_prior(self):
        predictor = BayesianBERPredictor(_space())
        assert predictor.prior({"x": 5}) is None
        with pytest.raises(ConfigurationError):
            predictor.predict({"x": 5})

    def test_prior_interpolates_neighbors(self):
        predictor = BayesianBERPredictor(_space())
        predictor.add_measurement({"x": 0}, errors=1000, bits=10_000)  # 1e-1
        predictor.add_measurement({"x": 10}, errors=10, bits=10_000)  # 1e-3
        prior = predictor.prior({"x": 5})
        assert -3.0 < prior.mean < -1.0

    def test_prior_vaguer_far_from_data(self):
        predictor = BayesianBERPredictor(_space())
        predictor.add_measurement({"x": 0}, errors=100, bits=10_000)
        near = predictor.prior({"x": 1})
        far = predictor.prior({"x": 10})
        assert far.std > near.std

    def test_posterior_regularizes_short_run(self):
        """A noisy 2-error measurement gets pulled toward neighbors."""
        predictor = BayesianBERPredictor(_space())
        for x in (4, 6):
            predictor.add_measurement({"x": x}, errors=500, bits=100_000)  # 5e-3
        posterior = predictor.predict({"x": 5}, errors=2, bits=1_000)  # 2e-3 noisy
        raw = observation_from_counts(2, 1_000)
        neighbor_mean = math.log10(5e-3)
        assert abs(posterior.mean - neighbor_mean) < abs(raw.mean - neighbor_mean)

    def test_long_run_dominates_prior(self):
        predictor = BayesianBERPredictor(_space())
        predictor.add_measurement({"x": 4}, errors=10, bits=1_000)  # 1e-2
        posterior = predictor.predict({"x": 5}, errors=10_000, bits=10_000_000)
        assert posterior.mean == pytest.approx(-3.0, abs=0.15)

    def test_add_estimate(self):
        predictor = BayesianBERPredictor(_space())
        predictor.add_estimate({"x": 5}, ber=1e-4)
        assert predictor.n_points == 1
        assert predictor.prior({"x": 5}).mean == pytest.approx(-4.0, abs=0.5)

    def test_add_estimate_clamps(self):
        predictor = BayesianBERPredictor(_space())
        belief = predictor.add_estimate({"x": 5}, ber=2.0)
        assert belief.mean <= math.log10(0.5) + 1e-9

    def test_needs_longer_run_threshold(self):
        predictor = BayesianBERPredictor(_space())
        predictor.add_measurement({"x": 5}, errors=10_000, bits=10_000_000)
        assert not predictor.needs_longer_run({"x": 5})
        assert predictor.needs_longer_run({"x": 0}, decades=0.3)

    @given(st.integers(1, 500), st.integers(1_000, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_posterior_between_prior_and_observation(self, errors, bits):
        errors = min(errors, bits)
        predictor = BayesianBERPredictor(_space())
        predictor.add_measurement({"x": 0}, errors=100, bits=10_000)
        prior = predictor.prior({"x": 5})
        observation = observation_from_counts(errors, bits)
        posterior = predictor.predict({"x": 5}, errors=errors, bits=bits)
        lo = min(prior.mean, observation.mean) - 1e-9
        hi = max(prior.mean, observation.mean) + 1e-9
        assert lo <= posterior.mean <= hi
