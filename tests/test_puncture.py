"""Tests for punctured convolutional codes (rate k/n support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    PuncturePattern,
    STANDARD_PATTERNS,
    Trellis,
    ViterbiDecoder,
    bpsk_modulate,
    standard_pattern,
)


class TestPattern:
    def test_standard_rates(self):
        assert standard_pattern("1/2").rate == (1, 2)
        assert standard_pattern("2/3").rate == (2, 3)
        assert standard_pattern("3/4").rate == (3, 4)
        assert standard_pattern("5/6").rate == (5, 6)
        assert standard_pattern("7/8").rate == (7, 8)

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            standard_pattern("9/10")

    def test_rejects_bad_masks(self):
        with pytest.raises(ConfigurationError):
            PuncturePattern("x", ())
        with pytest.raises(ConfigurationError):
            PuncturePattern("x", ((1, 2),))
        with pytest.raises(ConfigurationError):
            PuncturePattern("x", ((0, 0),))
        with pytest.raises(ConfigurationError):
            PuncturePattern("x", ((1, 1), (1,)))

    def test_mask_array_tiles(self):
        pattern = standard_pattern("3/4")
        mask = pattern.mask_array(6)
        assert mask.shape == (6, 2)
        assert np.array_equal(mask[:3], mask[3:])

    def test_puncture_depuncture_round_trip(self):
        pattern = standard_pattern("3/4")
        symbols = np.arange(24).reshape(2, 6, 2).astype(float)
        punctured = pattern.puncture(symbols)
        assert punctured.shape == (2, 8)  # 6 steps * 2 syms * (4/6 kept)
        restored = pattern.depuncture(punctured, 6)
        keep = pattern.mask_array(6)
        assert np.array_equal(restored[..., keep], symbols[..., keep])
        assert np.isnan(restored[..., ~keep]).all()

    def test_puncture_requires_whole_periods(self):
        pattern = standard_pattern("3/4")
        with pytest.raises(ConfigurationError):
            pattern.puncture(np.zeros((4, 2)))

    def test_depuncture_validates_length(self):
        pattern = standard_pattern("2/3")
        with pytest.raises(ConfigurationError):
            pattern.depuncture(np.zeros(5), 4)


class TestPuncturedDecoding:
    @pytest.mark.parametrize("rate", ["2/3", "3/4", "5/6"])
    def test_noiseless_round_trip(self, rate, rng):
        encoder = ConvolutionalEncoder(7)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), AdaptiveQuantizer(3), 49
        )
        pattern = standard_pattern(rate)
        length = 10 * pattern.period
        bits = rng.integers(0, 2, size=(3, length), dtype=np.int8)
        symbols = encoder.encode(bits)
        clean = bpsk_modulate(pattern.puncture(symbols))
        received = pattern.depuncture(clean, length)
        decoded = decoder.decode(received, sigma=0.4)
        assert np.array_equal(decoded, bits)

    def test_hard_decision_erasures_neutral(self, rng):
        """Erased positions must not bias hard-decision decoding."""
        encoder = ConvolutionalEncoder(5)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 30
        )
        pattern = standard_pattern("2/3")
        bits = rng.integers(0, 2, size=(4, 100), dtype=np.int8)
        clean = bpsk_modulate(pattern.puncture(encoder.encode(bits)))
        received = pattern.depuncture(clean, 100)
        decoded = decoder.decode(received, sigma=0.4)
        assert np.array_equal(decoded, bits)

    def test_higher_rate_worse_ber(self):
        """Less redundancy costs BER at fixed Es/N0 — the fundamental
        rate/robustness trade-off."""
        encoder = ConvolutionalEncoder(7)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), AdaptiveQuantizer(3), 49
        )
        bers = {}
        for rate in ("1/2", "3/4", "7/8"):
            simulator = BERSimulator(
                encoder, frame_length=252, puncture=standard_pattern(rate)
            )
            bers[rate] = simulator.measure(
                decoder, 4.0, max_bits=30_000, target_errors=150
            ).ber
        assert bers["1/2"] <= bers["3/4"] <= bers["7/8"]
        assert bers["7/8"] > bers["1/2"]

    def test_simulator_validates_pattern_width(self):
        encoder = ConvolutionalEncoder(5, (0o37, 0o33, 0o25))  # rate 1/3
        with pytest.raises(ConfigurationError):
            BERSimulator(encoder, puncture=standard_pattern("3/4"))

    def test_simulator_rounds_frame_length(self):
        encoder = ConvolutionalEncoder(7)
        simulator = BERSimulator(
            encoder, frame_length=250, puncture=standard_pattern("3/4")
        )
        assert simulator.frame_length % 3 == 0
