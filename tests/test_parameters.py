"""Tests for design-space parameterization."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    frozen_point,
)
from repro.errors import DesignSpaceError


def _space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("k", (3, 5, 7)),
            DiscreteParameter("q", ("hard", "soft"), Correlation.NONE),
            ContinuousParameter("gamma", 0.2, 0.8),
        ]
    )


class TestDiscreteParameter:
    def test_rejects_empty(self):
        with pytest.raises(DesignSpaceError):
            DiscreteParameter("x", ())

    def test_rejects_duplicates(self):
        with pytest.raises(DesignSpaceError):
            DiscreteParameter("x", (1, 1))

    def test_index_of(self):
        parameter = DiscreteParameter("x", (2, 4, 8))
        assert parameter.index_of(4) == 1
        with pytest.raises(DesignSpaceError):
            parameter.index_of(3)

    def test_sample_indices_endpoints(self):
        parameter = DiscreteParameter("x", tuple(range(10)))
        samples = parameter.sample_indices(0, 9, 3)
        assert samples[0] == 0 and samples[-1] == 9

    def test_sample_indices_single(self):
        parameter = DiscreteParameter("x", tuple(range(10)))
        assert parameter.sample_indices(2, 8, 1) == [5]

    def test_sample_indices_capped_by_range(self):
        parameter = DiscreteParameter("x", tuple(range(10)))
        assert parameter.sample_indices(4, 5, 5) == [4, 5]

    @given(st.integers(0, 9), st.integers(0, 9), st.integers(1, 12))
    def test_sample_indices_always_in_range(self, a, b, count):
        lo, hi = min(a, b), max(a, b)
        parameter = DiscreteParameter("x", tuple(range(10)))
        samples = parameter.sample_indices(lo, hi, count)
        assert all(lo <= s <= hi for s in samples)
        assert samples == sorted(set(samples))


class TestContinuousParameter:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(DesignSpaceError):
            ContinuousParameter("x", 2.0, 1.0)

    def test_sample_endpoints(self):
        parameter = ContinuousParameter("x", 0.0, 1.0)
        samples = parameter.sample(0.0, 1.0, 5)
        assert samples[0] == 0.0 and samples[-1] == 1.0
        assert len(samples) == 5

    def test_sample_clipped_to_domain(self):
        parameter = ContinuousParameter("x", 0.0, 1.0)
        samples = parameter.sample(-5.0, 5.0, 3)
        assert min(samples) >= 0.0 and max(samples) <= 1.0

    def test_fixed_parameter(self):
        parameter = ContinuousParameter("x", 0.5, 0.5)
        assert parameter.is_fixed


class TestDesignSpace:
    def test_rejects_duplicate_names(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace([DiscreteParameter("a", (1,)), DiscreteParameter("a", (2,))])

    def test_size(self):
        space = DesignSpace(
            [DiscreteParameter("a", (1, 2)), DiscreteParameter("b", (1, 2, 3))]
        )
        assert space.size() == 6

    def test_size_infinite_with_continuous(self):
        assert math.isinf(_space().size())

    def test_free_dimensions(self):
        space = DesignSpace(
            [DiscreteParameter("a", (1,)), DiscreteParameter("b", (1, 2))]
        )
        assert space.free_dimensions == 1

    def test_validate_point(self):
        space = _space()
        point = space.validate_point({"k": 5, "q": "hard", "gamma": 0.5})
        assert point["gamma"] == 0.5

    def test_validate_rejects_missing_and_extra(self):
        space = _space()
        with pytest.raises(DesignSpaceError):
            space.validate_point({"k": 5, "q": "hard"})
        with pytest.raises(DesignSpaceError):
            space.validate_point(
                {"k": 5, "q": "hard", "gamma": 0.5, "zz": 1}
            )

    def test_validate_rejects_out_of_range(self):
        space = _space()
        with pytest.raises(DesignSpaceError):
            space.validate_point({"k": 4, "q": "hard", "gamma": 0.5})
        with pytest.raises(DesignSpaceError):
            space.validate_point({"k": 5, "q": "hard", "gamma": 0.95})

    def test_iter_points_counts(self):
        space = DesignSpace(
            [DiscreteParameter("a", (1, 2)), DiscreteParameter("b", ("x", "y", "z"))]
        )
        points = list(space.iter_points())
        assert len(points) == 6
        assert len({frozen_point(p) for p in points}) == 6

    def test_iter_points_rejects_free_continuous(self):
        with pytest.raises(DesignSpaceError):
            list(_space().iter_points())

    def test_getitem_and_contains(self):
        space = _space()
        assert space["k"].name == "k"
        assert "gamma" in space and "zz" not in space
        with pytest.raises(DesignSpaceError):
            space["zz"]

    def test_describe_lists_all(self):
        text = _space().describe()
        assert "k" in text and "gamma" in text and "non-correlated" in text

    def test_frozen_point_order_independent(self):
        assert frozen_point({"a": 1, "b": 2}) == frozen_point({"b": 2, "a": 1})
