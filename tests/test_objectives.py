"""Tests for objectives, constraints, and BER threshold curves."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    BERThresholdCurve,
    Constraint,
    DesignGoal,
    Direction,
    Objective,
)
from repro.errors import ConfigurationError


class TestObjective:
    def test_minimize_score(self):
        assert Objective("area").score({"area": 2.0}) == 2.0

    def test_maximize_score_negates(self):
        objective = Objective("speed", Direction.MAXIMIZE)
        assert objective.score({"speed": 5.0}) == -5.0

    def test_missing_metric_is_inf(self):
        assert Objective("area").score({}) == math.inf

    def test_nan_metric_is_inf(self):
        assert Objective("area").score({"area": math.nan}) == math.inf


class TestConstraint:
    def test_needs_exactly_one_bound(self):
        with pytest.raises(ConfigurationError):
            Constraint("x")
        with pytest.raises(ConfigurationError):
            Constraint("x", upper=1.0, lower=0.0)

    def test_upper_violation_relative(self):
        constraint = Constraint("x", upper=2.0)
        assert constraint.violation({"x": 1.0}) == 0.0
        assert constraint.violation({"x": 3.0}) == pytest.approx(0.5)

    def test_lower_violation_relative(self):
        constraint = Constraint("x", lower=4.0)
        assert constraint.violation({"x": 5.0}) == 0.0
        assert constraint.violation({"x": 2.0}) == pytest.approx(0.5)

    def test_missing_metric_is_inf(self):
        assert Constraint("x", upper=1.0).violation({}) == math.inf

    def test_satisfied(self):
        assert Constraint("x", upper=1.0).satisfied({"x": 1.0})
        assert not Constraint("x", upper=1.0).satisfied({"x": 1.01})


class TestBERThresholdCurve:
    def test_single_factory(self):
        curve = BERThresholdCurve.single(3.0, 1e-4)
        assert curve.es_n0_db_values == [3.0]

    def test_rejects_empty_and_bad_ber(self):
        with pytest.raises(ConfigurationError):
            BERThresholdCurve(points=())
        with pytest.raises(ConfigurationError):
            BERThresholdCurve(points=((1.0, 0.0),))
        with pytest.raises(ConfigurationError):
            BERThresholdCurve(points=((1.0, 0.9),))

    def test_violation_in_decades(self):
        curve = BERThresholdCurve.single(3.0, 1e-4)
        assert curve.violation({3.0: 1e-5}) == 0.0
        assert curve.violation({3.0: 1e-3}) == pytest.approx(1.0)

    def test_violation_worst_point(self):
        curve = BERThresholdCurve(points=((0.0, 1e-2), (3.0, 1e-4)))
        violation = curve.violation({0.0: 1e-1, 3.0: 1e-3})
        assert violation == pytest.approx(1.0)

    def test_violation_requires_all_points(self):
        curve = BERThresholdCurve(points=((0.0, 1e-2), (3.0, 1e-4)))
        with pytest.raises(ConfigurationError):
            curve.violation({0.0: 1e-3})

    def test_nan_measurement_is_inf(self):
        curve = BERThresholdCurve.single(3.0, 1e-4)
        assert curve.violation({3.0: math.nan}) == math.inf


class TestDesignGoal:
    def _goal(self) -> DesignGoal:
        return DesignGoal(
            objectives=[Objective("area")],
            constraints=[Constraint("violation", upper=0.0)],
        )

    def test_requires_objective(self):
        with pytest.raises(ConfigurationError):
            DesignGoal(objectives=[])

    def test_feasible_beats_infeasible(self):
        goal = self._goal()
        feasible = {"area": 100.0, "violation": 0.0}
        infeasible = {"area": 1.0, "violation": 0.5}
        assert goal.compare(feasible, infeasible) < 0

    def test_among_feasible_objective_decides(self):
        goal = self._goal()
        a = {"area": 1.0, "violation": 0.0}
        b = {"area": 2.0, "violation": 0.0}
        assert goal.compare(a, b) < 0
        assert goal.compare(b, a) > 0

    def test_among_infeasible_violation_decides(self):
        goal = self._goal()
        a = {"area": 9.0, "violation": 0.1}
        b = {"area": 1.0, "violation": 0.9}
        assert goal.compare(a, b) < 0

    def test_equal_compare_zero(self):
        goal = self._goal()
        a = {"area": 1.0, "violation": 0.0}
        assert goal.compare(a, dict(a)) == 0

    def test_ber_curve_adds_constraint(self):
        goal = DesignGoal(
            objectives=[Objective("area")],
            ber_curve=BERThresholdCurve.single(3.0, 1e-4),
        )
        assert not goal.is_feasible({"area": 1.0, "ber_violation": 0.5})
        assert goal.is_feasible({"area": 1.0, "ber_violation": 0.0})
