"""Tests for digital IIR filter design (all four families)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import signal

from repro.errors import FilterDesignError
from repro.iir.design import (
    BandpassSpec,
    FILTER_FAMILIES,
    LowpassSpec,
    butterworth_prototype,
    chebyshev1_prototype,
    design_filter,
    elliptic_prototype,
    lp_to_bp,
    paper_bandpass_spec,
    required_order,
    ripples_to_db,
)
from repro.iir.transfer import measure_bands


@pytest.fixture(scope="module")
def lowpass_spec():
    return LowpassSpec(0.3 * math.pi, 0.4 * math.pi, 0.02, 0.01)


class TestSpecs:
    def test_lowpass_rejects_bad_edges(self):
        with pytest.raises(FilterDesignError):
            LowpassSpec(0.5 * math.pi, 0.4 * math.pi, 0.02, 0.01)

    def test_bandpass_rejects_bad_ordering(self):
        with pytest.raises(FilterDesignError):
            BandpassSpec(0.3, 0.5, 0.4, 0.6, 0.02, 0.01)

    def test_ripple_bounds(self):
        with pytest.raises(FilterDesignError):
            LowpassSpec(0.3, 0.4, 0.0, 0.01)
        with pytest.raises(FilterDesignError):
            LowpassSpec(0.3, 0.4, 0.02, 1.5)

    def test_paper_spec_values(self):
        spec = paper_bandpass_spec()
        assert spec.passband_low == pytest.approx(0.411111 * math.pi)
        assert spec.passband_ripple == pytest.approx(0.015782)

    def test_ripples_to_db(self):
        rp, rs = ripples_to_db(0.1, 0.01)
        assert rp == pytest.approx(-20 * math.log10(0.9))
        assert rs == pytest.approx(40.0)


class TestOrderEstimation:
    def test_elliptic_matches_scipy_bandpass(self):
        spec = paper_bandpass_spec()
        rp, rs = ripples_to_db(spec.passband_ripple, spec.stopband_ripple)
        wp = [spec.passband_low / math.pi, spec.passband_high / math.pi]
        ws = [spec.stopband_low / math.pi, spec.stopband_high / math.pi]
        scipy_n, _ = signal.ellipord(wp, ws, rp, rs)
        ours = design_filter(spec, "elliptic").order
        assert ours == scipy_n

    def test_ordering_of_families(self, lowpass_spec):
        orders = {
            family: design_filter(lowpass_spec, family).order
            for family in FILTER_FAMILIES
        }
        assert orders["elliptic"] <= orders["chebyshev1"]
        assert orders["chebyshev1"] <= orders["butterworth"]

    def test_required_order_monotone_in_selectivity(self):
        loose = required_order("butterworth", 2.0, 0.2, 40.0)
        tight = required_order("butterworth", 1.1, 0.2, 40.0)
        assert tight > loose

    def test_required_order_rejects_bad_selectivity(self):
        with pytest.raises(FilterDesignError):
            required_order("butterworth", 0.9, 0.2, 40.0)

    def test_unknown_family(self):
        with pytest.raises(FilterDesignError):
            required_order("bessel", 2.0, 0.2, 40.0)


class TestPrototypes:
    def test_butterworth_poles_left_half_plane(self):
        zpk = butterworth_prototype(5, 0.2)
        assert all(p.real < 0 for p in zpk.poles)

    def test_chebyshev_gain_at_dc(self):
        # Odd order: |H(0)| = 1; even order: 1/sqrt(1+eps^2).
        odd = chebyshev1_prototype(5, 1.0)
        gain_odd = abs(
            odd.gain
            * np.prod([-z for z in odd.zeros])
            / np.prod([-p for p in odd.poles])
        ) if odd.zeros else abs(odd.gain / np.prod([-p for p in odd.poles]))
        assert gain_odd == pytest.approx(1.0, rel=1e-9)

    def test_elliptic_prototype_matches_scipy(self):
        ours = elliptic_prototype(4, 0.5, 40.0)
        z, p, k = signal.ellipap(4, 0.5, 40.0)
        assert sorted(abs(x) for x in ours.poles) == pytest.approx(
            sorted(abs(x) for x in p), rel=1e-6
        )
        assert sorted(abs(x) for x in ours.zeros) == pytest.approx(
            sorted(abs(x) for x in z), rel=1e-6
        )
        assert ours.gain == pytest.approx(k, rel=1e-6)

    def test_elliptic_order_one(self):
        zpk = elliptic_prototype(1, 0.5, 40.0)
        assert len(zpk.poles) == 1 and not zpk.zeros


class TestDesignMeetsSpec:
    @pytest.mark.parametrize("family", FILTER_FAMILIES)
    def test_lowpass_meets_spec(self, lowpass_spec, family):
        tf = design_filter(lowpass_spec, family).to_tf()
        assert tf.is_stable()
        measurement = measure_bands(
            tf, lowpass_spec.passbands, lowpass_spec.stopbands
        )
        assert measurement.passband_ripple <= lowpass_spec.passband_ripple * 1.05
        assert measurement.stopband_level <= lowpass_spec.stopband_ripple * 1.05

    @pytest.mark.parametrize("family", FILTER_FAMILIES)
    def test_paper_bandpass_meets_spec(self, family):
        spec = paper_bandpass_spec()
        tf = design_filter(spec, family).to_tf()
        assert tf.is_stable()
        measurement = measure_bands(tf, spec.passbands, spec.stopbands)
        assert measurement.passband_ripple <= spec.passband_ripple * 1.05
        assert measurement.stopband_level <= spec.stopband_ripple * 1.05

    def test_bandpass_digital_order_doubles(self):
        spec = paper_bandpass_spec()
        designed = design_filter(spec, "elliptic")
        assert designed.to_tf().order == 2 * designed.order

    def test_over_design_with_explicit_order(self):
        spec = paper_bandpass_spec()
        bigger = design_filter(spec, "elliptic", order=6)
        assert bigger.order == 6
        tf = bigger.to_tf()
        measurement = measure_bands(tf, spec.passbands, spec.stopbands)
        assert measurement.stopband_level <= spec.stopband_ripple * 1.05

    def test_elliptic_matches_scipy_response(self):
        """Full design path against scipy.signal.ellip (same order)."""
        spec = paper_bandpass_spec()
        rp, rs = ripples_to_db(spec.passband_ripple, spec.stopband_ripple)
        ours = design_filter(spec, "elliptic").to_tf()
        b, a = signal.ellip(
            4,
            rp,
            rs,
            [spec.passband_low / math.pi, spec.passband_high / math.pi],
            btype="bandpass",
        )
        omega = np.linspace(0.05, math.pi - 0.05, 256)
        ours_mag = ours.magnitude(omega)
        _, h = signal.freqz(b, a, worN=omega)
        # Same family/order/spec: responses agree closely everywhere.
        assert np.max(np.abs(ours_mag - np.abs(h))) < 5e-3


class TestTransforms:
    def test_lp_to_bp_doubles_order(self):
        prototype = butterworth_prototype(3, 0.2)
        bp = lp_to_bp(prototype, center=1.0, bandwidth=0.3)
        assert len(bp.poles) == 6
        assert len(bp.zeros) == 3  # added zeros at s = 0

    def test_lp_to_bp_center_maps_to_passband(self):
        prototype = butterworth_prototype(3, 0.2)
        bp = lp_to_bp(prototype, center=2.0, bandwidth=0.5)
        # |H(j w0)| equals the prototype's DC gain magnitude.
        s = 2.0j
        num = np.prod([s - z for z in bp.zeros]) if bp.zeros else 1.0
        den = np.prod([s - p for p in bp.poles])
        assert abs(bp.gain * num / den) == pytest.approx(1.0, rel=1e-6)
