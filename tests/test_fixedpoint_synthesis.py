"""Tests for fixed-point verification and the HYPER-style estimator."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, SynthesisError
from repro.hardware.synthesis import (
    add_delay_ns,
    estimate_iir_implementation,
    mult_delay_ns,
)
from repro.iir.design import BandpassSpec, design_filter, paper_bandpass_spec
from repro.iir.fixedpoint import (
    check_quantized,
    minimum_word_length,
)
from repro.iir.structures import realize
from repro.iir.structures.base import DataflowStats


@pytest.fixture(scope="module")
def margin_realizations():
    spec = paper_bandpass_spec()
    margin = BandpassSpec(
        spec.passband_low, spec.passband_high,
        spec.stopband_low, spec.stopband_high,
        0.6 * spec.passband_ripple, 0.6 * spec.stopband_ripple,
    )
    tf = design_filter(margin, "elliptic").to_tf()
    return spec, tf


class TestFixedPointChecks:
    def test_report_meets_at_high_word(self, margin_realizations):
        spec, tf = margin_realizations
        report = check_quantized(realize("cascade", tf), spec, 20)
        assert report.meets(spec)
        assert report.violation(spec) == 0.0

    def test_report_fails_at_low_word(self, margin_realizations):
        spec, tf = margin_realizations
        report = check_quantized(realize("cascade", tf), spec, 6)
        assert not report.meets(spec)
        assert report.violation(spec) > 0.0 or not report.stable

    def test_unstable_is_infinite_violation(self, margin_realizations):
        spec, tf = margin_realizations
        report = check_quantized(realize("direct2", tf), spec, 8)
        assert not report.stable
        assert math.isinf(report.violation(spec))

    def test_minimum_word_length_monotone(self, margin_realizations):
        """Once a word length works, every longer one must work."""
        spec, tf = margin_realizations
        realization = realize("cascade", tf)
        minimum = minimum_word_length(realization, spec)
        assert minimum is not None
        for extra in (1, 3, 6):
            assert check_quantized(realization, spec, minimum + extra).meets(spec)

    def test_minimum_word_length_none_when_impossible(self, margin_realizations):
        spec, tf = margin_realizations
        assert minimum_word_length(realize("direct2", tf), spec, 10) is None

    def test_ladder_needs_fewer_bits_than_cascade(self, margin_realizations):
        spec, tf = margin_realizations
        ladder = minimum_word_length(realize("ladder", tf), spec)
        cascade = minimum_word_length(realize("cascade", tf), spec)
        assert ladder is not None and cascade is not None
        assert ladder <= cascade


class TestSynthesisEstimator:
    def _stats(self, **overrides) -> DataflowStats:
        defaults = dict(
            multiplies=20, additions=16, delays=8,
            loop_multiplies=1, loop_additions=2,
        )
        defaults.update(overrides)
        return DataflowStats(**defaults)

    def test_delays_grow_with_word_length(self):
        assert mult_delay_ns(16) > mult_delay_ns(8)
        assert add_delay_ns(16) > add_delay_ns(8)

    def test_relaxed_period_single_units(self):
        estimate = estimate_iir_implementation(self._stats(), 12, 5.0)
        assert estimate.n_multipliers == 1
        assert estimate.n_adders == 1

    def test_tight_period_more_units(self):
        loose = estimate_iir_implementation(self._stats(), 12, 5.0)
        tight = estimate_iir_implementation(self._stats(), 12, 0.25)
        assert tight.n_multipliers > loose.n_multipliers
        assert tight.area_mm2 > loose.area_mm2

    def test_area_grows_with_word_length(self):
        narrow = estimate_iir_implementation(self._stats(), 8, 1.0)
        wide = estimate_iir_implementation(self._stats(), 20, 1.0)
        assert wide.area_mm2 > narrow.area_mm2

    def test_recursion_bound_infeasible(self):
        serial = self._stats(loop_multiplies=16, loop_additions=16)
        with pytest.raises(SynthesisError):
            estimate_iir_implementation(serial, 12, 0.25)

    def test_recursion_bound_feasible_when_slow(self):
        serial = self._stats(loop_multiplies=16, loop_additions=16)
        estimate = estimate_iir_implementation(serial, 12, 5.0)
        assert estimate.area_mm2 > 0

    def test_clock_longer_than_sample_rejected(self):
        with pytest.raises(SynthesisError):
            estimate_iir_implementation(self._stats(), 24, 0.01)

    def test_chain_local_cheaper_at_many_units(self):
        local = self._stats(chain_local=True)
        globl = self._stats(chain_local=False)
        a_local = estimate_iir_implementation(local, 12, 0.25)
        a_global = estimate_iir_implementation(globl, 12, 0.25)
        assert a_local.area_mm2 < a_global.area_mm2

    def test_chain_local_same_at_few_units(self):
        local = self._stats(chain_local=True)
        globl = self._stats(chain_local=False)
        a_local = estimate_iir_implementation(local, 12, 5.0)
        a_global = estimate_iir_implementation(globl, 12, 5.0)
        assert a_local.area_mm2 == pytest.approx(a_global.area_mm2)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            estimate_iir_implementation(self._stats(), 3, 1.0)
        with pytest.raises(ConfigurationError):
            estimate_iir_implementation(self._stats(), 12, 0.0)

    def test_throughput_property(self):
        estimate = estimate_iir_implementation(self._stats(), 12, 2.0)
        assert estimate.throughput_samples_per_s == pytest.approx(5e5)

    def test_adder_only_datapath(self):
        stats = self._stats(multiplies=0, loop_multiplies=0)
        estimate = estimate_iir_implementation(stats, 12, 1.0)
        assert estimate.n_multipliers == 0
        assert estimate.clock_ns == pytest.approx(add_delay_ns(12))


class TestLatency:
    def _stats(self, **overrides):
        defaults = dict(
            multiplies=20, additions=16, delays=8,
            loop_multiplies=1, loop_additions=2,
        )
        defaults.update(overrides)
        return DataflowStats(**defaults)

    def test_latency_positive_and_below_sample_period(self):
        estimate = estimate_iir_implementation(self._stats(), 12, 2.0)
        assert 0.0 < estimate.latency_us <= 2.0

    def test_serial_structure_higher_latency(self):
        short = estimate_iir_implementation(self._stats(), 12, 5.0)
        serial = estimate_iir_implementation(
            self._stats(loop_multiplies=16, loop_additions=16), 12, 5.0
        )
        assert serial.latency_us > short.latency_us

    def test_latency_cycles_consistent(self):
        estimate = estimate_iir_implementation(self._stats(), 12, 2.0)
        assert estimate.latency_us == pytest.approx(
            estimate.latency_cycles * estimate.clock_ns / 1000.0
        )
