"""Cluster serving tests: sharding, failover, hedging, drain.

The load-bearing property is unchanged from the serve layer: a request
routed through the cluster — across failover, hedging, and replica
loss mid-run — must answer **byte-identically** to the same request on
a single in-process facade.  Everything the router adds (consistent
hashing, health ejection, retry, drain fan-out) exists to preserve
that guarantee while the topology misbehaves underneath it.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict

import pytest

from repro.cluster import (
    ClusterHandle,
    HashRing,
    Replica,
    RouterConfig,
    RouterHandle,
    Topology,
    load_topology,
    topology_from_flags,
)
from repro.errors import ConfigurationError
from repro.serve import (
    ServeRequestError,
    ServiceConfig,
    spec_to_payload,
)
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    ok_response,
)


def canonical(record) -> bytes:
    """The byte-level form differential comparisons use."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


def iir_spec():
    from repro.iir import IIRSpec

    return IIRSpec.paper(4.0)


SEARCH_CONFIG = {"max_resolution": 1, "refine_top_k": 2}


def direct_search():
    from repro.core import SearchConfig
    from repro.iir import IIRMetaCore

    return IIRMetaCore(
        iir_spec(), config=SearchConfig(max_resolution=1, refine_top_k=2)
    ).search()


# ---------------------------------------------------------------------------
# Topology files and flags
# ---------------------------------------------------------------------------


class TestTopology:
    def test_valid_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(
            json.dumps(
                {
                    "replicas": [
                        {"name": "r0", "host": "127.0.0.1", "port": 7777},
                        {"name": "r1", "unix": "/tmp/r1.sock"},
                    ]
                }
            )
        )
        topology = load_topology(path)
        assert topology.names() == ["r0", "r1"]
        assert topology.replicas[0].address == "127.0.0.1:7777"
        assert topology.replicas[1].address == "/tmp/r1.sock"

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all",
            "[1, 2, 3]",
            '{"no_replicas": true}',
            '{"replicas": []}',
            '{"replicas": [42]}',
            '{"replicas": [{"host": "h", "port": 1}]}',  # missing name
            '{"replicas": [{"name": "a"}]}',  # no address at all
            '{"replicas": [{"name": "a", "host": "h"}]}',  # no port
            '{"replicas": [{"name": "a", "host": "h", "port": "x"}]}',
            '{"replicas": [{"name": "a", "host": "h", "port": 70000}]}',
            '{"replicas": [{"name": "a", "unix": "/s", "port": 1}]}',
            '{"replicas": [{"name": "a", "host": "h", "port": 1, "x": 2}]}',
            '{"replicas": [{"name": "a", "host": "h", "port": 1},'
            ' {"name": "a", "host": "h", "port": 2}]}',  # duplicate name
        ],
    )
    def test_corrupt_or_partial_file_rejected(self, tmp_path, content):
        path = tmp_path / "topo.json"
        path.write_text(content)
        with pytest.raises(ConfigurationError):
            load_topology(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_topology(tmp_path / "absent.json")

    def test_corrupt_file_rejected_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "topo.json"
        path.write_text('{"replicas": [{"name": "a"}]}')
        assert main(["cluster", "--topology", str(path)]) == 1
        assert "invalid topology" in capsys.readouterr().err

    def test_flags(self):
        topology = topology_from_flags(
            ["127.0.0.1:7777", "unix:/tmp/r.sock"]
        )
        assert topology.names() == ["replica-0", "replica-1"]
        assert topology.replicas[1].unix_path == "/tmp/r.sock"

    @pytest.mark.parametrize("flag", ["nocolon", ":123", "host:notaport"])
    def test_bad_flags_rejected(self, flag):
        with pytest.raises(ConfigurationError):
            topology_from_flags([flag])


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_preference_covers_all_replicas_once(self):
        ring = HashRing(["a", "b", "c", "d"])
        for i in range(50):
            preference = ring.preference(f"key-{i}")
            assert sorted(preference) == ["a", "b", "c", "d"]

    def test_deterministic_across_instances(self):
        names = ["r0", "r1", "r2"]
        first = HashRing(names)
        second = HashRing(list(reversed(names)))
        for i in range(50):
            key = f"fp-{i}"
            assert first.preference(key) == second.preference(key)

    def test_spread(self):
        ring = HashRing(["a", "b", "c"])
        owners = [ring.owner(f"key-{i}") for i in range(300)]
        counts = {name: owners.count(name) for name in "abc"}
        # md5 spreading: no replica should own (almost) everything.
        assert all(count > 30 for count in counts.values()), counts

    def test_backup_is_second_preference(self):
        ring = HashRing(["a", "b"])
        preference = ring.preference("some-fingerprint")
        assert len(preference) == 2
        assert preference[0] != preference[1]


# ---------------------------------------------------------------------------
# Differential: cluster == direct facade, bit for bit
# ---------------------------------------------------------------------------


class TestClusterDifferential:
    def test_eval_byte_identical_through_cluster(self):
        from repro.iir.metacore import IIRMetacoreEvaluator

        spec = iir_spec()
        point = {
            "structure": "cascade",
            "family": "elliptic",
            "word_length": 12,
            "ripple_allocation": 0.85,
        }
        serial = IIRMetacoreEvaluator(spec).evaluate(point, 0)
        with ClusterHandle(ServiceConfig(), replicas=2) as cluster:
            with cluster.client() as client:
                served = client.eval(
                    point, fidelity=0, spec=spec_to_payload(spec)
                )
        assert canonical(served) == canonical(dict(serial))

    def test_search_selects_same_design_as_direct(self):
        direct = direct_search()
        with ClusterHandle(ServiceConfig(), replicas=2) as cluster:
            with cluster.client() as client:
                served = client.search(
                    spec=spec_to_payload(iir_spec()), config=SEARCH_CONFIG
                )
        assert served["best_point"] == direct.best_point
        assert canonical(served["best_metrics"]) == canonical(
            dict(direct.best_metrics)
        )
        assert served["n_evaluations"] == direct.log.n_evaluations

    def test_search_with_replica_killed_mid_run_matches_direct(self):
        direct = direct_search()
        cluster = ClusterHandle(
            ServiceConfig(),
            replicas=2,
            router_config=RouterConfig(
                hedge_after_s=None,
                retry_backoff_s=0.01,
                probe_interval_s=0.1,
                eject_after=1,
            ),
        )
        with cluster:
            router = cluster.router
            spec_payload = spec_to_payload(iir_spec())
            fingerprint = cluster.session_for_spec(spec_payload)
            owner = router.ring.owner(fingerprint)
            owner_index = int(owner.rsplit("-", 1)[1])
            owner_handle = cluster.replica_handles[owner_index]

            result: Dict[str, object] = {}

            def run_search():
                with cluster.client(timeout_s=120.0) as client:
                    result["served"] = client.search(
                        spec=spec_payload, config=SEARCH_CONFIG
                    )

            searcher = threading.Thread(target=run_search)
            searcher.start()
            # Wait until the owning replica is actually mid-search,
            # then kill it: the router must fail the request over and
            # the survivor must produce the identical answer.
            deadline = time.time() + 30.0
            while (
                owner_handle.service.n_searches == 0
                and time.time() < deadline
            ):
                time.sleep(0.002)
            assert owner_handle.service.n_searches > 0
            owner_handle.stop()
            searcher.join(timeout=120.0)
            assert not searcher.is_alive()

            served = result["served"]
            assert served["best_point"] == direct.best_point
            assert canonical(served["best_metrics"]) == canonical(
                dict(direct.best_metrics)
            )
            assert served["n_evaluations"] == direct.log.n_evaluations
            failovers = router.metrics.counter("cluster.failovers").value
            assert failovers >= 1

    def test_replica_down_from_start_is_routed_around(self):
        from repro.iir.metacore import IIRMetacoreEvaluator

        spec = iir_spec()
        point = {
            "structure": "cascade",
            "family": "elliptic",
            "word_length": 10,
            "ripple_allocation": 0.8,
        }
        serial = IIRMetacoreEvaluator(spec).evaluate(point, 0)
        cluster = ClusterHandle(
            ServiceConfig(),
            replicas=2,
            router_config=RouterConfig(
                hedge_after_s=None,
                retry_backoff_s=0.01,
                probe_interval_s=0.1,
                eject_after=1,
                connect_timeout_s=1.0,
            ),
        )
        with cluster:
            # Kill one replica before any traffic; every request must
            # still be answered (by the survivor), bit-identically.
            cluster.replica_handles[0].stop()
            with cluster.client() as client:
                served = client.eval(
                    point, fidelity=0, spec=spec_to_payload(spec)
                )
        assert canonical(served) == canonical(dict(serial))


# ---------------------------------------------------------------------------
# Hedging (fake replicas with controllable latency)
# ---------------------------------------------------------------------------


class FakeReplica:
    """Minimal protocol server with a configurable eval delay."""

    def __init__(self, tag: str, delay_s: float = 0.0) -> None:
        self.tag = tag
        self.delay_s = delay_s
        self.port = 0
        self.n_evals = 0
        self._thread: threading.Thread = None
        self._loop = None
        self._server = None
        self._ready = threading.Event()

    async def _handle(self, reader, writer):
        try:
            await self._serve(reader, writer)
        except asyncio.CancelledError:
            pass  # stop() cancels in-flight handlers; that's clean

    async def _serve(self, reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                break
            message = decode_message(line)
            op = message.get("op")
            request_id = message.get("id")
            if op == "status":
                response = ok_response(
                    request_id, {"draining": False, "node": self.tag}
                )
            elif op == "eval":
                self.n_evals += 1
                if self.delay_s:
                    await asyncio.sleep(self.delay_s)
                response = ok_response(
                    request_id,
                    {"metrics": {"answered_by": self.tag}, "session": "s"},
                )
            else:
                response = error_response(
                    request_id, "bad_request", f"fake has no {op!r}"
                )
            writer.write(encode_message(response))
            await writer.drain()
        writer.close()

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            self._server = await asyncio.start_server(
                self._handle, "127.0.0.1", 0
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._ready.set()
            async with self._server:
                await self._server.serve_forever()

        try:
            loop.run_until_complete(boot())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    def start(self) -> "FakeReplica":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(10.0)
        return self

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            def cancel_all():
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()
            self._loop.call_soon_threadsafe(cancel_all)
        if self._thread is not None:
            self._thread.join(timeout=10.0)


class TestHedging:
    def _two_fakes_router(self, hedge_after_s):
        """Two fakes; returns (fakes by name, started RouterHandle)."""
        fakes = {
            "replica-0": FakeReplica("replica-0").start(),
            "replica-1": FakeReplica("replica-1").start(),
        }
        topology = Topology(
            replicas=tuple(
                Replica(name=name, host="127.0.0.1", port=fake.port)
                for name, fake in fakes.items()
            )
        )
        handle = RouterHandle(
            topology,
            config=RouterConfig(
                hedge_after_s=hedge_after_s,
                probe_interval_s=10.0,  # quiet during the test window
                retry_backoff_s=0.01,
            ),
        ).start()
        return fakes, handle

    def test_hedged_request_returns_one_answer_from_backup(self):
        fakes, handle = self._two_fakes_router(hedge_after_s=0.08)
        try:
            router = handle.router
            key = "session-key"
            primary, backup = router.ring.preference(key)[:2]
            fakes[primary].delay_s = 1.0  # straggler
            with handle.client() as client:
                t0 = time.time()
                metrics = client.eval({"x": 1}, session=key)
                elapsed = time.time() - t0
            # Exactly one answer, and it is the fast backup's.
            assert metrics == {"answered_by": backup}
            assert elapsed < 1.0, "hedge did not cut the tail"
            assert router.metrics.counter("cluster.hedges").value == 1
            assert router.metrics.counter("cluster.hedge_wins").value == 1
            # Both replicas saw the request (the duplicate really ran).
            deadline = time.time() + 5.0
            while fakes[primary].n_evals == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert fakes[primary].n_evals == 1
            assert fakes[backup].n_evals == 1
            # The loser was cancelled client-side: its pending table
            # drains once the cancelled task's cleanup runs on the
            # router loop (shortly after the winner answers).
            connection = router.replicas[primary].connection
            deadline = time.time() + 5.0
            while connection._pending and time.time() < deadline:
                time.sleep(0.01)
            assert not connection._pending
        finally:
            handle.stop()
            for fake in fakes.values():
                fake.stop()

    def test_fast_primary_never_hedges(self):
        fakes, handle = self._two_fakes_router(hedge_after_s=0.5)
        try:
            router = handle.router
            with handle.client() as client:
                for i in range(5):
                    client.eval({"x": i}, session=f"key-{i}")
            assert router.metrics.counter("cluster.hedges").value == 0
        finally:
            handle.stop()
            for fake in fakes.values():
                fake.stop()


# ---------------------------------------------------------------------------
# Drain semantics
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drained_server_rejects_new_work(self):
        from repro.serve import ServeHandle

        spec_payload = spec_to_payload(iir_spec())
        with ServeHandle(ServiceConfig()) as handle:
            with handle.client() as client:
                client.eval(
                    {
                        "structure": "cascade",
                        "family": "elliptic",
                        "word_length": 10,
                        "ripple_allocation": 0.8,
                    },
                    spec=spec_payload,
                )
                drained = client.drain()
                assert drained["draining"] is True
                assert client.status()["draining"] is True
                with pytest.raises(ServeRequestError) as excinfo:
                    client.eval(
                        {
                            "structure": "cascade",
                            "family": "elliptic",
                            "word_length": 11,
                            "ripple_allocation": 0.8,
                        },
                        spec=spec_payload,
                    )
                assert excinfo.value.code == "draining"

    def test_cluster_drain_fans_out(self):
        with ClusterHandle(ServiceConfig(), replicas=2) as cluster:
            with cluster.client() as client:
                result = client.drain()
                assert result["draining"] is True
                assert set(result["replicas"].values()) == {True}
                for handle in cluster.replica_handles:
                    assert handle.service.status()["draining"] is True


# ---------------------------------------------------------------------------
# ServeClient reconnect/backoff
# ---------------------------------------------------------------------------


class TestClientReconnect:
    def test_reconnects_after_server_restart_on_same_address(self, tmp_path):
        from repro.iir.metacore import IIRMetacoreEvaluator
        from repro.serve import ServeClient, ServeHandle

        spec = iir_spec()
        point = {
            "structure": "cascade",
            "family": "elliptic",
            "word_length": 12,
            "ripple_allocation": 0.85,
        }
        serial = IIRMetacoreEvaluator(spec).evaluate(point, 0)
        path = str(tmp_path / "serve.sock")
        first = ServeHandle(ServiceConfig(), unix_path=path).start()
        client = ServeClient(
            unix_path=path, max_retries=4, backoff_s=0.02
        )
        try:
            served = client.eval(point, spec=spec_to_payload(spec))
            assert canonical(served) == canonical(dict(serial))
            first.stop()
            second = ServeHandle(ServiceConfig(), unix_path=path).start()
            try:
                served = client.eval(point, spec=spec_to_payload(spec))
                assert canonical(served) == canonical(dict(serial))
                assert client.n_reconnects >= 1
                assert client.n_retries >= 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_retries_exhausted_surfaces_connection_error(self, tmp_path):
        from repro.serve import ServeClient
        from repro.serve.client import ServeConnectionError

        with pytest.raises(ServeConnectionError):
            ServeClient(
                unix_path=str(tmp_path / "nobody-home.sock"),
                max_retries=1,
                backoff_s=0.01,
            )


# ---------------------------------------------------------------------------
# Router status aggregation
# ---------------------------------------------------------------------------


class TestClusterStatus:
    def test_status_aggregates_replicas(self):
        with ClusterHandle(ServiceConfig(), replicas=2) as cluster:
            with cluster.client() as client:
                status = client.status()
        assert status["router"] is True
        assert status["n_replicas"] == 2
        names = {row["name"] for row in status["replicas"]}
        assert names == {"replica-0", "replica-1"}
        states = {row["state"] for row in status["replicas"]}
        assert states == {"healthy"}
        nodes = {row["status"]["node"] for row in status["replicas"]}
        assert nodes == {"replica-0", "replica-1"}

    def test_trace_report_shows_cluster_line(self):
        from repro.observability.export import TraceSummary, format_trace_report

        summary = TraceSummary(
            metrics={
                "cluster.requests": {"type": "counter", "value": 7},
                "cluster.hedges": {"type": "counter", "value": 2},
                "cluster.hedge_wins": {"type": "counter", "value": 1},
                "cluster.failovers": {"type": "counter", "value": 1},
            },
        )
        report = format_trace_report(summary)
        assert "cluster: 7 routed / 2 hedged (1 hedge wins) / 1 failovers" in report
        # cluster.* counters fold into the cluster line, not the
        # generic counters dump.
        assert "cluster.requests" not in report
