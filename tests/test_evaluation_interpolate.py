"""Tests for the evaluation engine, interpolation, and Pareto tools."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CachingEvaluator,
    DesignSpace,
    DiscreteParameter,
    EvaluationLog,
    EvaluationRecord,
    FunctionEvaluator,
    MetricInterpolator,
    Objective,
    dominates,
    idw_interpolate,
    pareto_front,
    point_coordinates,
)
from repro.errors import DesignSpaceError


class TestCachingEvaluator:
    def _counting_evaluator(self):
        calls = []

        def func(point, fidelity):
            calls.append((dict(point), fidelity))
            return {"value": float(point["x"]) * (fidelity + 1)}

        return FunctionEvaluator(func, max_fidelity=3), calls

    def test_caches_same_fidelity(self):
        inner, calls = self._counting_evaluator()
        evaluator = CachingEvaluator(inner)
        evaluator.evaluate({"x": 1}, 1)
        evaluator.evaluate({"x": 1}, 1)
        assert len(calls) == 1

    def test_higher_fidelity_answers_lower_requests(self):
        inner, calls = self._counting_evaluator()
        evaluator = CachingEvaluator(inner)
        high = evaluator.evaluate({"x": 1}, 2)
        low = evaluator.evaluate({"x": 1}, 0)
        assert len(calls) == 1
        assert low == high

    def test_lower_fidelity_upgraded(self):
        inner, calls = self._counting_evaluator()
        evaluator = CachingEvaluator(inner)
        evaluator.evaluate({"x": 1}, 0)
        evaluator.evaluate({"x": 1}, 2)
        assert len(calls) == 2

    def test_log_records_everything(self):
        inner, _ = self._counting_evaluator()
        log = EvaluationLog()
        evaluator = CachingEvaluator(inner, log)
        evaluator.evaluate({"x": 1}, 0)
        evaluator.evaluate({"x": 2}, 1)
        assert log.n_evaluations == 2
        assert log.by_fidelity() == {0: 1, 1: 1}
        assert log.unique_points() == 2
        assert log.total_time_s >= 0.0


class TestEvaluationRecord:
    def test_round_trip_point(self):
        record = EvaluationRecord(
            point=(("a", 1), ("b", 2)), fidelity=1, metrics={"m": 3.0}
        )
        assert record.as_point() == {"a": 1, "b": 2}

    def test_str_readable(self):
        record = EvaluationRecord(
            point=(("a", 1),), fidelity=2, metrics={"m": 3.0}
        )
        assert "fid 2" in str(record) and "a=1" in str(record)


class TestInterpolation:
    def test_exact_at_samples(self):
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert idw_interpolate(coords, [5.0, 9.0], np.array([1.0, 1.0])) == 9.0

    def test_bounded_by_samples(self):
        coords = np.array([[0.0], [1.0]])
        value = idw_interpolate(coords, [2.0, 10.0], np.array([0.3]))
        assert 2.0 <= value <= 10.0

    def test_rejects_empty(self):
        with pytest.raises(DesignSpaceError):
            idw_interpolate(np.zeros((0, 2)), [], np.array([0.0, 0.0]))

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0, 100)),
            min_size=1,
            max_size=10,
        ),
        st.floats(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_idw_always_within_range(self, samples, query):
        coords = np.array([[s[0]] for s in samples])
        values = [s[1] for s in samples]
        result = idw_interpolate(coords, values, np.array([query]))
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    def test_point_coordinates_normalized(self):
        space = DesignSpace(
            [DiscreteParameter("a", (10, 20, 30)), DiscreteParameter("b", (1,))]
        )
        coords = point_coordinates(space, {"a": 30, "b": 1})
        assert coords.tolist() == [1.0, 0.0]

    def test_metric_interpolator(self):
        space = DesignSpace([DiscreteParameter("a", (1, 2, 3))])
        interp = MetricInterpolator(space)
        interp.add({"a": 1}, 10.0)
        interp.add({"a": 3}, 30.0)
        assert interp.n_samples == 2
        middle = interp.estimate({"a": 2})
        assert 10.0 < middle < 30.0

    def test_metric_interpolator_skips_inf(self):
        space = DesignSpace([DiscreteParameter("a", (1, 2))])
        interp = MetricInterpolator(space)
        interp.add({"a": 1}, math.inf)
        assert interp.n_samples == 0


class TestPareto:
    def _records(self):
        return [
            EvaluationRecord((("x", i),), 0, {"area": a, "ber": b})
            for i, (a, b) in enumerate(
                [(1.0, 0.5), (2.0, 0.1), (3.0, 0.05), (2.5, 0.2), (4.0, 0.4)]
            )
        ]

    def test_dominates(self):
        objectives = [Objective("area"), Objective("ber")]
        assert dominates({"area": 1, "ber": 1}, {"area": 2, "ber": 2}, objectives)
        assert not dominates(
            {"area": 1, "ber": 3}, {"area": 2, "ber": 2}, objectives
        )

    def test_dominates_requires_strict_improvement(self):
        objectives = [Objective("area")]
        assert not dominates({"area": 1}, {"area": 1}, objectives)

    def test_front_contents(self):
        objectives = [Objective("area"), Objective("ber")]
        front = pareto_front(self._records(), objectives)
        areas = [r.metrics["area"] for r in front]
        # (2.5, 0.2) is dominated by (2.0, 0.1); (4.0, 0.4) by (2.0, 0.1).
        assert areas == [1.0, 2.0, 3.0]

    def test_front_deduplicates_points(self):
        objectives = [Objective("area")]
        records = [
            EvaluationRecord((("x", 1),), 0, {"area": 5.0}),
            EvaluationRecord((("x", 1),), 1, {"area": 3.0}),
        ]
        front = pareto_front(records, objectives)
        assert len(front) == 1
        assert front[0].metrics["area"] == 3.0
