"""Fault injection, dependability campaigns, and crash-tolerant sessions."""

from __future__ import annotations

import hashlib
import json
from typing import Dict

import numpy as np
import pytest

from repro.core.evalcache import PersistentEvalCache
from repro.core.objectives import DesignGoal, Objective
from repro.core.parameters import Correlation, DesignSpace, DiscreteParameter, Point
from repro.core.search import MetacoreSearch, SearchConfig
from repro.iir.structures.base import realize
from repro.iir.transfer import TransferFunction
from repro.observability import (
    format_trace_report,
    install_tracing,
    shutdown_tracing,
    summarize_trace,
)
from repro.resilience import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    DEFAULT_FAILURE_METRICS,
    FaultInjector,
    FaultSpec,
    ResilientEvaluator,
    RoundBudgetExceeded,
    SearchSession,
    format_campaign_report,
    simulate_with_faults,
)
from repro.viterbi import BERSimulator, ConvolutionalEncoder, build_decoder


# ---------------------------------------------------------------------------
# shared fixtures


class DeterministicEvaluator:
    """Picklable evaluator with metrics a pure function of the point."""

    def __init__(self, version: int = 1) -> None:
        self.max_fidelity = 2
        self.version = version

    def fingerprint(self) -> str:
        return f"deterministic:v{self.version}"

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        digest = hashlib.md5(
            repr(sorted(point.items())).encode("utf-8")
        ).digest()
        return {
            "area_mm2": 1.0 + int.from_bytes(digest[:4], "big") / 2**32,
            "fidelity_seen": float(fidelity),
        }


def small_space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("a", (1, 2, 3, 4, 5), Correlation.MONOTONIC),
            DiscreteParameter("b", (10, 20, 30, 40), Correlation.MONOTONIC),
        ]
    )


GOAL = DesignGoal(objectives=[Objective("area_mm2")])
CONFIG = SearchConfig(max_resolution=2, refine_top_k=2)


def run_plain_search(evaluator):
    return MetacoreSearch(
        small_space(), GOAL, evaluator, config=CONFIG
    ).run()


def search_signature(result):
    return (
        result.best_point,
        result.best_metrics,
        result.feasible,
        result.regions_explored,
        [(r.point, r.fidelity, dict(r.metrics)) for r in result.log.records],
    )


DESIGN = {"K": 3, "L_mult": 3, "G": "standard", "R1": 1, "R2": 3,
          "Q": "hard", "N": 1, "M": 0}


def measure(decoder, injector=None, bits=4096, es_n0_db=2.0):
    simulator = BERSimulator(ConvolutionalEncoder(3), seed=7)
    decoder.fault_hook = injector
    try:
        return simulator.measure(
            decoder, es_n0_db, max_bits=bits, target_errors=None
        )
    finally:
        decoder.fault_hook = None


# ---------------------------------------------------------------------------
# fault models


class TestFaultInjector:
    def test_rate_zero_is_bit_identical_to_uninstrumented(self):
        decoder = build_decoder(DESIGN)
        bare = measure(decoder)
        inert = FaultInjector(
            FaultSpec(model="seu", rate=0.0, targets=("traceback",)),
            instance="test",
        )
        instrumented = measure(decoder, inert)
        assert not inert.active
        assert instrumented.errors == bare.errors
        assert instrumented.bits == bare.bits
        assert sum(inert.n_injected.values()) == 0

    @pytest.mark.parametrize("model", ["seu", "stuck"])
    @pytest.mark.parametrize(
        "target", ["path_metrics", "branch_metrics", "traceback"]
    )
    def test_injection_is_deterministic_across_instances(self, model, target):
        spec = FaultSpec(model=model, rate=0.01, targets=(target,), seed=3)
        decoder = build_decoder(DESIGN)
        runs = [
            measure(decoder, FaultInjector(spec, instance="cell"))
            for _ in range(2)
        ]
        assert runs[0].errors == runs[1].errors

    def test_seu_on_traceback_degrades_ber(self):
        decoder = build_decoder(DESIGN)
        clean = measure(decoder)
        spec = FaultSpec(model="seu", rate=0.05, targets=("traceback",))
        injector = FaultInjector(spec, instance="cell")
        faulty = measure(decoder, injector)
        assert sum(injector.n_injected.values()) > 0
        assert faulty.errors > clean.errors

    def test_distinct_instances_draw_distinct_fault_streams(self):
        spec = FaultSpec(model="seu", rate=0.5, targets=("iir_state",))
        state = np.linspace(-0.9, 0.9, 64)
        a = FaultInjector(spec, instance="a").iir_state_hook(state.copy(), 0)
        b = FaultInjector(spec, instance="b").iir_state_hook(state.copy(), 0)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("structure", ["direct2", "ladder", "statespace"])
    def test_iir_state_faults_are_deterministic(self, structure):
        tf = TransferFunction([0.2, 0.1], [1.0, -0.5, 0.06])
        realization = realize(structure, tf)
        x = np.sin(np.linspace(0.0, 20.0, 256))
        clean = realization.simulate(x)
        spec = FaultSpec(model="seu", rate=0.02, targets=("iir_state",))
        outs = [
            simulate_with_faults(
                realization, x, FaultInjector(spec, instance=structure)
            )
            for _ in range(2)
        ]
        assert realization.fault_hook is None  # restored afterwards
        assert np.array_equal(outs[0], outs[1])
        assert not np.array_equal(outs[0], clean)

    def test_invalid_specs_are_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FaultSpec(rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(model="gamma-ray")
        with pytest.raises(ConfigurationError):
            FaultSpec(targets=("cache",))


# ---------------------------------------------------------------------------
# campaigns


def tiny_config() -> CampaignConfig:
    return CampaignConfig(
        rates=(0.002,),
        targets=("traceback",),
        es_n0_db=(2.0,),
        max_bits=2048,
    )


class TestCampaign:
    def test_cells_pair_each_reference_with_its_faulty_cells(self):
        campaign = Campaign([dict(DESIGN)], tiny_config())
        result = campaign.run()
        refs = [c for c in result.cells if c.classification == "reference"]
        assert len(refs) == 1
        assert refs[0].fault_rate == 0.0
        assert refs[0].ber == refs[0].ref_ber
        for cell in result.faulty_cells:
            assert cell.ref_ber == refs[0].ber
            assert cell.classification in {
                "masked", "degraded", "decode_failure"
            }
            assert cell.n_injected > 0

    def test_parallel_campaign_matches_serial(self):
        serial = Campaign([dict(DESIGN)], tiny_config()).run()
        parallel = Campaign([dict(DESIGN)], tiny_config(), workers=2).run()
        assert [c.to_dict() for c in parallel.cells] == [
            c.to_dict() for c in serial.cells
        ]

    def test_persistent_cache_answers_warm_rerun(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        cold = Campaign([dict(DESIGN)], tiny_config(), cache_path=path).run()
        assert cold.persistent_hits == 0
        warm = Campaign([dict(DESIGN)], tiny_config(), cache_path=path).run()
        assert warm.persistent_hits == len(warm.cells)
        assert [c.to_dict() for c in warm.cells] == [
            c.to_dict() for c in cold.cells
        ]

    def test_result_round_trips_through_json(self, tmp_path):
        result = Campaign([dict(DESIGN)], tiny_config()).run()
        path = tmp_path / "result.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.config == result.config
        assert [c.to_dict() for c in loaded.cells] == [
            c.to_dict() for c in result.cells
        ]
        report = format_campaign_report(loaded)
        assert "fault-injection campaign report" in report
        assert "critical-bit fraction" in report


# ---------------------------------------------------------------------------
# crash-tolerant sessions


def make_session(path, **kwargs) -> SearchSession:
    return SearchSession(
        small_space(),
        GOAL,
        DeterministicEvaluator(),
        path,
        config=CONFIG,
        **kwargs,
    )


class TestSearchSession:
    def test_killed_search_resumes_to_the_same_selection(self, tmp_path):
        reference = run_plain_search(DeterministicEvaluator())
        path = tmp_path / "run.ckpt"
        with pytest.raises(RoundBudgetExceeded) as stop:
            make_session(path, max_rounds=2).run()
        assert stop.value.rounds == 2
        assert path.exists()
        resumed = make_session(path, resume=True).run()
        assert resumed.restored_rounds == 2
        assert resumed.restored_records > 0
        assert search_signature(resumed.result) == search_signature(reference)

    def test_cold_session_matches_plain_search(self, tmp_path):
        reference = run_plain_search(DeterministicEvaluator())
        session = make_session(tmp_path / "cold.ckpt").run()
        assert session.restored_rounds == 0
        assert search_signature(session.result) == search_signature(reference)

    def test_completed_checkpoint_replays_without_reevaluating(self, tmp_path):
        path = tmp_path / "done.ckpt"
        first = make_session(path).run()
        replayed = make_session(path, resume=True).run()
        assert replayed.restored_records > 0
        # Full replay: nothing recomputed, so no new rounds were added.
        assert replayed.rounds_completed == first.rounds_completed
        assert replayed.restored_rounds == first.rounds_completed
        assert search_signature(replayed.result) == search_signature(
            first.result
        )

    def test_fingerprint_mismatch_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_session(path).run()
        other = SearchSession(
            small_space(),
            GOAL,
            DeterministicEvaluator(version=2),
            path,
            config=CONFIG,
            resume=True,
        )
        with pytest.warns(RuntimeWarning, match="different evaluator"):
            session = other.run()
        assert session.restored_rounds == 0

    def test_corrupt_checkpoint_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            session = make_session(path, resume=True).run()
        assert session.restored_rounds == 0
        # ... and the bad file was replaced by a valid checkpoint.
        assert json.loads(path.read_text(encoding="utf-8"))["rounds"] > 0


# ---------------------------------------------------------------------------
# the retry / quarantine shim


class FlakyEvaluator:
    """Fails the first two attempts on selected points; others always.

    Two failures, not one: the shim's first recovery path is the batch
    call itself, so a point must also fail the per-point fallback's
    first attempt before a counted *retry* happens.
    """

    def __init__(self, flaky=(), broken=()) -> None:
        self.max_fidelity = 0
        self.flaky = set(flaky)
        self.broken = set(broken)
        self.attempts: Dict[int, int] = {}

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        a = int(point["a"])
        self.attempts[a] = self.attempts.get(a, 0) + 1
        if a in self.broken:
            raise RuntimeError(f"evaluator died on a={a}")
        if a in self.flaky and self.attempts[a] <= 2:
            raise RuntimeError(f"transient failure on a={a}")
        return {"area_mm2": float(a)}


class TestResilientEvaluator:
    def test_transient_failures_are_retried(self):
        inner = FlakyEvaluator(flaky={2})
        shim = ResilientEvaluator(inner, max_retries=2, backoff_s=0.0)
        results = shim.evaluate_many([{"a": 1}, {"a": 2}], 0)
        assert [r["area_mm2"] for r in results] == [1.0, 2.0]
        assert shim.n_retries == 1
        assert inner.attempts[2] == 3  # batch + fallback + one retry
        assert not shim.quarantine

    def test_persistent_failures_are_quarantined(self):
        inner = FlakyEvaluator(broken={3})
        shim = ResilientEvaluator(inner, max_retries=1, backoff_s=0.0)
        results = shim.evaluate_many([{"a": 1}, {"a": 3}], 0)
        assert results[0]["area_mm2"] == 1.0
        assert results[1] == DEFAULT_FAILURE_METRICS
        assert inner.attempts[3] == 3  # batch + fallback + one retry
        summary = shim.quarantine_summary()
        assert len(summary) == 1 and "a=3" in summary[0]
        # Quarantined points are answered locally, never re-attempted.
        shim.evaluate_many([{"a": 3}], 0)
        assert inner.attempts[3] == 3

    def test_retries_and_quarantine_appear_in_trace_summary(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        sink = install_tracing(trace_path)
        try:
            shim = ResilientEvaluator(
                FlakyEvaluator(flaky={1}, broken={2}),
                max_retries=1,
                backoff_s=0.0,
            )
            shim.evaluate_many([{"a": 1}, {"a": 2}], 0)
        finally:
            shutdown_tracing(sink)
        report = format_trace_report(summarize_trace(trace_path))
        assert "resilience.retry" in report
        assert "resilience.quarantine" in report


# ---------------------------------------------------------------------------
# persistent cache corruption (regression for the silent-skip behaviour)


class TestEvalCacheCorruption:
    def test_corrupt_lines_are_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        store = PersistentEvalCache(path)
        store.put("fp", (("a", 1),), 0, {"m": 1.0})
        store.put("fp", (("a", 2),), 0, {"m": 2.0})
        store.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, '{"schema":1,"fp":"fp","poi')  # torn mid-file
        lines.append('{"schema":1,"fp":"fp","fid":0}')  # missing fields
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt line"):
            reloaded = PersistentEvalCache(path)
        assert reloaded.n_loaded == 2
        assert reloaded.n_skipped == 2
        assert reloaded.get("fp", (("a", 1),), 0) == (0, {"m": 1.0})
        assert reloaded.get("fp", (("a", 2),), 0) == (0, {"m": 2.0})

    def test_schema_mismatch_is_silent_by_design(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        record = {"schema": 999, "fp": "fp", "point": [["a", 1]],
                  "fid": 0, "metrics": {"m": 1.0}}
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            reloaded = PersistentEvalCache(path)
        assert reloaded.n_loaded == 0
        assert reloaded.n_skipped == 0
