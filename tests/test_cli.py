"""Tests for the command-line interface (the Fig. 7 stand-in)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_viterbi_search_args(self):
        args = build_parser().parse_args(
            ["viterbi-search", "--ber", "1e-4", "--throughput", "2e6"]
        )
        assert args.ber == 1e-4
        assert args.es_n0_db == 2.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_spectrum(self, capsys):
        assert main(["spectrum", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "free distance: 7" in out

    def test_viterbi_ber(self, capsys):
        code = main(
            [
                "viterbi-ber", "--k", "3", "--m", "0", "--q", "hard",
                "--snr", "4.0", "--bits", "10000", "--errors", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "K=3" in out and "Es/N0" in out

    def test_iir_design_pass(self, capsys):
        code = main(
            ["iir-design", "--family", "elliptic", "--structure", "cascade",
             "--word", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "meets spec=True" in out

    def test_iir_design_fail_exit_code(self, capsys):
        code = main(
            ["iir-design", "--family", "elliptic", "--structure", "direct2",
             "--word", "8"]
        )
        assert code == 1

    def test_viterbi_search_easy_spec(self, capsys):
        code = main(
            [
                "viterbi-search", "--ber", "5e-2", "--es-n0-db", "4.0",
                "--throughput", "1e6", "--max-resolution", "1",
                "--top-k", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "winner:" in out

    def test_viterbi_search_infeasible_exit_code(self, capsys):
        code = main(
            [
                "viterbi-search", "--ber", "1e-9", "--es-n0-db", "3.0",
                "--throughput", "1e6", "--max-resolution", "0",
                "--top-k", "1",
            ]
        )
        assert code == 1
        assert "NOT FEASIBLE" in capsys.readouterr().out

    def test_diagram_command(self, capsys):
        assert main(["diagram", "--k", "3", "--trellis"]) == 0
        out = capsys.readouterr().out
        assert "G=(7,5)" in out
        assert "trellis section" in out

    def test_iir_noise_command(self, capsys):
        assert main(["iir-noise", "--word", "12"]) == 0
        out = capsys.readouterr().out
        assert "noise gain" in out
        assert "direct2" in out

    def test_table_commands_parse(self):
        parser = build_parser()
        args3 = parser.parse_args(["table3", "--max-resolution", "1"])
        assert args3.func.__name__ == "cmd_table3"
        assert args3.trace is None
        args4 = parser.parse_args(["table4", "--top-k", "2"])
        assert args4.func.__name__ == "cmd_table4"
        assert args4.trace is None


class TestTracing:
    def test_trace_flag_then_report(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        code = main(
            [
                "viterbi-search", "--ber", "5e-2", "--es-n0-db", "4.0",
                "--throughput", "1e6", "--max-resolution", "1",
                "--top-k", "1", "--trace", str(trace_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "cache:" in out
        assert trace_file.exists()

        assert main(["trace-report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "search.region" in out
        assert "ber.measure" in out
        assert "hit rate" in out

    def test_trace_report_missing_file(self, capsys, tmp_path):
        code = main(["trace-report", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err
