"""Golden-vector conformance suite.

Frozen reference vectors for every stage of both MetaCore pipelines
live under ``tests/golden/`` as exact-value JSON (Python floats
round-trip through JSON ``repr`` exactly, so ``==`` below is a
*bit-for-bit* comparison, not a tolerance check).  Any refactor of the
encoder, quantizers, decoder, BER simulator, filter design, fixed-point
measurement, or synthesis estimator that changes a single mantissa bit
fails here first — which is the point: the serving layer's
bit-identical guarantee (``docs/serving.md``) rests on these stages
being deterministic functions of (seed, point, fidelity).

An *intentional* numeric change is blessed with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --regen-golden

then reviewed as a diff of the JSON fixtures (see
``tests/golden/README.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Seed shared by every generator (the repo-wide default seed).
SEED = 20010618


def _to_jsonable(value: Any) -> Any:
    """Convert numpy containers/scalars to exact plain-JSON values."""
    if isinstance(value, np.ndarray):
        return [_to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def check_golden(
    name: str, generated: Dict[str, Any], regen: bool
) -> None:
    """Compare ``generated`` against the frozen fixture (or rewrite it)."""
    path = GOLDEN_DIR / f"{name}.json"
    generated = _to_jsonable(generated)
    if regen:
        path.write_text(
            json.dumps(generated, indent=1, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {path.name}")
    if not path.exists():
        pytest.fail(
            f"golden fixture {path.name} missing; generate it with "
            "--regen-golden and commit the file"
        )
    frozen = json.loads(path.read_text())
    assert generated == frozen, (
        f"{path.name} drifted from the frozen reference; if the "
        "numeric change is intentional, regenerate with --regen-golden "
        "and review the fixture diff"
    )


# ---------------------------------------------------------------------------
# Viterbi pipeline: encode -> AWGN -> quantize -> decode -> BER
# ---------------------------------------------------------------------------


def _viterbi_pipeline_vectors() -> Dict[str, Any]:
    from repro.viterbi import (
        AdaptiveQuantizer,
        BERSimulator,
        ConvolutionalEncoder,
        HardQuantizer,
        Trellis,
        ViterbiDecoder,
        bpsk_modulate,
    )
    from repro.viterbi.channel import AWGNChannel

    encoder = ConvolutionalEncoder(3)
    rng = np.random.default_rng(SEED)
    bits = rng.integers(0, 2, size=48, dtype=np.int8)
    encoded = encoder.encode(bits)
    channel = AWGNChannel(2.0)
    noisy = channel.transmit(encoded, rng=np.random.default_rng(SEED + 1))
    quantizer = AdaptiveQuantizer(3)
    quantized = quantizer.quantize(noisy, sigma=channel.sigma)
    decoder = ViterbiDecoder(
        Trellis.from_encoder(encoder), HardQuantizer(), 6 * 3
    )
    decoded = decoder.decode(bpsk_modulate(encoded), sigma=channel.sigma)
    simulator = BERSimulator(
        encoder, frame_length=256, frames_per_batch=8, seed=SEED
    )
    points = [
        simulator.measure(
            decoder, es_n0_db, max_bits=4096, target_errors=None
        )
        for es_n0_db in (0.0, 2.0)
    ]
    return {
        "bits": bits,
        "encoded": encoded,
        "noisy": noisy,
        "quantized": quantized,
        "decoded": decoded,
        "ber_points": [
            {
                "es_n0_db": point.es_n0_db,
                "bits": point.bits,
                "errors": point.errors,
                "ber": point.ber,
            }
            for point in points
        ],
    }


def _viterbi_search_selection() -> Dict[str, Any]:
    from repro.core import BERThresholdCurve, SearchConfig
    from repro.viterbi import ViterbiMetaCore, ViterbiSpec

    metacore = ViterbiMetaCore(
        ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
        ),
        fixed={"G": "standard", "N": 1, "K": 3, "Q": "hard"},
        config=SearchConfig(max_resolution=1, refine_top_k=1),
    )
    result = metacore.search()
    return {
        "feasible": result.feasible,
        "best_point": result.best_point,
        "best_metrics": result.best_metrics,
        "n_evaluations": result.log.n_evaluations,
    }


def _viterbi_recommend_selection(atlas_path: str) -> Dict[str, Any]:
    """Populate a fresh atlas with one cold search, then answer a
    constraint query from it — the frozen vector pins both the chosen
    design and the zero-evaluation contract of a library hit."""
    from repro.core import BERThresholdCurve, SearchConfig
    from repro.viterbi import ViterbiMetaCore, ViterbiSpec

    metacore = ViterbiMetaCore(
        ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
        ),
        fixed={"G": "standard", "N": 1, "K": 3, "Q": "hard"},
        config=SearchConfig(max_resolution=1, refine_top_k=1),
        atlas_path=atlas_path,
    )
    metacore.search()
    recommendation = metacore.recommend({"area_mm2": 50.0})
    return {
        "source": recommendation.source,
        "n_evaluations": recommendation.n_evaluations,
        "feasible": recommendation.feasible,
        "point": recommendation.point,
        "metrics": recommendation.metrics,
    }


def _evolve_search_selection() -> Dict[str, Any]:
    """The seeded evolutionary strategy on the small Viterbi slice.

    Freezes the full selection (point, metrics, evaluation count,
    evaluations saved) — tournament selection, mutation draws, and the
    polish walk are all driven by the spawned strategy RNG, so any
    change to the breeding order or seeding shows up here first.
    """
    from repro.core import BERThresholdCurve, SearchConfig
    from repro.viterbi import ViterbiMetaCore, ViterbiSpec

    metacore = ViterbiMetaCore(
        ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
        ),
        fixed={"G": "standard", "N": 1, "K": 3, "Q": "hard"},
        config=SearchConfig(
            max_resolution=1, refine_top_k=1, strategy="evolve"
        ),
    )
    result = metacore.search()
    return {
        "strategy": result.strategy,
        "feasible": result.feasible,
        "best_point": result.best_point,
        "best_metrics": result.best_metrics,
        "n_evaluations": result.log.n_evaluations,
        "evals_saved": result.evals_saved,
    }


def _surrogate_search_selection() -> Dict[str, Any]:
    """The surrogate-pruned funnel on the Table 4 IIR space.

    Freezes the pruned walk's selection: the ridge/nearest-neighbor
    fit, the keep-fraction cut, and the anchor-protected survivor set
    must reproduce bit-identically for the same seed and space.
    """
    from repro.core import SearchConfig
    from repro.iir import IIRMetaCore, IIRSpec

    metacore = IIRMetaCore(
        IIRSpec.paper(4.0),
        config=SearchConfig(
            max_resolution=1, refine_top_k=2, strategy="surrogate"
        ),
    )
    result = metacore.search()
    return {
        "strategy": result.strategy,
        "feasible": result.feasible,
        "best_point": result.best_point,
        "best_metrics": result.best_metrics,
        "n_evaluations": result.log.n_evaluations,
        "evals_saved": result.evals_saved,
    }


# ---------------------------------------------------------------------------
# IIR pipeline: design -> realize -> quantize -> measure -> synthesize
# ---------------------------------------------------------------------------


def _iir_pipeline_vectors() -> Dict[str, Any]:
    from repro.hardware.synthesis import estimate_iir_implementation
    from repro.iir import (
        check_quantized,
        design_filter,
        paper_bandpass_spec,
        realize,
    )

    spec = paper_bandpass_spec()
    tf = design_filter(spec, "elliptic").to_tf()
    realization = realize("cascade", tf)
    report = check_quantized(realization, spec, 12, grid_points=256)
    estimate = estimate_iir_implementation(
        realization.dataflow(), 12, 4.0, feature_um=1.2
    )
    return {
        "b": tf.b,
        "a": tf.a,
        "report": {
            "word_length": report.word_length,
            "stable": report.stable,
            "passband_ripple": report.passband_ripple,
            "stopband_level": report.stopband_level,
            "realizable": report.realizable,
        },
        "estimate": {
            "clock_ns": estimate.clock_ns,
            "cycles_per_sample": estimate.cycles_per_sample,
            "latency_cycles": estimate.latency_cycles,
            "n_multipliers": estimate.n_multipliers,
            "n_adders": estimate.n_adders,
            "n_registers": estimate.n_registers,
            "area_mm2": estimate.area_mm2,
            "throughput_samples_per_s": estimate.throughput_samples_per_s,
        },
    }


def _iir_search_selection() -> Dict[str, Any]:
    from repro.core import SearchConfig
    from repro.iir import IIRMetaCore, IIRSpec

    metacore = IIRMetaCore(
        IIRSpec.paper(4.0),
        config=SearchConfig(max_resolution=1, refine_top_k=2),
    )
    result = metacore.search()
    return {
        "feasible": result.feasible,
        "best_point": result.best_point,
        "best_metrics": result.best_metrics,
        "n_evaluations": result.log.n_evaluations,
    }


# ---------------------------------------------------------------------------
# The conformance gates
# ---------------------------------------------------------------------------


class TestGoldenViterbi:
    def test_pipeline_vectors(self, regen_golden):
        check_golden(
            "viterbi_pipeline", _viterbi_pipeline_vectors(), regen_golden
        )

    def test_search_selection(self, regen_golden):
        check_golden(
            "viterbi_search", _viterbi_search_selection(), regen_golden
        )

    def test_recommend_selection(self, regen_golden, tmp_path):
        check_golden(
            "viterbi_recommend",
            _viterbi_recommend_selection(str(tmp_path / "atlas.jsonl")),
            regen_golden,
        )


class TestGoldenStrategies:
    """Frozen selections for the pluggable search strategies."""

    def test_evolve_selection(self, regen_golden):
        check_golden(
            "evolve_search", _evolve_search_selection(), regen_golden
        )

    def test_surrogate_selection(self, regen_golden):
        check_golden(
            "surrogate_search", _surrogate_search_selection(), regen_golden
        )


class TestGoldenIIR:
    def test_pipeline_vectors(self, regen_golden):
        check_golden("iir_pipeline", _iir_pipeline_vectors(), regen_golden)

    def test_search_selection(self, regen_golden):
        check_golden("iir_search", _iir_search_selection(), regen_golden)


class TestGoldenServe:
    """The serving layer answers with the frozen pipeline numbers too."""

    def test_serve_matches_golden_metrics(self, regen_golden):
        from repro.serve import ServeHandle, ServiceConfig, spec_to_payload
        from repro.core import BERThresholdCurve
        from repro.viterbi import ViterbiSpec

        frozen = _viterbi_search_selection()
        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
        )
        handle = ServeHandle(ServiceConfig(max_batch=4, linger_s=0.001))
        with handle:
            with handle.client() as client:
                served = client.eval(
                    frozen["best_point"],
                    fidelity=0,
                    spec=spec_to_payload(spec),
                )
        # The BER metrics of the frozen selection were measured at the
        # search's top fidelity; re-measure the point serially at
        # fidelity 0 to compare like with like.
        from repro.viterbi.metacore import ViterbiMetacoreEvaluator

        serial = ViterbiMetacoreEvaluator(spec).evaluate(
            frozen["best_point"], 0
        )
        assert served == serial
