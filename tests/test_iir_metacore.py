"""Tests for the IIR MetaCore (design space, evaluator, search)."""

from __future__ import annotations

import math

import pytest

from repro.core import SearchConfig
from repro.errors import ConfigurationError
from repro.iir import (
    IIRMetaCore,
    IIRMetacoreEvaluator,
    IIRSpec,
    iir_design_space,
)


def _point(**overrides):
    point = {
        "structure": "cascade",
        "family": "elliptic",
        "word_length": 14,
        "ripple_allocation": 0.6,
    }
    point.update(overrides)
    return point


class TestDesignSpace:
    def test_dimensions(self):
        space = iir_design_space()
        assert set(space.names) == {
            "structure", "family", "word_length", "ripple_allocation"
        }

    def test_all_structures_present(self):
        space = iir_design_space()
        assert len(space["structure"].values) == 7

    def test_fixed_parameters(self):
        space = iir_design_space(
            fixed={"structure": "ladder", "ripple_allocation": 0.5}
        )
        assert space["structure"].values == ("ladder",)
        assert space["ripple_allocation"].is_fixed

    def test_fixed_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            iir_design_space(fixed={"zz": 1})


class TestEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self):
        return IIRMetacoreEvaluator(IIRSpec.paper(2.0))

    def test_feasible_candidate(self, evaluator):
        metrics = evaluator.evaluate(_point(), fidelity=0)
        assert metrics["spec_violation"] == 0.0
        assert 3.0 < metrics["area_mm2"] < 20.0
        assert metrics["throughput_samples_per_s"] == pytest.approx(5e5)

    def test_low_word_violates_spec(self, evaluator):
        metrics = evaluator.evaluate(_point(word_length=6), fidelity=0)
        assert metrics["spec_violation"] > 0.0

    def test_serial_structure_infeasible_at_fast_rate(self):
        evaluator = IIRMetacoreEvaluator(IIRSpec.paper(0.25))
        metrics = evaluator.evaluate(_point(structure="ladder"), fidelity=0)
        assert math.isinf(metrics["area_mm2"])

    def test_zero_margin_allocation_fails_spec(self, evaluator):
        metrics = evaluator.evaluate(
            _point(ripple_allocation=0.9, word_length=10), fidelity=0
        )
        # With 90% of the budget spent by the nominal design, 10 bits
        # cannot absorb the remaining quantization error.
        assert metrics["spec_violation"] > 0.0

    def test_higher_fidelity_consistent(self, evaluator):
        coarse = evaluator.evaluate(_point(), fidelity=0)
        fine = evaluator.evaluate(_point(), fidelity=2)
        assert fine["area_mm2"] == pytest.approx(coarse["area_mm2"])
        assert fine["spec_violation"] == coarse["spec_violation"] == 0.0

    def test_fidelity_bounds(self, evaluator):
        with pytest.raises(ConfigurationError):
            evaluator.evaluate(_point(), fidelity=7)

    def test_word_length_monotone_violation(self, evaluator):
        violations = [
            evaluator.evaluate(_point(word_length=w), fidelity=1)[
                "spec_violation"
            ]
            for w in (8, 12, 18)
        ]
        assert violations[0] >= violations[1] >= violations[2]
        assert violations[2] == 0.0


class TestSpec:
    def test_paper_factory(self):
        spec = IIRSpec.paper(1.0)
        assert spec.sample_period_us == 1.0

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            IIRSpec.paper(0.0)

    def test_goal_minimizes_area(self):
        goal = IIRSpec.paper(1.0).goal()
        assert goal.primary.metric == "area_mm2"


class TestSearchIntegration:
    def test_search_finds_feasible_implementation(self):
        metacore = IIRMetaCore(
            IIRSpec.paper(2.0),
            config=SearchConfig(max_resolution=2, refine_top_k=3),
        )
        result = metacore.search()
        assert result.feasible
        metrics = result.best_metrics
        assert metrics["spec_violation"] == 0.0
        assert metrics["area_mm2"] < 8.0

    def test_tighter_throughput_bigger_best_area(self):
        config = SearchConfig(max_resolution=2, refine_top_k=3)
        slow = IIRMetaCore(IIRSpec.paper(5.0), config=config).search()
        fast = IIRMetaCore(IIRSpec.paper(0.25), config=config).search()
        assert slow.feasible and fast.feasible
        assert (
            fast.best_metrics["area_mm2"] > slow.best_metrics["area_mm2"]
        )

    def test_build_returns_quantized_realization(self):
        metacore = IIRMetaCore(IIRSpec.paper(2.0))
        realization = metacore.build(_point())
        from repro.iir import check_quantized, paper_bandpass_spec

        report = check_quantized(
            realization, paper_bandpass_spec(), 14
        )
        # build() already quantized it; re-checking at the same word
        # length must agree it meets spec.
        assert report.meets(paper_bandpass_spec())

    def test_fast_rate_excludes_serial_structures(self):
        metacore = IIRMetaCore(
            IIRSpec.paper(0.25),
            config=SearchConfig(max_resolution=2, refine_top_k=3),
        )
        result = metacore.search()
        assert result.feasible
        assert result.best_point["structure"] not in ("ladder", "continued")
