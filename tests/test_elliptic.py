"""Tests for the from-scratch Jacobi elliptic function machinery."""

from __future__ import annotations

import cmath
import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy import special

from repro.errors import FilterDesignError
from repro.iir.elliptic import (
    acde,
    asne,
    cde,
    ellipdeg,
    ellipk,
    ellipk_complement,
    landen_sequence,
    modulus_from_nome,
    nome,
    sne,
)


class TestEllipk:
    def test_k_zero_is_pi_half(self):
        assert ellipk(0.0) == pytest.approx(math.pi / 2)

    @given(st.floats(0.0, 0.999))
    @settings(max_examples=50, deadline=None)
    def test_matches_scipy(self, k):
        # scipy's ellipk takes the parameter m = k^2.
        assert ellipk(k) == pytest.approx(special.ellipk(k * k), rel=1e-10)

    def test_complement(self):
        k = 0.6
        kp = math.sqrt(1 - k * k)
        assert ellipk_complement(k) == pytest.approx(ellipk(kp))

    def test_rejects_bad_modulus(self):
        with pytest.raises(FilterDesignError):
            ellipk(1.0)
        with pytest.raises(FilterDesignError):
            ellipk(-0.1)


class TestLanden:
    def test_sequence_decreases_fast(self):
        seq = landen_sequence(0.99)
        assert all(b < a for a, b in zip(seq, seq[1:]))
        assert seq[-1] < 1e-12


class TestJacobiFunctions:
    @given(st.floats(0.01, 0.99), st.floats(-0.99, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_cde_matches_scipy(self, k, u):
        """cd(u K, k) against scipy.special.ellipj."""
        big_k = ellipk(k)
        _, cn, dn, _ = special.ellipj(u * big_k, k * k)
        expected = cn / dn
        assert cde(u, k).real == pytest.approx(expected, abs=1e-8)

    @given(st.floats(0.01, 0.99), st.floats(-0.99, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_sne_matches_scipy(self, k, u):
        big_k = ellipk(k)
        sn, _, _, _ = special.ellipj(u * big_k, k * k)
        assert sne(u, k).real == pytest.approx(sn, abs=1e-8)

    def test_cde_at_zero_and_one(self):
        assert cde(0.0, 0.5).real == pytest.approx(1.0)
        assert abs(cde(1.0, 0.5)) < 1e-12  # cd(K) = 0

    @given(st.floats(0.05, 0.95), st.floats(0.05, 0.95))
    @settings(max_examples=60, deadline=None)
    def test_acde_inverts_cde(self, k, u):
        w = cde(u, k)
        recovered = acde(w, k)
        assert recovered.real == pytest.approx(u, abs=1e-6)

    @given(st.floats(0.05, 0.95), st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_asne_inverts_sne(self, k, u):
        w = sne(u, k)
        recovered = asne(w, k)
        assert recovered.real == pytest.approx(u, abs=1e-6)

    def test_cde_complex_argument(self):
        """cd of a complex argument is finite and inverts."""
        value = cde(0.3 - 0.2j, 0.7)
        assert cmath.isfinite(value)


class TestNome:
    @given(st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_modulus_nome_round_trip(self, k):
        assert modulus_from_nome(nome(k)) == pytest.approx(k, abs=1e-9)

    def test_nome_zero(self):
        assert nome(0.0) == 0.0
        assert modulus_from_nome(0.0) == 0.0


class TestDegreeEquation:
    @given(st.integers(1, 8), st.floats(1e-4, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_degree_equation_satisfied(self, n, k1):
        # Practical filter orders; at large n the solution modulus sits
        # within 1e-12 of 1 where verifying through K/K' is itself
        # ill-conditioned, hence the modest tolerance.
        k = ellipdeg(n, k1)
        if k == 0.0:
            return
        lhs = n * ellipk_complement(k) / ellipk(k)
        rhs = ellipk_complement(k1) / ellipk(k1)
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_higher_order_sharper_transition(self):
        k1 = 0.01
        k_low = ellipdeg(4, k1)
        k_high = ellipdeg(8, k1)
        assert k_high > k_low  # selectivity approaches 1

    def test_rejects_bad_order(self):
        with pytest.raises(FilterDesignError):
            ellipdeg(0, 0.5)
