"""Tests for multiresolution grids and region refinement (Fig. 6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Region,
)
from repro.errors import DesignSpaceError


def _space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("k", tuple(range(3, 10))),
            DiscreteParameter("w", tuple(range(6, 25))),
            ContinuousParameter("gamma", 0.0, 1.0),
        ]
    )


class TestGrid:
    def test_coarse_grid_two_per_dim(self):
        grid = Region.full(_space()).grid(resolution=0)
        assert len(grid.points) == 8  # 2 * 2 * 2

    def test_resolution_increases_samples(self):
        region = Region.full(_space())
        coarse = region.grid(0)
        fine = region.grid(2)
        assert len(fine.points) > len(coarse.points)

    def test_budget_respected(self):
        space = DesignSpace(
            [DiscreteParameter(f"p{i}", tuple(range(10))) for i in range(6)]
        )
        grid = Region.full(space).grid(resolution=3, max_points=256)
        assert len(grid.points) <= 256

    def test_categorical_fully_enumerated(self):
        space = DesignSpace(
            [
                DiscreteParameter(
                    "s", ("a", "b", "c", "d", "e"), Correlation.NONE
                ),
                DiscreteParameter("w", tuple(range(20))),
            ]
        )
        grid = Region.full(space).grid(resolution=0)
        sampled = {p["s"] for p in grid.points}
        assert sampled == {"a", "b", "c", "d", "e"}

    def test_grid_endpoints_included(self):
        grid = Region.full(_space()).grid(0)
        ks = {p["k"] for p in grid.points}
        assert ks == {3, 9}

    def test_fixed_parameter_single_sample(self):
        space = DesignSpace(
            [DiscreteParameter("a", (1,)), DiscreteParameter("b", (1, 2, 3))]
        )
        grid = Region.full(space).grid(1)
        assert all(p["a"] == 1 for p in grid.points)

    def test_rejects_bad_args(self):
        region = Region.full(_space())
        with pytest.raises(DesignSpaceError):
            region.grid(-1)
        with pytest.raises(DesignSpaceError):
            region.grid(0, max_points=0)


class TestRefinement:
    def test_refined_region_contains_point(self):
        region = Region.full(_space())
        grid = region.grid(1)
        point = grid.points[len(grid.points) // 2]
        refined = region.refine_around(point, grid.samples)
        lo, hi = refined.bound_of("k")
        index = _space()["k"].index_of(point["k"])
        assert lo <= index <= hi

    def test_refined_region_shrinks(self):
        region = Region.full(_space())
        grid = region.grid(1)
        refined = region.refine_around(grid.points[0], grid.samples)
        assert refined.volume_fraction() < region.volume_fraction()

    def test_refinement_is_nested(self):
        """A refined region's grid points stay inside the region."""
        region = Region.full(_space())
        grid = region.grid(0)
        refined = region.refine_around(grid.points[-1], grid.samples)
        inner = refined.grid(1)
        k_lo, k_hi = refined.bound_of("k")
        parameter = _space()["k"]
        for point in inner.points:
            assert k_lo <= parameter.index_of(point["k"]) <= k_hi

    def test_refine_rejects_off_grid_point(self):
        region = Region.full(_space())
        grid = region.grid(0)
        bogus = dict(grid.points[0])
        bogus["k"] = 5  # not among the resolution-0 samples {3, 9}
        with pytest.raises(DesignSpaceError):
            region.refine_around(bogus, grid.samples)

    def test_volume_fraction_full_is_one(self):
        assert Region.full(_space()).volume_fraction() == pytest.approx(1.0)

    def test_bound_of_unknown_raises(self):
        with pytest.raises(DesignSpaceError):
            Region.full(_space()).bound_of("zz")

    @given(st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_any_refinement_contains_its_seed(self, resolution, index):
        region = Region.full(_space())
        grid = region.grid(resolution)
        point = grid.points[index % len(grid.points)]
        refined = region.refine_around(point, grid.samples)
        # The seed point is inside the refined bounds on every axis.
        for parameter in _space().parameters:
            lo, hi = refined.bound_of(parameter.name)
            if isinstance(parameter, DiscreteParameter):
                position = parameter.index_of(point[parameter.name])
                assert lo <= position <= hi
            else:
                assert lo <= point[parameter.name] <= hi
