"""Differential gates for the pluggable search strategies.

The contract (``docs/search-strategies.md``): on the paper's own
scenarios each alternative strategy must find a design **no worse**
than the multiresolution grid while spending **at most half** of the
grid's evaluator calls —

- Table 4 (IIR): both ``evolve`` and ``surrogate`` meet the gate cold.
- Table 3 (Viterbi): ``evolve`` meets the gate cold; ``surrogate``
  meets it warm-started from an atlas recorded by a cold grid run
  (the Bayesian BER posterior makes cold pruning on this landscape
  pay ~53% of the grid — the atlas replay path is the supported way
  to get under the bar, and is why the surrogate consumes
  ``PersistentEvalCache``/atlas records in the first place).

Both strategies are seeded and batch-order deterministic, so serial,
parallel (``workers=2``), and checkpoint-resumed runs must select the
same design bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.core import BERThresholdCurve, SearchConfig, validate_strategy
from repro.errors import ConfigurationError
from repro.iir import IIRMetaCore, IIRSpec
from repro.resilience.session import RoundBudgetExceeded
from repro.viterbi import ViterbiMetaCore, ViterbiSpec

#: Evaluator-call ceiling relative to the grid baseline (ISSUE gate).
MAX_EVAL_FRACTION = 0.5


def _iir_config(strategy: str) -> SearchConfig:
    return SearchConfig(max_resolution=3, refine_top_k=4, strategy=strategy)


def _iir_metacore(strategy: str, **kwargs) -> IIRMetaCore:
    return IIRMetaCore(
        IIRSpec.paper(4.0), config=_iir_config(strategy), **kwargs
    )


def _viterbi_metacore(strategy: str, **kwargs) -> ViterbiMetaCore:
    spec = ViterbiSpec(
        throughput_bps=1e6,
        ber_curve=BERThresholdCurve.single(4.0, 2e-2),
    )
    return ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=SearchConfig(
            max_resolution=2, refine_top_k=3, strategy=strategy
        ),
        **kwargs,
    )


@pytest.fixture(scope="module")
def iir_grid():
    """Cold Table 4 grid baseline (shared across the gate tests)."""
    return _iir_metacore("grid").search()


@pytest.fixture(scope="module")
def viterbi_grid(tmp_path_factory):
    """Cold Table 3 grid baseline, recorded into a fresh atlas.

    Returns ``(result, atlas_path)`` so the surrogate gate can
    warm-start from exactly what the grid run learned.
    """
    atlas_path = str(tmp_path_factory.mktemp("strategies") / "atlas.jsonl")
    result = _viterbi_metacore("grid", atlas_path=atlas_path).search()
    return result, atlas_path


def _assert_gate(result, baseline, *, metric: str) -> None:
    """No-worse quality at <= half the baseline's evaluator calls."""
    assert result.feasible and baseline.feasible
    assert result.best_metrics[metric] <= baseline.best_metrics[metric]
    budget = MAX_EVAL_FRACTION * baseline.log.n_evaluations
    assert result.log.n_evaluations <= budget, (
        f"{result.strategy} spent {result.log.n_evaluations} evaluations; "
        f"gate is {budget:.0f} (50% of grid's "
        f"{baseline.log.n_evaluations})"
    )


class TestStrategyValidation:
    def test_known_strategies_pass(self):
        for name in ("grid", "evolve", "surrogate"):
            assert validate_strategy(name) == name

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_strategy("annealing")

    def test_search_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            _iir_metacore("hillclimb").search()


class TestIIRTable4Gates:
    """Cold differential on the paper's Table 4 scenario."""

    def test_grid_baseline_feasible(self, iir_grid):
        assert iir_grid.feasible
        assert iir_grid.strategy == "grid"
        assert iir_grid.log.n_evaluations > 0

    def test_evolve_gate(self, iir_grid):
        result = _iir_metacore("evolve").search()
        assert result.strategy == "evolve"
        _assert_gate(result, iir_grid, metric="area_mm2")

    def test_surrogate_gate(self, iir_grid):
        result = _iir_metacore("surrogate").search()
        assert result.strategy == "surrogate"
        assert result.evals_saved > 0
        _assert_gate(result, iir_grid, metric="area_mm2")


class TestViterbiTable3Gates:
    """Table 3 scenario: evolve cold, surrogate warm from the atlas."""

    def test_evolve_gate(self, viterbi_grid):
        baseline, _ = viterbi_grid
        result = _viterbi_metacore("evolve").search()
        _assert_gate(result, baseline, metric="area_mm2")

    def test_surrogate_warm_start_gate(self, viterbi_grid):
        baseline, atlas_path = viterbi_grid
        result = _viterbi_metacore(
            "surrogate", atlas_path=atlas_path
        ).search()
        _assert_gate(result, baseline, metric="area_mm2")
        # Replayed atlas records price the warm walk almost for free.
        assert result.log.n_evaluations < baseline.log.n_evaluations // 10
        assert result.best_point == baseline.best_point


def _same_selection(a, b) -> bool:
    return (
        a.best_point == b.best_point
        and a.best_metrics == b.best_metrics
        and a.log.n_evaluations == b.log.n_evaluations
    )


@pytest.mark.parametrize("strategy", ["evolve", "surrogate"])
class TestDeterminism:
    """serial == parallel == resumed-from-checkpoint, bit-for-bit."""

    @staticmethod
    def _metacore(strategy: str, **kwargs) -> IIRMetaCore:
        return IIRMetaCore(
            IIRSpec.paper(4.0),
            config=SearchConfig(
                max_resolution=2, refine_top_k=2, strategy=strategy
            ),
            **kwargs,
        )

    def test_serial_matches_parallel(self, strategy):
        serial = self._metacore(strategy).search()
        parallel = self._metacore(strategy, workers=2).search()
        assert _same_selection(serial, parallel)

    def test_resume_matches_uninterrupted(self, strategy, tmp_path):
        reference = self._metacore(strategy).search()
        checkpoint = str(tmp_path / "checkpoint.json")
        with pytest.raises(RoundBudgetExceeded):
            self._metacore(
                strategy, checkpoint_path=checkpoint, max_rounds=3
            ).search()
        resumed = self._metacore(
            strategy, checkpoint_path=checkpoint, resume=True
        ).search()
        assert resumed.best_point == reference.best_point
        assert resumed.best_metrics == reference.best_metrics
