"""Tests for the realization structures (paper Sec. 3.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import FilterDesignError
from repro.iir.design import design_filter, paper_bandpass_spec, LowpassSpec
from repro.iir.structures import (
    Cascade,
    ContinuedFraction,
    LatticeLadder,
    Parallel,
    StateSpace,
    available_structures,
    continued_fraction_expand,
    continued_fraction_fold,
    group_conjugate_roots,
    ladder_coefficients,
    partial_fractions,
    predictor_polynomials,
    realize,
    reflection_coefficients,
)
from repro.iir.transfer import TransferFunction

ALL_STRUCTURES = sorted(available_structures())


@pytest.fixture(scope="module")
def simple_tf():
    """A well-behaved order-4 low-pass filter."""
    spec = LowpassSpec(0.25 * math.pi, 0.45 * math.pi, 0.05, 0.02)
    return design_filter(spec, "elliptic").to_tf()


class TestRegistry:
    def test_seven_structures_registered(self):
        assert len(ALL_STRUCTURES) == 7
        assert {"cascade", "parallel", "ladder", "continued",
                "direct1", "direct2", "statespace"} <= set(ALL_STRUCTURES)

    def test_unknown_structure_raises(self, simple_tf):
        with pytest.raises(FilterDesignError):
            realize("wave", simple_tf)


class TestEquivalence:
    """Every structure must implement the same transfer function."""

    @pytest.mark.parametrize("name", ALL_STRUCTURES)
    def test_to_tf_matches(self, name, simple_tf):
        realization = realize(name, simple_tf)
        omega = np.linspace(0.05, 3.0, 128)
        rebuilt = realization.to_tf()
        assert np.max(
            np.abs(rebuilt.response(omega) - simple_tf.response(omega))
        ) < 1e-8

    @pytest.mark.parametrize("name", ALL_STRUCTURES)
    def test_simulation_matches_reference(self, name, simple_tf, rng):
        realization = realize(name, simple_tf)
        x = rng.normal(size=100)
        reference = simple_tf.filter(x)
        assert np.max(np.abs(realization.simulate(x) - reference)) < 1e-7

    @pytest.mark.parametrize("name", ALL_STRUCTURES)
    def test_bandpass_order8(self, name, bandpass_tf):
        realization = realize(name, bandpass_tf)
        omega = np.linspace(0.05, 3.0, 128)
        rebuilt = realization.to_tf()
        assert np.max(
            np.abs(rebuilt.response(omega) - bandpass_tf.response(omega))
        ) < 1e-6

    @pytest.mark.parametrize("name", ALL_STRUCTURES)
    def test_coefficient_round_trip(self, name, simple_tf):
        realization = realize(name, simple_tf)
        clone = realization.with_coefficients(realization.coefficients())
        omega = np.linspace(0.1, 3.0, 32)
        assert np.allclose(
            clone.to_tf().response(omega), realization.to_tf().response(omega)
        )


class TestDataflow:
    def test_direct2_fewer_delays_than_direct1(self, bandpass_tf):
        d1 = realize("direct1", bandpass_tf).dataflow()
        d2 = realize("direct2", bandpass_tf).dataflow()
        assert d2.delays < d1.delays
        assert d1.multiplies == d2.multiplies

    def test_cascade_short_loop(self, bandpass_tf):
        stats = realize("cascade", bandpass_tf).dataflow()
        assert stats.loop_multiplies == 1
        assert stats.chain_local

    def test_ladder_serial_loop(self, bandpass_tf):
        stats = realize("ladder", bandpass_tf).dataflow()
        assert stats.loop_multiplies >= 8  # spans all stages

    def test_statespace_quadratic_ops(self, bandpass_tf):
        stats = realize("statespace", bandpass_tf).dataflow()
        order = bandpass_tf.order
        assert stats.multiplies == order * order + 2 * order + 1

    def test_total_ops(self, bandpass_tf):
        stats = realize("cascade", bandpass_tf).dataflow()
        assert stats.total_ops == stats.multiplies + stats.additions


class TestCascade:
    def test_group_conjugates(self):
        roots = np.array([0.5 + 0.5j, 0.5 - 0.5j, 0.9, -0.3])
        groups = group_conjugate_roots(roots)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [2, 2]  # pair + two reals combined

    def test_group_rejects_unpaired_complex(self):
        with pytest.raises(FilterDesignError):
            group_conjugate_roots(np.array([0.5 + 0.5j, 0.9]))

    def test_sections_are_biquads(self, bandpass_tf):
        cascade = realize("cascade", bandpass_tf)
        assert len(cascade.sections) == 4
        for b, a in cascade.sections:
            assert b.size <= 3 and a.size <= 3

    def test_gain_distributed(self, bandpass_tf):
        cascade = realize("cascade", bandpass_tf)
        # No section should carry a wildly larger coefficient scale
        # than the others (that is the point of distributing gain).
        peaks = [float(np.max(np.abs(b))) for b, _ in cascade.sections]
        assert max(peaks) / min(peaks) < 50.0

    def test_odd_order_filter(self):
        spec = LowpassSpec(0.3 * math.pi, 0.5 * math.pi, 0.05, 0.01)
        tf = design_filter(spec, "elliptic").to_tf()
        if tf.order % 2 == 0:
            pytest.skip("design produced an even order")
        cascade = realize("cascade", tf)
        omega = np.linspace(0.1, 3.0, 64)
        assert np.allclose(
            cascade.to_tf().response(omega), tf.response(omega), atol=1e-8
        )


class TestParallel:
    def test_partial_fractions_reassemble(self, bandpass_tf):
        constant, sections = partial_fractions(bandpass_tf)
        omega = np.linspace(0.1, 3.0, 64)
        total = np.full(64, constant, dtype=complex)
        for num, den in sections:
            total += TransferFunction(num, den).response(omega)
        assert np.max(np.abs(total - bandpass_tf.response(omega))) < 1e-8

    def test_rejects_repeated_poles(self):
        tf = TransferFunction([1.0], np.convolve([1, -0.5], [1, -0.5]))
        with pytest.raises(FilterDesignError):
            partial_fractions(tf)

    def test_handles_real_poles(self):
        tf = TransferFunction([1.0, 0.3], np.convolve([1, -0.5], [1, 0.4]))
        constant, sections = partial_fractions(tf)
        assert len(sections) == 2
        omega = np.linspace(0.1, 3.0, 32)
        rebuilt = Parallel(constant, sections).to_tf()
        assert np.allclose(rebuilt.response(omega), tf.response(omega))


class TestLadder:
    def test_reflection_coefficients_bounded(self, bandpass_tf):
        ks = reflection_coefficients(bandpass_tf.a)
        assert np.all(np.abs(ks) < 1.0)

    def test_reflection_rejects_unstable(self):
        with pytest.raises(FilterDesignError):
            reflection_coefficients(np.array([1.0, 0.0, 1.44]))

    def test_predictor_polynomials_rebuild_denominator(self, bandpass_tf):
        ks = reflection_coefficients(bandpass_tf.a)
        polys = predictor_polynomials(ks)
        assert np.allclose(polys[-1], bandpass_tf.a)

    def test_ladder_taps_rebuild_numerator(self, bandpass_tf):
        ks = reflection_coefficients(bandpass_tf.a)
        polys = predictor_polynomials(ks)
        vs = ladder_coefficients(bandpass_tf.b, polys)
        rebuilt = LatticeLadder(ks, vs).to_tf()
        assert np.allclose(rebuilt.b, bandpass_tf.b, atol=1e-10)

    def test_tap_count_validation(self):
        with pytest.raises(FilterDesignError):
            LatticeLadder(np.array([0.5]), np.array([1.0]))


class TestContinuedFraction:
    def test_expand_fold_round_trip(self, simple_tf):
        expansion = continued_fraction_expand(simple_tf)
        rebuilt = continued_fraction_fold(expansion)
        omega = np.linspace(0.1, 3.0, 64)
        assert np.max(
            np.abs(rebuilt.response(omega) - simple_tf.response(omega))
        ) < 1e-6

    def test_empty_fold_rejected(self):
        with pytest.raises(FilterDesignError):
            continued_fraction_fold([])

    def test_first_order_expansion(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        expansion = continued_fraction_expand(tf)
        rebuilt = continued_fraction_fold(expansion)
        omega = np.linspace(0.1, 3.0, 16)
        assert np.allclose(rebuilt.response(omega), tf.response(omega))


class TestStateSpace:
    def test_balanced_gramians_nearly_equal(self, simple_tf):
        from repro.iir.structures import gramian

        ss = realize("statespace", simple_tf)
        wc = gramian(ss.a, ss.b)
        wo = gramian(ss.a.T, ss.c.T)
        assert np.allclose(wc, wo, atol=1e-6)
        # Balanced gramians are diagonal.
        off = wc - np.diag(np.diag(wc))
        assert np.max(np.abs(off)) < 1e-6

    def test_constant_system(self):
        tf = TransferFunction([2.0], [1.0])
        ss = StateSpace.from_tf(tf)
        assert ss.a.shape == (0, 0)
        x = np.array([1.0, -1.0, 2.0])
        assert np.allclose(ss.simulate(x), 2.0 * x)

    def test_balance_rejects_unstable(self):
        from repro.iir.structures import balance, controllable_canonical

        tf = TransferFunction([1.0], [1.0, -1.5])
        a, b, c, _ = controllable_canonical(tf)
        with pytest.raises(FilterDesignError):
            balance(a, b, c)


class TestQuantization:
    @pytest.mark.parametrize("name", ALL_STRUCTURES)
    def test_generous_word_length_is_transparent(self, name, simple_tf, rng):
        realization = realize(name, simple_tf)
        quantized = realization.quantized(24)
        omega = np.linspace(0.1, 3.0, 64)
        # The continued fraction is the structure set's sensitivity
        # extreme: even 24 bits leave visible response error — exactly
        # the behaviour the structure exploration is about.
        tolerance = 5e-2 if name == "continued" else 1e-3
        assert np.max(
            np.abs(
                quantized.to_tf().response(omega) - simple_tf.response(omega)
            )
        ) < tolerance

    def test_ladder_better_than_direct_at_low_word(self, bandpass_tf):
        """The structure-sensitivity fact behind the paper's Table 4."""
        from repro.iir.design import BandpassSpec

        spec = paper_bandpass_spec()
        margin = BandpassSpec(
            spec.passband_low, spec.passband_high,
            spec.stopband_low, spec.stopband_high,
            0.6 * spec.passband_ripple, 0.6 * spec.stopband_ripple,
        )
        tf = design_filter(margin, "elliptic").to_tf()
        from repro.iir.fixedpoint import minimum_word_length

        ladder = minimum_word_length(realize("ladder", tf), spec, 28)
        direct = minimum_word_length(realize("direct2", tf), spec, 28)
        assert ladder is not None
        assert direct is None or direct > ladder + 4

    def test_direct_form_unstable_at_low_word(self, bandpass_tf):
        quantized = realize("direct2", bandpass_tf).quantized(8)
        assert not quantized.to_tf().is_stable()
