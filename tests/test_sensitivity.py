"""Tests for local sensitivity analysis (repro.core.sensitivity)."""

from __future__ import annotations

import pytest

from repro.core import (
    ContinuousParameter,
    DesignSpace,
    DiscreteParameter,
    FunctionEvaluator,
)
from repro.core.sensitivity import (
    ParameterSensitivity,
    analyze_sensitivity,
    format_sensitivity_table,
)
from repro.errors import DesignSpaceError


def _space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("a", tuple(range(0, 11))),
            ContinuousParameter("x", 0.0, 1.0),
            DiscreteParameter("fixed", (7,)),
        ]
    )


def _evaluator() -> FunctionEvaluator:
    def func(point, fidelity):
        a = float(point["a"])
        x = float(point["x"])
        return {"cost": (a - 4) ** 2 + 10.0 * x, "linear": 3.0 * a}

    return FunctionEvaluator(func, 0)


class TestAnalysis:
    def test_gradient_signs_around_minimum(self):
        results = analyze_sensitivity(
            _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(), "cost"
        )
        by_name = {r.parameter: r for r in results}
        # At the quadratic minimum of a, central gradient ~ 0.
        assert by_name["a"].gradient == pytest.approx(0.0)
        assert by_name["a"].curvature > 0
        # x contributes linearly with slope 10 per unit (step 0.1 -> 1.0).
        assert by_name["x"].gradient == pytest.approx(1.0)

    def test_monotonic_detection(self):
        results = analyze_sensitivity(
            _space(), {"a": 8, "x": 0.5, "fixed": 7}, _evaluator(), "linear"
        )
        by_name = {r.parameter: r for r in results}
        assert by_name["a"].is_monotonic_here is True
        assert by_name["a"].gradient == pytest.approx(3.0)

    def test_boundary_one_sided(self):
        results = analyze_sensitivity(
            _space(), {"a": 0, "x": 0.0, "fixed": 7}, _evaluator(), "cost"
        )
        by_name = {r.parameter: r for r in results}
        assert by_name["a"].below is None
        assert by_name["a"].above is not None
        assert by_name["a"].gradient is not None
        assert by_name["x"].below is None

    def test_fixed_parameters_skipped(self):
        results = analyze_sensitivity(
            _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(), "cost"
        )
        assert {r.parameter for r in results} == {"a", "x"}

    def test_explicit_parameter_list(self):
        results = analyze_sensitivity(
            _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(), "cost",
            parameters=["x"],
        )
        assert len(results) == 1 and results[0].parameter == "x"

    def test_unknown_parameter_rejected(self):
        with pytest.raises(DesignSpaceError):
            analyze_sensitivity(
                _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(),
                "cost", parameters=["zz"],
            )

    def test_missing_metric_rejected(self):
        with pytest.raises(DesignSpaceError):
            analyze_sensitivity(
                _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(), "zz"
            )

    def test_normalizer_applied(self):
        seen = []

        def func(point, fidelity):
            seen.append(dict(point))
            return {"cost": float(point["a"])}

        def normalizer(point):
            point = dict(point)
            point["x"] = 0.0
            return point

        analyze_sensitivity(
            _space(), {"a": 4, "x": 0.5, "fixed": 7},
            FunctionEvaluator(func, 0), "cost", normalizer=normalizer,
        )
        # Every perturbed candidate passed through the normalizer
        # (the center point is priced as given).
        assert all(p["x"] == 0.0 for p in seen[1:])


class TestFormatting:
    def test_table_contents(self):
        results = analyze_sensitivity(
            _space(), {"a": 4, "x": 0.5, "fixed": 7}, _evaluator(), "cost"
        )
        text = format_sensitivity_table(results)
        assert "sensitivity of cost" in text
        assert " a " in text or "a" in text
        assert "gradient" in text

    def test_empty_table(self):
        assert "no free parameters" in format_sensitivity_table([])

    def test_dataclass_properties(self):
        item = ParameterSensitivity("p", "m", below=1.0, center=2.0, above=4.0)
        assert item.gradient == pytest.approx(1.5)
        assert item.curvature == pytest.approx(1.0)
        assert item.is_monotonic_here is True
        item2 = ParameterSensitivity("p", "m", below=4.0, center=2.0, above=4.0)
        assert item2.is_monotonic_here is False
