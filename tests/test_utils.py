"""Tests for repro.utils: RNG derivation, statistics, fixed point."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.fixed import (
    from_fixed,
    needed_integer_bits,
    quantize_array,
    quantize_mantissa,
    quantize_real,
    to_fixed,
)
from repro.utils.rng import derive_seed, ensure_seed, make_rng, spawn_rng
from repro.utils.stats import (
    binomial_confidence_interval,
    geometric_mean,
    improvement_percent,
    mean_improvement_percent,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(7).integers(0, 1 << 30, size=8)
        b = make_rng(7).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_make_rng_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_distinct_labels(self):
        seeds = {derive_seed(1, "x", i) for i in range(100)}
        assert len(seeds) == 100

    def test_derive_seed_distinct_masters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_spawn_rng_streams_differ(self):
        a = spawn_rng(3, "one").random()
        b = spawn_rng(3, "two").random()
        assert a != b

    def test_ensure_seed(self):
        assert ensure_seed(None, 9) == 9
        assert ensure_seed(4, 9) == 4


class TestStats:
    def test_wilson_interval_brackets_estimate(self):
        lo, hi = binomial_confidence_interval(10, 1000)
        assert lo < 0.01 < hi

    def test_wilson_zero_errors_nonzero_upper(self):
        lo, hi = binomial_confidence_interval(0, 1000)
        assert lo == 0.0
        assert hi > 0.0

    def test_wilson_all_errors(self):
        lo, hi = binomial_confidence_interval(1000, 1000)
        assert hi == 1.0
        assert lo < 1.0

    def test_wilson_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            binomial_confidence_interval(-1, 10)
        with pytest.raises(ValueError):
            binomial_confidence_interval(11, 10)

    @given(st.integers(0, 200), st.integers(1, 10_000))
    def test_wilson_is_a_valid_interval(self, errors, trials):
        errors = min(errors, trials)
        lo, hi = binomial_confidence_interval(errors, trials)
        assert 0.0 <= lo <= hi <= 1.0

    def test_geometric_mean_simple(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_zero(self):
        assert geometric_mean([0.0, 5.0]) == 0.0

    def test_geometric_mean_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_improvement_percent(self):
        assert improvement_percent(1e-2, 3.6e-3) == pytest.approx(64.0)

    def test_improvement_percent_negative_when_worse(self):
        assert improvement_percent(1e-3, 2e-3) == pytest.approx(-100.0)

    def test_mean_improvement_skips_zero_baseline(self):
        value = mean_improvement_percent([0.0, 1e-2], [1e-3, 5e-3])
        assert value == pytest.approx(50.0)

    def test_mean_improvement_all_zero_raises(self):
        with pytest.raises(ValueError):
            mean_improvement_percent([0.0], [0.0])


class TestFixedPoint:
    def test_round_trip_exact_values(self):
        assert quantize_real(0.5, 8, 6) == 0.5
        assert quantize_real(-1.0, 8, 6) == -1.0

    def test_saturation_high(self):
        # 8-bit, 6 fractional: max code 127 -> 127/64.
        assert quantize_real(5.0, 8, 6) == pytest.approx(127 / 64)

    def test_saturation_low(self):
        assert quantize_real(-5.0, 8, 6) == pytest.approx(-2.0)

    def test_to_fixed_rejects_bad_word(self):
        with pytest.raises(ValueError):
            to_fixed(0.5, 1, 0)
        with pytest.raises(ValueError):
            to_fixed(0.5, 8, 8)

    @given(
        st.floats(-1.0, 1.0, allow_nan=False),
        st.integers(4, 16),
    )
    def test_quantization_error_bounded(self, value, word):
        frac = word - 2
        result = quantize_real(value, word, frac)
        assert abs(result - value) <= 2.0 ** (-frac - 1) + 1e-12

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=8))
    def test_quantize_array_idempotent(self, values):
        arr = np.asarray(values)
        bits = needed_integer_bits(arr)
        once = quantize_array(arr, 16, 14 - bits if bits <= 14 else 0)
        twice = quantize_array(once, 16, 14 - bits if bits <= 14 else 0)
        assert np.allclose(once, twice)

    def test_needed_integer_bits(self):
        assert needed_integer_bits(np.array([0.0])) == 0
        assert needed_integer_bits(np.array([0.99])) == 0
        assert needed_integer_bits(np.array([1.0])) == 1
        assert needed_integer_bits(np.array([-3.5])) == 2
        assert needed_integer_bits(np.array([70.0])) == 7

    def test_quantize_mantissa_preserves_zero(self):
        out = quantize_mantissa(np.array([0.0, 0.5]), 8)
        assert out[0] == 0.0

    @given(
        st.floats(1e-6, 1e6, allow_nan=False),
        st.integers(4, 20),
    )
    def test_quantize_mantissa_relative_error(self, value, word):
        out = quantize_mantissa(np.array([value]), word)[0]
        assert abs(out - value) / value <= 2.0 ** (-(word - 1)) + 1e-12

    def test_quantize_mantissa_signs(self):
        out = quantize_mantissa(np.array([-0.3, 0.3]), 10)
        assert out[0] == -out[1]

    def test_from_fixed_matches_scale(self):
        codes = to_fixed(np.array([0.25, 0.75]), 10, 8)
        back = from_fixed(codes, 8)
        assert np.allclose(back, [0.25, 0.75])
