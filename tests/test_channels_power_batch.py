"""Tests for the extension modules: channels, power, batch sweeps."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    DesignGoal,
    DesignSpace,
    DiscreteParameter,
    FunctionEvaluator,
    MetacoreSearch,
    Objective,
    Constraint,
    SearchConfig,
)
from repro.core.batch import SpecificationSweep
from repro.errors import ConfigurationError
from repro.hardware import MachineConfig, ViterbiInstanceParams, viterbi_program
from repro.hardware.power import EnergyEstimate, estimate_energy
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
)
from repro.viterbi.channels import BinarySymmetricChannel, RayleighFadingChannel


class TestBinarySymmetricChannel:
    def test_flip_statistics(self):
        channel = BinarySymmetricChannel(0.1)
        symbols = np.zeros(100_000, dtype=np.int8)
        received = channel.transmit(symbols, rng=0)
        flipped = np.count_nonzero(received < 0)
        assert flipped / symbols.size == pytest.approx(0.1, abs=0.01)

    def test_zero_crossover_clean(self):
        channel = BinarySymmetricChannel(0.0)
        symbols = np.array([0, 1, 1, 0])
        assert np.array_equal(channel.transmit(symbols, rng=1),
                              [1.0, -1.0, -1.0, 1.0])

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            BinarySymmetricChannel(0.7)

    def test_equivalent_to_awgn(self):
        channel = BinarySymmetricChannel.equivalent_to_awgn(0.0)
        assert channel.crossover == pytest.approx(
            0.5 * math.erfc(1.0), rel=1e-12
        )

    def test_decoder_corrects_bsc_errors(self, encoder_k5, trellis_k5, rng):
        decoder = ViterbiDecoder(trellis_k5, HardQuantizer(), 25)
        channel = BinarySymmetricChannel(0.02)
        bits = rng.integers(0, 2, size=(8, 256), dtype=np.int8)
        received = channel.transmit(encoder_k5.encode(bits), rng)
        decoded = decoder.decode(received, sigma=channel.sigma)
        errors = np.count_nonzero(decoded != bits)
        assert errors / bits.size < 5e-3


class TestRayleighChannel:
    def test_fading_worse_than_awgn(self, encoder_k5, trellis_k5):
        from repro.viterbi import AWGNChannel

        decoder = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(16, 256), dtype=np.int8)
        symbols = encoder_k5.encode(bits)
        awgn = AWGNChannel(3.0)
        fading = RayleighFadingChannel(3.0)
        errors_awgn = np.count_nonzero(
            decoder.decode(awgn.transmit(symbols, rng), awgn.sigma) != bits
        )
        errors_fading = np.count_nonzero(
            decoder.decode(fading.transmit(symbols, rng), fading.sigma) != bits
        )
        assert errors_fading > errors_awgn

    def test_block_fading_bursts(self):
        channel = RayleighFadingChannel(10.0, coherence_symbols=64)
        symbols = np.zeros(512, dtype=np.int8)
        received = channel.transmit(symbols, rng=3)
        # With CSI equalization the signal level is constant but the
        # effective noise scale is per-block (sigma / h_block): the
        # blockwise standard deviations must differ visibly.
        blocks = received.reshape(8, 64)
        block_stds = blocks.std(axis=1)
        assert block_stds.max() / block_stds.min() > 1.5

    def test_uncoded_ber_formula_decreases(self):
        values = [
            RayleighFadingChannel(snr).average_uncoded_ber()
            for snr in (0.0, 10.0, 20.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_coherence(self):
        with pytest.raises(ConfigurationError):
            RayleighFadingChannel(3.0, coherence_symbols=0)

    def test_interleaving_value_shown_by_coherence(self, encoder_k5, trellis_k5):
        """Correlated fades (no interleaving) hurt the decoder more
        than independent per-symbol fades."""
        decoder = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(24, 256), dtype=np.int8)
        symbols = encoder_k5.encode(bits)
        fast = RayleighFadingChannel(6.0, coherence_symbols=1)
        slow = RayleighFadingChannel(6.0, coherence_symbols=128)
        errors_fast = np.count_nonzero(
            decoder.decode(fast.transmit(symbols, rng), fast.sigma) != bits
        )
        errors_slow = np.count_nonzero(
            decoder.decode(slow.transmit(symbols, rng), slow.sigma) != bits
        )
        assert errors_slow > errors_fast


class TestPowerModel:
    def _program(self):
        return viterbi_program(ViterbiInstanceParams(5, 25, 1))

    def test_energy_positive_and_decomposed(self):
        estimate = estimate_energy(self._program(), MachineConfig(n_alus=2))
        assert estimate.operation_pj > 0
        assert estimate.overhead_pj > 0
        assert estimate.total_pj == pytest.approx(
            estimate.operation_pj + estimate.overhead_pj
        )

    def test_smaller_feature_less_energy(self):
        program = self._program()
        big = estimate_energy(program, MachineConfig(n_alus=2, feature_um=0.35))
        small = estimate_energy(program, MachineConfig(n_alus=2, feature_um=0.18))
        assert small.total_pj < big.total_pj

    def test_wider_machine_more_overhead(self):
        program = self._program()
        narrow = estimate_energy(program, MachineConfig(n_alus=1))
        wide = estimate_energy(program, MachineConfig(n_alus=12))
        # Same work, but the wide machine burns more per-cycle overhead
        # relative to its shorter schedule only if slots are idle;
        # per-iteration overhead = cycles * issue width, which grows.
        assert wide.overhead_pj != narrow.overhead_pj

    def test_more_states_more_energy(self):
        small = estimate_energy(
            viterbi_program(ViterbiInstanceParams(3, 15, 1)),
            MachineConfig(n_alus=2),
        )
        large = estimate_energy(
            viterbi_program(ViterbiInstanceParams(7, 35, 1)),
            MachineConfig(n_alus=2),
        )
        assert large.total_pj > 4 * small.total_pj

    def test_power_at_throughput(self):
        estimate = EnergyEstimate(operation_pj=800.0, overhead_pj=200.0)
        # 1000 pJ per bit at 1 Mbps = 1 mW.
        assert estimate.power_mw(1e6) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            estimate.power_mw(0.0)

    def test_spills_cost_energy(self):
        program = self._program()
        program.live_words = 200
        no_spill = estimate_energy(
            program, MachineConfig(n_alus=2, regfile_words=256)
        )
        spilled = estimate_energy(
            program, MachineConfig(n_alus=2, regfile_words=32)
        )
        assert spilled.operation_pj > no_spill.operation_pj


class TestSpecificationSweep:
    def _runner(self):
        space = DesignSpace([DiscreteParameter("x", tuple(range(12)))])

        def make(threshold):
            def evaluate(point, fidelity):
                x = float(point["x"])
                return {
                    "area_mm2": 1.0 + x,
                    "spec_violation": 0.0 if x >= threshold else 1.0,
                }

            goal = DesignGoal(
                objectives=[Objective("area_mm2")],
                constraints=[Constraint("spec_violation", upper=0.0)],
            )
            return MetacoreSearch(
                space, goal, FunctionEvaluator(evaluate, 0),
                SearchConfig(max_resolution=3),
            ).run()

        return make

    def test_sweep_rows_and_reduction(self):
        sweep = SpecificationSweep(runner=self._runner())
        rows = sweep.run([2, 5, 8], labels=["easy", "mid", "hard"])
        assert [row.label for row in rows] == ["easy", "mid", "hard"]
        assert all(row.feasible for row in rows)
        bests = [row.best_objective("area_mm2") for row in rows]
        assert bests == sorted(bests)  # harder spec, bigger best
        for row in rows:
            reduction = row.reduction_percent("area_mm2")
            assert reduction is not None and reduction > 0

    def test_infeasible_row(self):
        sweep = SpecificationSweep(runner=self._runner())
        rows = sweep.run([99], labels=["impossible"])
        assert not rows[0].feasible
        assert rows[0].average_objective is None

    def test_format_table(self):
        sweep = SpecificationSweep(runner=self._runner())
        sweep.run([2, 99], labels=["ok", "impossible"])
        text = sweep.format_table(
            extra_columns={"note": lambda row: "yes" if row.feasible else "no"}
        )
        assert "ok" in text and "impossible" in text
        assert "NO" in text
        assert "note" in text

    def test_label_mismatch_rejected(self):
        sweep = SpecificationSweep(runner=self._runner())
        with pytest.raises(ValueError):
            sweep.run([1, 2], labels=["only-one"])
