"""Tests for the encoder/trellis diagram renderers (Figs. 2 and 3)."""

from __future__ import annotations

import pytest

from repro.viterbi import (
    ConvolutionalEncoder,
    encoder_diagram,
    trellis_section_diagram,
)


class TestEncoderDiagram:
    def test_mentions_code_parameters(self, encoder_k3):
        text = encoder_diagram(encoder_k3)
        assert "K=3" in text
        assert "G=(7,5)" in text

    def test_one_row_per_polynomial(self, encoder_k5):
        text = encoder_diagram(encoder_k5)
        assert text.count("--XOR-->") == encoder_k5.n_outputs

    def test_tap_counts_match_popcount(self, encoder_k3):
        text = encoder_diagram(encoder_k3)
        rows = [line for line in text.splitlines() if "XOR" in line]
        for row, poly in zip(rows, encoder_k3.polynomials):
            assert row.count("x") == bin(poly).count("1")

    def test_register_stages(self):
        encoder = ConvolutionalEncoder(7)
        text = encoder_diagram(encoder)
        for stage in ("u", "R1", "R6"):
            assert stage in text


class TestTrellisDiagram:
    def test_all_branches_listed(self, encoder_k3):
        text = trellis_section_diagram(encoder_k3)
        branch_lines = [line for line in text.splitlines() if "/" in line]
        assert len(branch_lines) == 2 * encoder_k3.n_states

    def test_fig3_symbols(self, encoder_k3):
        """Spot-check branch labels of the paper's 4-state trellis."""
        text = trellis_section_diagram(encoder_k3)
        assert "00 ----[1/11]----> 10" in text
        assert "01 - - [0/11]- - > 00" in text

    def test_solid_vs_dashed_convention(self, encoder_k3):
        """Input 1 draws solid, input 0 dashed — as in the paper."""
        text = trellis_section_diagram(encoder_k3)
        for line in text.splitlines():
            if "[1/" in line:
                assert "----" in line
            if "[0/" in line:
                assert "- - " in line
