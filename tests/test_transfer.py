"""Tests for transfer functions and band measurements."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import FilterDesignError
from repro.iir.transfer import TransferFunction, ZPK, measure_bands


class TestTransferFunction:
    def test_normalizes_leading_coefficient(self):
        tf = TransferFunction([2.0, 4.0], [2.0, 1.0])
        assert tf.a[0] == 1.0
        assert tf.b[0] == 1.0

    def test_rejects_zero_leading_denominator(self):
        with pytest.raises(FilterDesignError):
            TransferFunction([1.0], [0.0, 1.0])

    def test_dc_gain(self):
        tf = TransferFunction([0.5, 0.5], [1.0])  # moving average
        assert abs(tf.response(np.array([0.0]))[0]) == pytest.approx(1.0)

    def test_nyquist_null_of_averager(self):
        tf = TransferFunction([0.5, 0.5], [1.0])
        assert abs(tf.response(np.array([math.pi]))[0]) < 1e-12

    def test_one_pole_filter_response(self):
        # H(z) = 1 / (1 - 0.5 z^-1): |H(0)| = 2.
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert abs(tf.response(np.array([0.0]))[0]) == pytest.approx(2.0)

    def test_stability(self):
        assert TransferFunction([1.0], [1.0, -0.5]).is_stable()
        assert not TransferFunction([1.0], [1.0, -1.5]).is_stable()

    def test_impulse_response_one_pole(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        imp = tf.impulse_response(6)
        assert np.allclose(imp, [0.5**n for n in range(6)])

    def test_filter_matches_convolution_for_fir(self, rng):
        b = np.array([0.2, -0.3, 0.5])
        tf = TransferFunction(b, [1.0])
        x = rng.normal(size=50)
        y = tf.filter(x)
        ref = np.convolve(x, b)[:50]
        assert np.allclose(y, ref)

    def test_multiplication_composes(self):
        a = TransferFunction([1.0], [1.0, -0.5])
        b = TransferFunction([1.0, 1.0], [1.0])
        product = a * b
        omega = np.linspace(0.1, 3.0, 16)
        assert np.allclose(
            product.response(omega), a.response(omega) * b.response(omega)
        )

    def test_zpk_round_trip(self):
        tf = TransferFunction([1.0, 0.4], [1.0, -0.9, 0.5])
        back = tf.to_zpk().to_tf()
        omega = np.linspace(0.1, 3.0, 16)
        assert np.allclose(back.response(omega), tf.response(omega))

    def test_zpk_gain(self):
        zpk = ZPK(zeros=(), poles=(0.5 + 0j,), gain=2.0)
        tf = zpk.to_tf()
        assert tf.b[0] == pytest.approx(2.0)


class TestMeasurement:
    def test_ideal_lowpass_measurements(self, bandpass_tf):
        from repro.iir.design import paper_bandpass_spec

        spec = paper_bandpass_spec()
        measurement = measure_bands(bandpass_tf, spec.passbands, spec.stopbands)
        assert measurement.passband_ripple <= spec.passband_ripple * 1.02
        assert measurement.stopband_level <= spec.stopband_ripple * 1.02
        assert measurement.peak_gain == pytest.approx(1.0, abs=0.02)

    def test_three_db_bandwidth_brackets_passband(self, bandpass_tf):
        from repro.iir.design import paper_bandpass_spec

        spec = paper_bandpass_spec()
        measurement = measure_bands(bandpass_tf, spec.passbands, spec.stopbands)
        assert measurement.three_db_low is not None
        assert measurement.three_db_low < spec.passband_low
        assert measurement.three_db_high > spec.passband_high
        assert measurement.three_db_bandwidth > (
            spec.passband_high - spec.passband_low
        )

    def test_stopband_attenuation_db(self, bandpass_tf):
        from repro.iir.design import paper_bandpass_spec

        spec = paper_bandpass_spec()
        measurement = measure_bands(bandpass_tf, spec.passbands, spec.stopbands)
        assert measurement.stopband_attenuation_db >= 36.0

    def test_grid_points_guard(self, bandpass_tf):
        with pytest.raises(FilterDesignError):
            measure_bands(bandpass_tf, [(0.1, 0.2)], [], grid_points=4)

    def test_no_three_db_edges_for_allstop(self):
        tf = TransferFunction([1e-6], [1.0])
        measurement = measure_bands(tf, [(0.5, 1.0)], [])
        assert measurement.three_db_low is None
        assert measurement.three_db_bandwidth is None
