"""Tests for the Monte-Carlo BER simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viterbi import (
    BERPoint,
    BERSimulator,
    BERSweep,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
)


@pytest.fixture()
def decoder_k3(trellis_k3):
    return ViterbiDecoder(trellis_k3, HardQuantizer(), 15)


class TestBERPoint:
    def test_ber_value(self):
        point = BERPoint(es_n0_db=2.0, bits=10_000, errors=25)
        assert point.ber == pytest.approx(2.5e-3)

    def test_confidence_interval_brackets(self):
        point = BERPoint(es_n0_db=2.0, bits=10_000, errors=25)
        lo, hi = point.confidence_interval()
        assert lo < point.ber < hi

    def test_str_contains_counts(self):
        point = BERPoint(es_n0_db=2.0, bits=100, errors=3)
        assert "3/100" in str(point)


class TestSimulator:
    def test_reproducible(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=128, seed=5)
        a = sim.measure(decoder_k3, 2.0, max_bits=20_000, target_errors=None)
        b = sim.measure(decoder_k3, 2.0, max_bits=20_000, target_errors=None)
        assert a.errors == b.errors and a.bits == b.bits

    def test_seed_changes_results(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=128)
        a = sim.measure(decoder_k3, 2.0, max_bits=20_000, seed=1)
        b = sim.measure(decoder_k3, 2.0, max_bits=20_000, seed=2)
        assert (a.errors, a.bits) != (b.errors, b.bits) or a.errors == 0

    def test_early_termination(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=128, frames_per_batch=4)
        point = sim.measure(decoder_k3, -2.0, max_bits=500_000, target_errors=50)
        assert point.errors >= 50
        assert point.bits < 500_000

    def test_runs_to_max_bits_at_high_snr(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=128, frames_per_batch=4)
        point = sim.measure(decoder_k3, 9.0, max_bits=4_096, target_errors=10_000)
        assert point.bits >= 4_096

    def test_ber_decreases_with_snr(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=256)
        sweep = sim.sweep(
            decoder_k3, [-1.0, 1.0, 3.0], max_bits=40_000, target_errors=300
        )
        bers = sweep.ber
        assert bers[0] > bers[1] > bers[2]

    def test_coded_beats_uncoded_at_moderate_snr(self, encoder_k5, trellis_k5):
        from repro.viterbi import AWGNChannel, AdaptiveQuantizer

        decoder = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        sim = BERSimulator(encoder_k5, frame_length=256)
        point = sim.measure(decoder, 2.0, max_bits=40_000, target_errors=200)
        assert point.ber < AWGNChannel(2.0).uncoded_ber()

    def test_rejects_tiny_frames(self, encoder_k3):
        with pytest.raises(ConfigurationError):
            BERSimulator(encoder_k3, frame_length=4)

    def test_rejects_max_bits_below_frame(self, encoder_k3, decoder_k3):
        sim = BERSimulator(encoder_k3, frame_length=128)
        with pytest.raises(ConfigurationError):
            sim.measure(decoder_k3, 2.0, max_bits=64)


class TestSweep:
    def test_at_picks_nearest(self):
        sweep = BERSweep(
            label="x",
            points=[
                BERPoint(0.0, 100, 10),
                BERPoint(2.0, 100, 5),
            ],
        )
        assert sweep.at(1.8).es_n0_db == 2.0

    def test_at_empty_raises(self):
        with pytest.raises(ConfigurationError):
            BERSweep(label="x").at(1.0)

    def test_improvement_over(self):
        base = BERSweep("b", [BERPoint(0.0, 1000, 100)])
        better = BERSweep("i", [BERPoint(0.0, 1000, 36)])
        assert better.improvement_over(base) == pytest.approx(64.0)
