"""Tests for the multiresolution search and the baselines."""

from __future__ import annotations

import math
from typing import Dict

import pytest

from repro.core import (
    Constraint,
    ContinuousParameter,
    DesignGoal,
    DesignSpace,
    DiscreteParameter,
    ExhaustiveSearch,
    FunctionEvaluator,
    MetacoreSearch,
    Objective,
    RandomSearch,
    SearchConfig,
    SimulatedAnnealing,
)
from repro.errors import DesignSpaceError, InfeasibleSpecError


def _space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("a", tuple(range(0, 21))),
            DiscreteParameter("b", tuple(range(0, 21))),
        ]
    )


def _bowl_evaluator(optimum=(13, 7), fidelity_noise=0.0) -> FunctionEvaluator:
    """Smooth convex objective with a known optimum."""

    def func(point, fidelity) -> Dict[str, float]:
        a, b = float(point["a"]), float(point["b"])
        value = (a - optimum[0]) ** 2 + (b - optimum[1]) ** 2
        return {"cost": value + fidelity_noise / (fidelity + 1)}

    return FunctionEvaluator(func, max_fidelity=2)


def _goal() -> DesignGoal:
    return DesignGoal(objectives=[Objective("cost")])


class TestMetacoreSearch:
    def test_finds_optimum_of_smooth_bowl(self):
        search = MetacoreSearch(
            _space(), _goal(), _bowl_evaluator(),
            SearchConfig(max_resolution=4, refine_top_k=3),
        )
        result = search.run()
        assert result.feasible
        point = result.best_point
        assert abs(point["a"] - 13) <= 1 and abs(point["b"] - 7) <= 1

    def test_uses_fewer_evaluations_than_exhaustive(self):
        search = MetacoreSearch(
            _space(), _goal(), _bowl_evaluator(),
            SearchConfig(max_resolution=4, refine_top_k=3),
        )
        result = search.run()
        assert result.log.n_evaluations < 21 * 21 / 2

    def test_fidelity_grows_with_depth(self):
        search = MetacoreSearch(
            _space(), _goal(), _bowl_evaluator(),
            SearchConfig(max_resolution=3, refine_top_k=2),
        )
        result = search.run()
        by_fidelity = result.log.by_fidelity()
        assert 0 in by_fidelity
        assert max(by_fidelity) == 2  # evaluator's max fidelity

    def test_respects_constraints(self):
        def func(point, fidelity):
            return {
                "cost": float(point["a"]),
                "limit": float(point["b"]),
            }

        goal = DesignGoal(
            objectives=[Objective("cost")],
            constraints=[Constraint("limit", lower=15.0)],
        )
        search = MetacoreSearch(
            _space(), goal, FunctionEvaluator(func, 0),
            SearchConfig(max_resolution=3),
        )
        result = search.run()
        assert result.feasible
        assert result.best_point["b"] >= 15

    def test_infeasible_reported(self):
        def func(point, fidelity):
            return {"cost": 1.0, "limit": 0.0}

        goal = DesignGoal(
            objectives=[Objective("cost")],
            constraints=[Constraint("limit", lower=1.0)],
        )
        search = MetacoreSearch(
            _space(), goal, FunctionEvaluator(func, 0), SearchConfig()
        )
        result = search.run()
        assert not result.feasible
        with pytest.raises(InfeasibleSpecError):
            result.require_feasible()

    def test_normalizer_applied(self):
        seen = []

        def func(point, fidelity):
            seen.append(dict(point))
            return {"cost": float(point["a"])}

        def normalizer(point):
            point = dict(point)
            point["b"] = 0
            return point

        search = MetacoreSearch(
            _space(), _goal(), FunctionEvaluator(func, 0),
            SearchConfig(max_resolution=1), normalizer=normalizer,
        )
        search.run()
        assert all(p["b"] == 0 for p in seen)

    def test_summary_readable(self):
        search = MetacoreSearch(
            _space(), _goal(), _bowl_evaluator(), SearchConfig(max_resolution=1)
        )
        text = search.run().summary()
        assert "evaluations" in text and "feasible" in text

    def test_continuous_dimension_search(self):
        space = DesignSpace(
            [
                ContinuousParameter("x", 0.0, 10.0),
                DiscreteParameter("d", (0, 1)),
            ]
        )

        def func(point, fidelity):
            return {"cost": (float(point["x"]) - 7.3) ** 2 + point["d"]}

        search = MetacoreSearch(
            space, _goal(), FunctionEvaluator(func, 0),
            SearchConfig(max_resolution=5, refine_top_k=2),
        )
        result = search.run()
        assert abs(result.best_point["x"] - 7.3) < 0.8
        assert result.best_point["d"] == 0


class TestBaselines:
    def test_exhaustive_finds_exact_optimum(self):
        result = ExhaustiveSearch(_space(), _goal(), _bowl_evaluator()).run()
        assert result.best_point == {"a": 13, "b": 7}
        assert result.log.n_evaluations == 21 * 21

    def test_exhaustive_refuses_huge_space(self):
        space = DesignSpace(
            [DiscreteParameter(f"p{i}", tuple(range(100))) for i in range(4)]
        )
        with pytest.raises(DesignSpaceError):
            ExhaustiveSearch(space, _goal(), _bowl_evaluator()).run(
                max_points=1000
            )

    def test_random_search_improves_with_budget(self):
        small = RandomSearch(_space(), _goal(), _bowl_evaluator()).run(
            n_samples=3, seed=1
        )
        large = RandomSearch(_space(), _goal(), _bowl_evaluator()).run(
            n_samples=200, seed=1
        )
        assert (
            large.best_metrics["cost"] <= small.best_metrics["cost"]
        )

    def test_random_search_reproducible(self):
        a = RandomSearch(_space(), _goal(), _bowl_evaluator()).run(50, seed=3)
        b = RandomSearch(_space(), _goal(), _bowl_evaluator()).run(50, seed=3)
        assert a.best_point == b.best_point

    def test_annealing_approaches_optimum(self):
        result = SimulatedAnnealing(_space(), _goal(), _bowl_evaluator()).run(
            n_steps=400, seed=5
        )
        point = result.best_point
        assert (point["a"] - 13) ** 2 + (point["b"] - 7) ** 2 <= 16

    def test_methods_labelled(self):
        assert ExhaustiveSearch(_space(), _goal(), _bowl_evaluator()).run().method == "exhaustive"
        assert RandomSearch(_space(), _goal(), _bowl_evaluator()).run(5).method == "random"
