"""Tests for the Viterbi MetaCore (design space, evaluator, search)."""

from __future__ import annotations

import math

import pytest

from repro.core import BERThresholdCurve, SearchConfig
from repro.errors import ConfigurationError
from repro.viterbi import (
    MultiresolutionViterbiDecoder,
    ViterbiDecoder,
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    build_decoder,
    describe_point,
    instance_params,
    normalize_viterbi_point,
    traceback_depth,
    viterbi_design_space,
)


def _point(**overrides):
    point = {
        "K": 5, "L_mult": 5, "G": "standard", "R1": 1,
        "R2": 3, "Q": "adaptive", "N": 1, "M": 4,
    }
    point.update(overrides)
    return point


class TestDesignSpace:
    def test_eight_dimensions(self):
        space = viterbi_design_space()
        assert space.dimensions == 8
        assert set(space.names) == {"K", "L_mult", "G", "R1", "R2", "Q", "N", "M"}

    def test_fixed_parameters_pin_values(self):
        space = viterbi_design_space(fixed={"K": 7, "N": 1})
        assert space["K"].values == (7,)
        assert space["N"].values == (1,)

    def test_fixed_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            viterbi_design_space(fixed={"Z": 1})

    def test_fixed_rejects_invalid_value(self):
        with pytest.raises(Exception):
            viterbi_design_space(fixed={"K": 12})

    def test_space_is_large(self):
        """The paper's point: too many instances to enumerate."""
        assert viterbi_design_space().size() >= 7 * 5 * 3 * 4 * 3 * 4 * 8


class TestNormalization:
    def test_hard_forces_one_bit_pure(self):
        point = normalize_viterbi_point(_point(Q="hard", R1=3, M=8))
        assert point["R1"] == 1
        assert point["M"] == 0

    def test_m_clamped_to_states(self):
        point = normalize_viterbi_point(_point(K=3, M=64))
        assert point["M"] == 4

    def test_pure_decoding_canonical_r2_n(self):
        a = normalize_viterbi_point(_point(M=0, R2=3, N=2))
        b = normalize_viterbi_point(_point(M=0, R2=5, N=4))
        assert a == b

    def test_pure_one_bit_is_hard(self):
        point = normalize_viterbi_point(_point(M=0, R1=1, Q="adaptive"))
        assert point["Q"] == "hard"

    def test_r2_bumped_above_r1(self):
        point = normalize_viterbi_point(_point(R1=3, R2=2, M=4))
        assert point["R2"] == 4

    def test_n_clamped_to_m(self):
        point = normalize_viterbi_point(_point(M=2, N=4))
        assert point["N"] == 2

    def test_multires_hard_method_becomes_adaptive(self):
        point = normalize_viterbi_point(_point(Q="hard", R1=1, M=0))
        assert point["Q"] == "hard"
        point = dict(_point(M=4))
        point["Q"] = "hard"
        # Q=hard with M>0 is normalized to pure hard (R1=1, M=0).
        normalized = normalize_viterbi_point(point)
        assert normalized["M"] == 0

    def test_idempotent(self):
        once = normalize_viterbi_point(_point(K=3, M=64, R1=3, R2=2))
        twice = normalize_viterbi_point(once)
        assert once == twice


class TestBuilders:
    def test_traceback_depth(self):
        assert traceback_depth(_point(K=7, L_mult=5)) == 35

    def test_build_pure_decoder(self):
        decoder = build_decoder(_point(M=0, R1=3))
        assert isinstance(decoder, ViterbiDecoder)
        assert not isinstance(decoder, MultiresolutionViterbiDecoder)
        assert decoder.quantizer.bits == 3

    def test_build_multires_decoder(self):
        decoder = build_decoder(_point(M=8))
        assert isinstance(decoder, MultiresolutionViterbiDecoder)
        assert decoder.multires_paths == 8
        assert decoder.high_quantizer.bits == 3

    def test_instance_params_consistent(self):
        params = instance_params(_point(K=7, L_mult=7, M=4))
        assert params.constraint_length == 7
        assert params.traceback_depth == 49
        assert params.multires_paths == 4

    def test_instance_params_pure(self):
        params = instance_params(_point(M=0, R1=2))
        assert params.multires_paths is None
        assert params.normalization_count == 0

    def test_describe_point_table3_format(self):
        text = describe_point(_point(K=7, L_mult=7, M=0, R1=3))
        assert "K=7" in text and "171,133" in text and "M=NA" in text

    def test_describe_multires(self):
        text = describe_point(_point(M=8, N=1))
        assert "M=8" in text and "R2=3" in text


class TestEvaluator:
    @pytest.fixture()
    def spec(self):
        return ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(3.0, 1e-3),
        )

    def test_analytic_fidelity_metrics(self, spec):
        evaluator = ViterbiMetacoreEvaluator(spec)
        metrics = evaluator.evaluate(_point(), fidelity=0)
        assert metrics["hw_feasible"] == 1.0
        assert metrics["area_mm2"] > 0
        assert 0 < metrics["ber"] <= 0.5
        assert "ber_errors" not in metrics

    def test_monte_carlo_fidelity_has_counts(self, spec):
        evaluator = ViterbiMetacoreEvaluator(spec)
        metrics = evaluator.evaluate(_point(K=3), fidelity=1)
        assert metrics["ber_bits"] > 0
        assert metrics["ber_threshold"] == 1e-3

    def test_throughput_met(self, spec):
        evaluator = ViterbiMetacoreEvaluator(spec)
        metrics = evaluator.evaluate(_point(), fidelity=0)
        assert metrics["throughput_bps"] >= spec.throughput_bps

    def test_infeasible_hardware(self):
        spec = ViterbiSpec(
            throughput_bps=1e9,
            ber_curve=BERThresholdCurve.single(3.0, 1e-3),
        )
        evaluator = ViterbiMetacoreEvaluator(spec)
        metrics = evaluator.evaluate(_point(K=7), fidelity=0)
        assert math.isinf(metrics["area_mm2"])
        assert metrics["hw_feasible"] == 0.0

    def test_fidelity_bounds(self, spec):
        evaluator = ViterbiMetacoreEvaluator(spec)
        with pytest.raises(ConfigurationError):
            evaluator.evaluate(_point(), fidelity=9)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ViterbiSpec(
                throughput_bps=0.0,
                ber_curve=BERThresholdCurve.single(3.0, 1e-3),
            )


class TestSearchIntegration:
    def test_easy_spec_finds_small_feasible_decoder(self):
        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(4.0, 2e-2),
        )
        metacore = ViterbiMetaCore(
            spec, fixed={"G": "standard", "N": 1},
            config=SearchConfig(max_resolution=1, refine_top_k=2),
        )
        result = metacore.search()
        assert result.feasible
        # An easy spec should be met by a small constraint length.
        assert result.best_point["K"] <= 5
        assert result.best_metrics["area_mm2"] < 1.5

    def test_impossible_spec_reported_infeasible(self):
        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(3.0, 1e-9),
        )
        metacore = ViterbiMetaCore(
            spec, fixed={"G": "standard", "N": 1},
            config=SearchConfig(max_resolution=1, refine_top_k=2),
        )
        result = metacore.search()
        assert not result.feasible
