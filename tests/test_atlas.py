"""Design-atlas tests: store, frontier, warm starts, recommend, serve.

The load-bearing properties:

- **zero-evaluation recommendation** — a constraint query covered by a
  stored frontier never touches the evaluator (asserted by poisoning
  ``evaluate``), and falls back to a search on a miss;
- **warm >= cold** — a warm-started search is bit-reproducible given
  the same atlas state and never selects a design worse than the cold
  search at the same round budget (the differential guarantee in
  ``MetacoreSearch.run``);
- **store robustness** — corrupt JSONL lines are skipped and counted
  with a single warning, mirroring the persistent evaluation cache.
"""

from __future__ import annotations

import dataclasses
import json
import random
import warnings

import pytest

from repro.atlas import (
    DesignAtlas,
    ParetoFrontier,
    format_atlas_report,
    frontier_objectives,
    goal_signature,
    query_frontier,
    scenario_distance,
    spec_features,
)
from repro.core import BERThresholdCurve, SearchConfig
from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import Constraint, DesignGoal, Objective
from repro.core.pareto import pareto_front
from repro.errors import ConfigurationError
from repro.viterbi import ViterbiMetaCore, ViterbiSpec
from repro.viterbi.metacore import ViterbiMetacoreEvaluator

#: Tiny deterministic scenario: only L_mult/R1/R2/M remain searchable.
FIXED = {"G": "standard", "N": 1, "K": 3, "Q": "hard"}
CONFIG = SearchConfig(max_resolution=1, refine_top_k=1)


def tiny_metacore(tmp_path, max_ber=5e-2, atlas_name="atlas.jsonl"):
    spec = ViterbiSpec(1e6, BERThresholdCurve.single(4.0, max_ber))
    return ViterbiMetaCore(
        spec,
        fixed=dict(FIXED),
        config=CONFIG,
        atlas_path=str(tmp_path / atlas_name),
    )


def toy_goal() -> DesignGoal:
    return DesignGoal(
        objectives=[Objective("area_mm2")],
        constraints=[Constraint("spec_violation", upper=0.0)],
    )


def toy_record(x, area, violation, fidelity=2) -> EvaluationRecord:
    return EvaluationRecord(
        point=(("x", x),),
        fidelity=fidelity,
        metrics={"area_mm2": area, "spec_violation": violation},
    )


class TestStore:
    def test_roundtrip_and_index(self, tmp_path):
        path = tmp_path / "atlas.jsonl"
        goal = toy_goal()
        with DesignAtlas(path) as atlas:
            stats = atlas.ingest(
                "fp1",
                "custom",
                {"f": 1.0},
                goal,
                [
                    toy_record(1, 10.0, 0.0),
                    toy_record(2, 8.0, 0.0),
                    toy_record(3, 9.0, 0.0, fidelity=1),  # inexact
                ],
                max_fidelity=2,
            )
            assert stats == {"ingested": 3, "frontier": 1}
        reopened = DesignAtlas(path)
        assert reopened.n_skipped == 0
        assert len(reopened.replay("fp1")) == 3
        front = reopened.frontier("fp1")
        assert [dict(r.point)["x"] for r in front] == [2]
        info = reopened.scenario_info("fp1")
        assert info["records"] == 3 and info["frontier"] == 1
        index = json.loads(reopened.index_path.read_text())
        assert index["scenarios"]["fp1"]["records"] == 3
        assert "fp1" in format_atlas_report(reopened)

    def test_max_fidelity_wins_dedup(self, tmp_path):
        with DesignAtlas(tmp_path / "a.jsonl") as atlas:
            goal = toy_goal()
            atlas.ingest(
                "fp", "custom", None, goal,
                [toy_record(1, 10.0, 0.0, fidelity=2)], max_fidelity=2,
            )
            stats = atlas.ingest(
                "fp", "custom", None, goal,
                [toy_record(1, 11.0, 0.0, fidelity=1)], max_fidelity=2,
            )
            assert stats["ingested"] == 0  # lower fidelity never replaces
            (record,) = atlas.replay("fp")
            assert record.metrics["area_mm2"] == 10.0

    def test_corrupt_lines_skipped_with_one_warning(self, tmp_path):
        path = tmp_path / "atlas.jsonl"
        with DesignAtlas(path) as atlas:
            atlas.ingest(
                "fp", "custom", None, toy_goal(),
                [toy_record(1, 10.0, 0.0)], max_fidelity=2,
            )
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write('{"schema": 1, "type": "record", "fp": "fp"}\n')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            atlas = DesignAtlas(path)
        assert atlas.n_skipped == 2
        assert len(caught) == 1  # warn once, count the rest silently
        assert "corrupt" in str(caught[0].message)
        # The intact records still load.
        assert len(atlas.replay("fp")) == 1

    def test_schema_mismatch_is_silent(self, tmp_path):
        path = tmp_path / "atlas.jsonl"
        path.write_text('{"schema": 999, "type": "record"}\n')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            atlas = DesignAtlas(path)
        assert atlas.n_skipped == 0 and not caught


class TestFrontier:
    def test_incremental_matches_batch_pareto(self):
        goal = toy_goal()
        axes = frontier_objectives(goal)
        rng = random.Random(7)
        records = [
            toy_record(i, rng.choice([6.0, 8.0, 10.0]), rng.choice([0.0, 0.5]))
            for i in range(30)
        ]
        expected = pareto_front(records, axes)
        for seed in (0, 1, 2):
            shuffled = records[:]
            random.Random(seed).shuffle(shuffled)
            frontier = ParetoFrontier(axes)
            for record in shuffled:
                frontier.add(record)
            assert list(frontier.records) == expected

    def test_constraint_metrics_become_axes(self):
        goal = ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 1e-2)).goal()
        axes = frontier_objectives(goal)
        assert [a.metric for a in axes] == ["area_mm2", "ber_violation"]

    def test_higher_fidelity_replaces_same_point(self):
        axes = frontier_objectives(toy_goal())
        frontier = ParetoFrontier(axes)
        assert frontier.add(toy_record(1, 10.0, 0.0, fidelity=1))
        assert frontier.add(toy_record(1, 12.0, 0.0, fidelity=2))
        assert not frontier.add(toy_record(1, 5.0, 0.0, fidelity=1))
        (record,) = frontier.records
        assert record.fidelity == 2 and record.metrics["area_mm2"] == 12.0


class TestSimilarity:
    def test_near_specs_within_threshold(self):
        a = spec_features(ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2)))
        b = spec_features(ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 4e-2)))
        assert 0 < scenario_distance(a, b) < 0.25

    def test_different_curve_shapes_incomparable(self):
        a = spec_features(ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2)))
        b = spec_features(
            ViterbiSpec(
                1e6,
                BERThresholdCurve(points=((2.0, 1e-2), (4.0, 1e-3))),
            )
        )
        assert scenario_distance(a, b) == float("inf")

    def test_goal_signature_stable(self):
        spec = ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2))
        assert goal_signature(spec.goal()) == goal_signature(spec.goal())


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """A tiny atlas populated by one cold facade search."""
    tmp_path = tmp_path_factory.mktemp("atlas")
    metacore = tiny_metacore(tmp_path)
    cold = metacore.search()
    assert cold.feasible and cold.atlas_replayed == 0
    return tmp_path, metacore, cold


class TestWarmStart:
    def test_warm_rerun_is_bit_reproducible_and_free(self, populated):
        _, metacore, cold = populated
        warm = metacore.search()
        assert warm.atlas_replayed > 0 and warm.atlas_seeds > 0
        assert warm.log.n_evaluations == 0  # fully answered from the library
        assert warm.best_point == cold.best_point
        assert dict(warm.best_metrics) == dict(cold.best_metrics)
        # Same atlas state -> same selection, run after run.
        again = metacore.search()
        assert again.best_point == warm.best_point

    def test_neighbor_scenario_warm_never_worse_than_cold(
        self, populated, tmp_path
    ):
        populated_path, metacore, _ = populated
        spec_b = ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 4e-2))
        cold_b = ViterbiMetaCore(
            spec_b, fixed=dict(FIXED), config=CONFIG
        ).search()
        warm_b = dataclasses.replace(metacore, spec=spec_b).search()
        # The neighbor's frontier seeded the search at the deep level.
        assert warm_b.atlas_seeds > 0
        assert warm_b.atlas_replayed == 0  # different fingerprint
        assert warm_b.atlas_levels_skipped > 0
        goal = spec_b.goal()
        assert warm_b.feasible >= cold_b.feasible
        # Differential guarantee: warm selection never worse than cold.
        assert goal.compare(warm_b.best_metrics, cold_b.best_metrics) <= 0

    def test_search_summary_mentions_atlas(self, populated):
        _, metacore, _ = populated
        warm = metacore.search()
        assert "atlas:" in warm.summary()


class TestRecommend:
    def test_hit_answers_with_zero_evaluations(self, populated, monkeypatch):
        _, metacore, cold = populated

        def poisoned(*args, **kwargs):
            raise AssertionError("recommend hit must not evaluate")

        monkeypatch.setattr(ViterbiMetacoreEvaluator, "evaluate", poisoned)
        recommendation = metacore.recommend()
        assert recommendation.source == "atlas"
        assert recommendation.n_evaluations == 0
        assert recommendation.feasible
        assert recommendation.point == cold.best_point

    def test_unsatisfiable_constraint_reports_infeasible(self, populated):
        _, metacore, _ = populated
        recommendation = metacore.recommend({"area_mm2": 1e-9})
        assert recommendation.source == "search"
        assert not recommendation.feasible

    def test_miss_falls_back_to_search_then_hits(self, tmp_path, monkeypatch):
        metacore = tiny_metacore(tmp_path, atlas_name="fresh.jsonl")
        first = metacore.recommend()
        assert first.source == "search"
        assert first.n_evaluations > 0
        assert first.feasible
        # The fallback search's log was ingested: now it's a library hit.
        monkeypatch.setattr(
            ViterbiMetacoreEvaluator,
            "evaluate",
            lambda *args, **kwargs: pytest.fail("should not evaluate"),
        )
        second = metacore.recommend()
        assert second.source == "atlas" and second.n_evaluations == 0
        assert second.point == first.point

    def test_requires_atlas_path(self):
        metacore = ViterbiMetaCore(
            ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2))
        )
        with pytest.raises(ConfigurationError):
            metacore.recommend()

    def test_query_frontier_is_pure(self):
        goal = toy_goal()
        frontier = [toy_record(1, 10.0, 0.0), toy_record(2, 8.0, 0.0)]
        best = query_frontier(frontier, goal)
        assert dict(best.point)["x"] == 2
        assert query_frontier(frontier, goal, {"area_mm2": 9.0}) is best
        assert query_frontier(frontier, goal, {"area_mm2": 1.0}) is None


class TestSweep:
    def test_portfolio_populates_atlas(self, tmp_path):
        metacore = tiny_metacore(tmp_path, atlas_name="sweep.jsonl")
        specs = [
            ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2)),
            ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 4e-2)),
        ]
        outcome = metacore.sweep(specs, labels=["a", "b"])
        assert len(outcome.rows) == 2
        assert all(row.feasible for row in outcome.rows)
        assert outcome.atlas_stats["scenarios"] == 2
        # The second scenario warm-started from the first's frontier.
        assert outcome.rows[1].result.atlas_seeds > 0
        table = outcome.format_table()
        assert "atlas-warm" in table and "2 scenarios" in table


class TestServeRecommend:
    def test_recommend_op_and_status_counters(self, populated):
        tmp_path, metacore, cold = populated
        from repro.serve import spec_to_payload

        with metacore.serve() as handle:
            with handle.client() as client:
                result = client.recommend(
                    spec=spec_to_payload(metacore.spec),
                    config={"max_resolution": 1, "refine_top_k": 1},
                    fixed=dict(FIXED),
                )
                assert result["source"] == "atlas"
                assert result["n_evaluations"] == 0
                assert result["feasible"]
                assert result["point"] == cold.best_point
                status = client.status()
                assert status["recommends"] == 1
                assert status["atlas"]["hits"] == 1
                assert status["atlas"]["misses"] == 0
                assert status["atlas"]["scenarios"] >= 1

    def test_recommend_without_atlas_is_an_error(self):
        from repro.serve import (
            ServeHandle,
            ServeRequestError,
            ServiceConfig,
            spec_to_payload,
        )

        spec = ViterbiSpec(1e6, BERThresholdCurve.single(4.0, 5e-2))
        with ServeHandle(ServiceConfig(linger_s=0.002)).start() as handle:
            with handle.client() as client:
                with pytest.raises(ServeRequestError):
                    client.recommend(spec=spec_to_payload(spec))


class TestCompact:
    def _populate(self, path, n=20):
        goal = toy_goal()
        with DesignAtlas(path) as atlas:
            # Same points first at fidelity 1, then upgraded to
            # fidelity 2: the log keeps both generations, the
            # in-memory view only the upgrade — exactly the bloat
            # compaction exists to drop.
            for fidelity in (1, 2):
                atlas.ingest(
                    "fp1",
                    "custom",
                    {"f": 1.0},
                    goal,
                    [
                        toy_record(x, 10.0 + x, 0.0, fidelity=fidelity)
                        for x in range(n)
                    ],
                    max_fidelity=2,
                )
            atlas.ingest(
                "fp2",
                "custom",
                {"f": 2.0},
                goal,
                [toy_record(99, 1.0, 0.0)],
                max_fidelity=2,
            )

    def test_dedup_rewrite_preserves_view(self, tmp_path):
        from repro.atlas import compact_atlas

        path = tmp_path / "atlas.jsonl"
        self._populate(path)
        before = DesignAtlas(path)
        replay_before = {
            fp: [canonical_entry(r) for r in before.replay(fp)]
            for fp in ("fp1", "fp2")
        }
        before.close()
        bytes_before = path.stat().st_size

        report = compact_atlas(path)

        assert report["records_before"] == 41  # two generations + 1
        assert report["records_after"] == 21  # deduped view
        assert report["bytes_reclaimed"] > 0
        assert path.stat().st_size < bytes_before
        after = DesignAtlas(path)
        assert after.n_skipped == 0
        # The rewrite canonicalises record order (sorted by point);
        # replay feeds a keyed cache, so only the set must survive.
        for fp in ("fp1", "fp2"):
            assert sorted(
                canonical_entry(r) for r in after.replay(fp)
            ) == sorted(replay_before[fp])
        assert all(r.fidelity == 2 for r in after.replay("fp1"))

    def test_frontier_only_drops_dominated(self, tmp_path):
        from repro.atlas import compact_atlas

        path = tmp_path / "atlas.jsonl"
        self._populate(path)
        report = compact_atlas(path, frontier_only=True)
        assert report["frontier_only"] is True
        assert report["records_after"] == 2  # one per scenario
        atlas = DesignAtlas(path)
        front = atlas.frontier("fp1")
        assert [dict(r.point)["x"] for r in front] == [0]
        assert len(atlas.replay("fp1")) == 1

    def test_stale_handle_survives_compaction(self, tmp_path):
        from repro.atlas import compact_atlas

        path = tmp_path / "atlas.jsonl"
        self._populate(path)
        stale = DesignAtlas(path)  # opened before the rewrite
        assert len(stale.replay("fp1")) == 20
        compact_atlas(path, frontier_only=True)
        # The rewrite swaps the inode under the stale handle.  Its
        # refresh re-merges from the new file without crashing; the
        # already-loaded records stay visible (the in-memory view is
        # a union — compaction reclaims disk, not reader state).
        stale.refresh()
        assert len(stale.replay("fp1")) == 20
        # ...and the stale handle can still append afterwards, to the
        # NEW inode, where fresh readers find it.
        stale.ingest(
            "fp3",
            "custom",
            {"f": 3.0},
            toy_goal(),
            [toy_record(7, 5.0, 0.0)],
            max_fidelity=2,
        )
        stale.close()
        fresh = DesignAtlas(path)
        assert len(fresh.replay("fp3")) == 1
        assert len(fresh.replay("fp1")) == 1  # compacted view

    def test_cli_reports_and_rejects_missing(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "atlas.jsonl"
        self._populate(path)
        assert main(["atlas-compact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compacted design atlas" in out
        assert "41 -> 21" in out
        assert main(["atlas-compact", str(tmp_path / "none.jsonl")]) == 1
        assert "cannot compact atlas" in capsys.readouterr().err


def canonical_entry(record):
    return (
        tuple(sorted((str(k), v) for k, v in record.point)),
        record.fidelity,
        json.dumps(dict(record.metrics), sort_keys=True),
    )
