"""Tests for the classic Viterbi decoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.viterbi import (
    AWGNChannel,
    AdaptiveQuantizer,
    BranchMetricTable,
    ConvolutionalEncoder,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
    bpsk_modulate,
)


def _noiseless(encoder, bits):
    return bpsk_modulate(encoder.encode(bits))


class TestBranchMetrics:
    def test_hard_metric_is_hamming_distance(self, trellis_k3):
        table = BranchMetricTable(trellis_k3, HardQuantizer())
        # Received levels (1, 1) == symbols (0, 0).
        metrics = table.compute(np.array([1, 1]))
        for state in range(4):
            for slot in range(2):
                expected = int(trellis_k3.branch_symbols[state, slot].sum())
                assert metrics[state, slot] == expected

    def test_soft_metric_range(self, trellis_k5):
        table = BranchMetricTable(trellis_k5, AdaptiveQuantizer(3))
        assert table.max_branch_metric == 14
        metrics = table.compute(np.array([0, 7]))
        assert metrics.min() >= 0
        assert metrics.max() <= 14

    def test_compute_for_states_matches_full(self, trellis_k5):
        table = BranchMetricTable(trellis_k5, AdaptiveQuantizer(3))
        levels = np.array([[3, 5], [1, 6]])
        states = np.array([[0, 7, 11], [2, 3, 15]])
        subset = table.compute_for_states(levels, states)
        full = table.compute(levels)
        for frame in range(2):
            for j, state in enumerate(states[frame]):
                assert np.array_equal(subset[frame, j], full[frame, state])


class TestDecoder:
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_noiseless_round_trip(self, k, rng):
        encoder = ConvolutionalEncoder(k)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), traceback_depth=5 * k
        )
        bits = rng.integers(0, 2, size=300, dtype=np.int8)
        decoded = decoder.decode(_noiseless(encoder, bits), sigma=0.1)
        assert np.array_equal(decoded, bits)

    def test_noiseless_round_trip_soft(self, encoder_k5, trellis_k5, rng):
        decoder = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        bits = rng.integers(0, 2, size=200, dtype=np.int8)
        decoded = decoder.decode(_noiseless(encoder_k5, bits), sigma=0.4)
        assert np.array_equal(decoded, bits)

    def test_batch_matches_per_frame(self, encoder_k3, trellis_k3, rng):
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 15)
        bits = rng.integers(0, 2, size=(4, 120), dtype=np.int8)
        received = _noiseless(encoder_k3, bits) + rng.normal(
            0, 0.5, size=(4, 120, 2)
        )
        batch = decoder.decode(received, sigma=0.5)
        for i in range(4):
            single = decoder.decode(received[i], sigma=0.5)
            assert np.array_equal(batch[i], single)

    def test_corrects_isolated_symbol_errors(self, encoder_k5, trellis_k5, rng):
        decoder = ViterbiDecoder(trellis_k5, HardQuantizer(), 30)
        bits = rng.integers(0, 2, size=200, dtype=np.int8)
        received = _noiseless(encoder_k5, bits)
        # Flip a few well-separated channel symbols.
        for position in (20, 80, 150):
            received[position, 0] *= -1.0
        decoded = decoder.decode(received, sigma=0.1)
        assert np.array_equal(decoded, bits)

    def test_short_traceback_hurts_ber(self, encoder_k5, trellis_k5):
        """The paper's L observation: deep trace-back decodes better."""
        channel = AWGNChannel(1.0)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(24, 256), dtype=np.int8)
        received = channel.transmit(encoder_k5.encode(bits), rng)
        shallow = ViterbiDecoder(trellis_k5, HardQuantizer(), 5)
        deep = ViterbiDecoder(trellis_k5, HardQuantizer(), 35)
        errors_shallow = np.count_nonzero(
            shallow.decode(received, channel.sigma) != bits
        )
        errors_deep = np.count_nonzero(
            deep.decode(received, channel.sigma) != bits
        )
        assert errors_deep < errors_shallow

    def test_frame_shorter_than_traceback(self, encoder_k3, trellis_k3, rng):
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 64)
        bits = rng.integers(0, 2, size=20, dtype=np.int8)
        decoded = decoder.decode(_noiseless(encoder_k3, bits), sigma=0.1)
        assert np.array_equal(decoded, bits)

    def test_rejects_bad_shapes(self, trellis_k3):
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 10)
        with pytest.raises(ConfigurationError):
            decoder.decode(np.zeros((10, 3)))  # 3 symbols for a rate-1/2 code

    def test_rejects_bad_depth(self, trellis_k3):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(trellis_k3, HardQuantizer(), 0)

    def test_describe(self, trellis_k5):
        decoder = ViterbiDecoder(trellis_k5, AdaptiveQuantizer(3), 25)
        assert "K=5" in decoder.describe()
        assert "L=25" in decoder.describe()

    @given(st.integers(2, 7), st.integers(30, 120))
    @settings(max_examples=15, deadline=None)
    def test_noiseless_exact_any_code(self, k, length):
        """Property: with no noise, decoding inverts encoding exactly."""
        try:
            encoder = ConvolutionalEncoder(k)
        except Exception:
            return
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 5 * k
        )
        rng = np.random.default_rng(k * 31 + length)
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        decoded = decoder.decode(_noiseless(encoder, bits), sigma=0.1)
        assert np.array_equal(decoded, bits)
