"""Parallel evaluation, persistent caching, and shared-table memoization."""

from __future__ import annotations

import hashlib
import threading
from typing import Dict

import pytest

from repro.core.evalcache import PersistentEvalCache, evaluator_fingerprint
from repro.core.evaluation import CachingEvaluator, FunctionEvaluator
from repro.core.objectives import DesignGoal, Objective
from repro.core.parallel import ParallelEvaluator
from repro.core.parameters import (
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Point,
    frozen_point,
)
from repro.core.search import MetacoreSearch, SearchConfig
from repro.viterbi.metrics import shared_metric_table
from repro.viterbi.quantize import AdaptiveQuantizer, FixedQuantizer, HardQuantizer
from repro.viterbi.trellis import trellis_for


class DeterministicEvaluator:
    """Picklable evaluator with metrics a pure function of the point."""

    def __init__(self, version: int = 1) -> None:
        self.max_fidelity = 2
        self.version = version

    def fingerprint(self) -> str:
        return f"deterministic:v{self.version}"

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        digest = hashlib.md5(
            repr(sorted(point.items())).encode("utf-8")
        ).digest()
        return {
            "area_mm2": 1.0 + int.from_bytes(digest[:4], "big") / 2**32,
            "fidelity_seen": float(fidelity),
        }


def small_space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter("a", (1, 2, 3, 4, 5), Correlation.MONOTONIC),
            DiscreteParameter("b", (10, 20, 30, 40), Correlation.MONOTONIC),
        ]
    )


def run_search(evaluator, store=None):
    return MetacoreSearch(
        small_space(),
        DesignGoal(objectives=[Objective("area_mm2")]),
        evaluator,
        config=SearchConfig(max_resolution=2, refine_top_k=2),
        store=store,
    ).run()


def result_signature(result):
    """Everything a SearchResult asserts, minus timing."""
    return (
        result.best_point,
        result.best_metrics,
        result.feasible,
        result.regions_explored,
        result.cache_hits,
        result.cache_misses,
        result.persistent_hits,
        [(r.point, r.fidelity, dict(r.metrics)) for r in result.log.records],
    )


class TestDeterminism:
    def test_parallel_search_is_bit_identical_to_serial(self):
        serial = run_search(DeterministicEvaluator())
        with ParallelEvaluator(DeterministicEvaluator(), workers=3) as parallel:
            assert parallel.parallel_enabled
            par = run_search(parallel)
        assert result_signature(par) == result_signature(serial)

    def test_parallel_results_preserve_request_order(self):
        points = [{"a": a, "b": b} for a in range(5) for b in range(4)]
        inner = DeterministicEvaluator()
        with ParallelEvaluator(DeterministicEvaluator(), workers=3) as parallel:
            batched = parallel.evaluate_many(points, 1)
        assert batched == [inner.evaluate(p, 1) for p in points]

    def test_workers_report_their_pid(self):
        points = [{"a": a, "b": 0} for a in range(8)]
        with ParallelEvaluator(DeterministicEvaluator(), workers=2) as parallel:
            timed = parallel.evaluate_many_timed(points, 0)
        assert all(t.worker is not None for t in timed)


class TestSerialFallback:
    def test_single_worker_never_spawns_a_pool(self):
        parallel = ParallelEvaluator(DeterministicEvaluator(), workers=1)
        assert not parallel.parallel_enabled
        points = [{"a": 1, "b": 10}, {"a": 2, "b": 20}]
        timed = parallel.evaluate_many_timed(points, 0)
        assert parallel._executor is None
        assert all(t.worker is None for t in timed)

    def test_unpicklable_evaluator_degrades_to_serial(self):
        state = {"calls": 0}

        def cost(point: Point, fidelity: int) -> Dict[str, float]:
            state["calls"] += 1  # closure over local state: unpicklable
            return {"area_mm2": float(point["a"])}

        parallel = ParallelEvaluator(FunctionEvaluator(cost), workers=4)
        assert not parallel.parallel_enabled
        results = parallel.evaluate_many([{"a": 1}, {"a": 2}], 0)
        assert [r["area_mm2"] for r in results] == [1.0, 2.0]
        assert state["calls"] == 2


class TestPersistentCache:
    def test_warm_rerun_reports_persistent_hits(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with PersistentEvalCache(path) as store:
            cold = run_search(DeterministicEvaluator(), store=store)
        assert cold.persistent_hits == 0
        assert cold.cache_misses > 0
        with PersistentEvalCache(path) as store:
            assert store.n_loaded > 0
            warm = run_search(DeterministicEvaluator(), store=store)
        assert warm.persistent_hits > 0
        assert warm.cache_misses < cold.cache_misses
        assert warm.best_point == cold.best_point
        assert warm.best_metrics == cold.best_metrics

    def test_fingerprint_change_invalidates_cache(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with PersistentEvalCache(path) as store:
            run_search(DeterministicEvaluator(version=1), store=store)
        with PersistentEvalCache(path) as store:
            rerun = run_search(DeterministicEvaluator(version=2), store=store)
        assert rerun.persistent_hits == 0
        assert rerun.cache_misses > 0

    def test_higher_fidelity_answers_lower_requests(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c.jsonl")
        key = frozen_point({"a": 1})
        store.put("fp", key, 2, {"m": 1.0})
        assert store.get("fp", key, 1) == (2, {"m": 1.0})
        assert store.get("fp", key, 2) == (2, {"m": 1.0})
        # Lower-fidelity writes never downgrade the stored entry.
        assert not store.put("fp", key, 1, {"m": 9.0})
        assert store.get("fp", key, 2) == (2, {"m": 1.0})

    def test_survives_torn_tail_line(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = PersistentEvalCache(path)
        store.put("fp", frozen_point({"a": 1}), 0, {"m": 1.0})
        store.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema":1,"fp":"fp","poi')  # interrupted write
        reloaded = PersistentEvalCache(path)
        assert reloaded.n_loaded == 1

    def test_fingerprint_fallback_for_plain_evaluators(self):
        evaluator = FunctionEvaluator(lambda p, f: {"m": 0.0}, max_fidelity=3)
        fingerprint = evaluator_fingerprint(evaluator)
        assert "FunctionEvaluator" in fingerprint
        assert "max_fidelity=3" in fingerprint


class TestThreadSafety:
    def test_concurrent_requests_keep_counters_consistent(self):
        calls = []

        def cost(point: Point, fidelity: int) -> Dict[str, float]:
            calls.append(1)
            return {"m": float(point["i"])}

        caching = CachingEvaluator(FunctionEvaluator(cost))
        errors = []

        def hammer(offset: int) -> None:
            try:
                for i in range(50):
                    caching.evaluate({"i": (offset + i) % 20}, 0)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert caching.cache_hits + caching.cache_misses == 200
        assert caching.cache_misses == len(calls) == 20
        assert caching.log.n_evaluations == 20


class TestSharedConstruction:
    def test_trellis_is_memoized_per_code(self):
        first = trellis_for(5, (0o23, 0o35))
        second = trellis_for(5, [0o23, 0o35])
        assert first is second
        assert trellis_for(6, (0o53, 0o75)) is not first

    def test_metric_tables_shared_per_code_and_quantizer_spec(self):
        trellis = trellis_for(3, (0o5, 0o7))
        a = shared_metric_table(trellis, FixedQuantizer(3, 0.35))
        b = shared_metric_table(trellis, FixedQuantizer(3, 0.35))
        assert a is b
        assert shared_metric_table(trellis, FixedQuantizer(3, 0.5)) is not a
        assert shared_metric_table(trellis, AdaptiveQuantizer(3)) is not a
        assert shared_metric_table(trellis, HardQuantizer()) is not a

    def test_unknown_quantizer_subclass_gets_fresh_table(self):
        class OddQuantizer(FixedQuantizer):
            def cache_key(self):
                return None

        trellis = trellis_for(3, (0o5, 0o7))
        a = shared_metric_table(trellis, OddQuantizer(3))
        b = shared_metric_table(trellis, OddQuantizer(3))
        assert a is not b


class TestBatchSemantics:
    def test_duplicate_points_in_one_batch_compute_once(self):
        calls = []

        def cost(point: Point, fidelity: int) -> Dict[str, float]:
            calls.append(dict(point))
            return {"m": float(point["a"])}

        caching = CachingEvaluator(FunctionEvaluator(cost))
        results = caching.evaluate_many(
            [{"a": 1}, {"a": 2}, {"a": 1}, {"a": 2}], 0
        )
        assert [r["m"] for r in results] == [1.0, 2.0, 1.0, 2.0]
        assert len(calls) == 2
        assert caching.cache_hits == 2
        assert caching.cache_misses == 2

    def test_wall_time_is_tracked_separately_from_cpu(self):
        caching = CachingEvaluator(
            FunctionEvaluator(lambda p, f: {"m": 0.0})
        )
        caching.evaluate_many([{"a": 1}, {"a": 2}], 0)
        assert caching.log.wall_time_s >= 0.0
        assert caching.log.cpu_time_s == caching.log.total_time_s
