"""Tests for the union-bound BER estimator and distance spectra."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.viterbi import (
    ConvolutionalEncoder,
    distance_spectrum,
    estimate_ber,
    pairwise_error_hard,
    pairwise_error_multires,
    pairwise_error_soft,
)
from repro.viterbi.bounds import truncation_penalty


class TestDistanceSpectrum:
    def test_k3_matches_published_spectrum(self):
        """(7,5): T(D,N) derivative gives b_d = (d-4) 2^(d-5)."""
        spectrum = distance_spectrum(ConvolutionalEncoder(3))
        assert spectrum.free_distance == 5
        weights = spectrum.as_dict()
        for d in range(5, 11):
            assert weights[d] == (d - 4) * 2 ** (d - 5)

    def test_k5_matches_published_spectrum(self):
        """(23,35) published input-weight spectrum (Proakis Table 8.2)."""
        spectrum = distance_spectrum(ConvolutionalEncoder(5))
        assert spectrum.free_distance == 7
        weights = spectrum.as_dict()
        assert weights[7] == 4
        assert weights[8] == 12
        assert weights[9] == 20
        assert weights[10] == 72

    def test_k7_matches_published_spectrum(self):
        """(171,133): dfree=10, b10=36, b12=211, b14=1404."""
        spectrum = distance_spectrum(ConvolutionalEncoder(7))
        assert spectrum.free_distance == 10
        weights = spectrum.as_dict()
        assert weights[10] == 36
        assert weights[12] == 211
        assert weights[14] == 1404
        # Odd distances are absent for this code.
        assert weights.get(11, 0) == 0

    def test_longer_constraint_larger_dfree(self):
        dfrees = [
            distance_spectrum(ConvolutionalEncoder(k)).free_distance
            for k in (3, 5, 7, 9)
        ]
        assert dfrees == sorted(dfrees)
        assert dfrees[0] < dfrees[-1]


class TestPairwiseError:
    def test_soft_decreases_with_distance(self):
        p = [pairwise_error_soft(d, 2.0, 3) for d in (5, 7, 10)]
        assert p[0] > p[1] > p[2]

    def test_hard_worse_than_soft(self):
        for d in (5, 7, 10):
            assert pairwise_error_hard(d, 2.0) > pairwise_error_soft(d, 2.0, 3)

    def test_hard_even_distance_half_term(self):
        # For even d the tie case counts half.
        p_even = pairwise_error_hard(6, 100.0)
        assert p_even >= 0.0

    def test_multires_between_hard_and_soft(self):
        hard = pairwise_error_hard(7, 2.0)
        soft = pairwise_error_soft(7, 2.0, 3)
        for m in (1, 4, 8):
            mid = pairwise_error_multires(7, 2.0, 3, m, 16)
            assert soft <= mid <= hard

    def test_multires_monotone_in_m(self):
        values = [
            pairwise_error_multires(7, 2.0, 3, m, 16) for m in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values, reverse=True)

    def test_multires_full_paths_equals_soft(self):
        full = pairwise_error_multires(7, 2.0, 3, 16, 16)
        assert full == pytest.approx(pairwise_error_soft(7, 2.0, 3), rel=1e-9)

    def test_multires_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            pairwise_error_multires(7, 2.0, 3, 0, 16)

    def test_soft_rejects_one_bit(self):
        with pytest.raises(ConfigurationError):
            pairwise_error_soft(7, 2.0, 1)


class TestEstimator:
    def test_truncation_penalty_vanishes_past_7k(self):
        assert truncation_penalty(7 * 5, 5) < 1.05
        assert truncation_penalty(2 * 5, 5) > 2.0

    def test_estimate_monotone_in_snr(self):
        values = [
            estimate_ber(5, (0o35, 0o23), snr, 3, 25) for snr in (0.0, 2.0, 4.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_estimate_clamped(self):
        assert estimate_ber(3, (0o7, 0o5), -10.0, 1, 15) == 0.5

    def test_estimate_matches_measurement_at_moderate_snr(self, encoder_k5):
        """Union bound vs Monte-Carlo within a small factor at 2 dB."""
        from repro.viterbi import BERSimulator, HardQuantizer, Trellis, ViterbiDecoder

        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder_k5), HardQuantizer(), 25
        )
        simulator = BERSimulator(encoder_k5, frame_length=256)
        measured = simulator.measure(
            decoder, 2.0, max_bits=80_000, target_errors=400
        ).ber
        estimated = estimate_ber(5, (0o35, 0o23), 2.0, 1, 25)
        assert measured / 4 < estimated < measured * 4

    def test_estimate_orders_decoders(self):
        hard = estimate_ber(5, (0o35, 0o23), 2.0, 1, 25)
        m4 = estimate_ber(5, (0o35, 0o23), 2.0, 1, 25, high_bits=3, multires_paths=4)
        m8 = estimate_ber(5, (0o35, 0o23), 2.0, 1, 25, high_bits=3, multires_paths=8)
        soft = estimate_ber(5, (0o35, 0o23), 2.0, 3, 25)
        assert hard > m4 > m8 > soft

    def test_estimate_multires_needs_high_bits(self):
        with pytest.raises(ConfigurationError):
            estimate_ber(5, (0o35, 0o23), 2.0, 1, 25, multires_paths=4)

    def test_larger_k_estimates_better_ber(self):
        from repro.viterbi.polynomials import default_polynomials

        values = [
            estimate_ber(k, default_polynomials(k), 3.0, 3, 7 * k)
            for k in (3, 5, 7)
        ]
        assert values == sorted(values, reverse=True)
