"""Tests for the observability subsystem (tracing/metrics/export)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.evaluation import CachingEvaluator, FunctionEvaluator
from repro.observability.export import (
    JsonlSink,
    format_trace_report,
    install_tracing,
    read_trace,
    shutdown_tracing,
    summarize_trace,
)
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.observability.trace import Tracer, get_tracer


class ListSink:
    """In-memory sink for assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture(autouse=True)
def _clean_default_tracer():
    """Tests must never leave a sink on the process-wide tracer."""
    get_tracer().set_sink(None)
    yield
    get_tracer().set_sink(None)


class TestTracer:
    def test_disabled_span_is_noop(self):
        tracer = Tracer()
        with tracer.span("work", x=1) as sp:
            sp.set(y=2)
        assert not tracer.enabled
        assert tracer.current_span() is None

    def test_disabled_spans_are_shared(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")

    def test_span_records_duration_and_attrs(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("work", x=1) as sp:
            sp.set(y=2)
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["attrs"] == {"x": 1, "y": 2}
        assert record["dur_s"] >= 0.0
        assert record["status"] == "ok"

    def test_span_nesting_sets_parent_and_depth(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current_span().name == "inner"
            assert tracer.current_span().name == "outer"
        inner, outer = sink.records  # inner closes first
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["depth"] == 0
        assert "parent" not in outer

    def test_exception_marks_error_and_propagates(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (record,) = sink.records
        assert record["status"] == "error"
        assert record["attrs"]["exception"] == "ValueError"
        # The stack unwound cleanly despite the exception.
        assert tracer.current_span() is None

    def test_event_attaches_current_span(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("stage"):
            tracer.event("milestone", n=3)
        event = sink.records[0]
        assert event["type"] == "event"
        assert event["name"] == "milestone"
        assert event["span"] == "stage"
        assert event["attrs"] == {"n": 3}

    def test_thread_local_stacks_are_independent(self):
        sink = ListSink()
        tracer = Tracer(sink)
        seen = {}

        def worker():
            with tracer.span("child-thread"):
                seen["parent"] = tracer.current_span()._parent

        with tracer.span("main-thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's span must not nest under this thread's.
        assert seen["parent"] is None


class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_bucket_edges_are_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)   # first bucket
        hist.observe(1.0)   # edge -> still first bucket (le semantics)
        hist.observe(1.5)   # second bucket
        hist.observe(2.0)   # edge -> second bucket
        hist.observe(99.0)  # overflow
        assert hist.bucket_counts() == [(1.0, 2), (2.0, 2), (None, 1)]
        assert hist.count == 5
        assert hist.mean == pytest.approx((0.5 + 1.0 + 1.5 + 2.0 + 99.0) / 5)
        snap = hist.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 99.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_registry_reuses_and_typechecks(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.gauge("g").set(4)
        registry.gauge("g").dec()
        snap = registry.snapshot()
        assert snap["x"]["type"] == "counter"
        assert snap["g"]["value"] == 3
        registry.reset()
        assert registry.names() == []

    def test_default_registry_is_process_wide(self):
        assert get_registry() is get_registry()


class TestExportRoundTrip:
    def test_jsonl_round_trip_through_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        registry.counter("evaluator.cache_hits").inc(3)
        registry.counter("evaluator.cache_misses").inc(7)
        sink = install_tracing(path)
        tracer = get_tracer()
        assert tracer.sink is sink
        with tracer.span("search.run"):
            for level in range(2):
                with tracer.span("search.region", level=level):
                    pass
            tracer.event("ber.early_stop", bits=1000)
        shutdown_tracing(sink, registry)
        assert tracer.sink is None

        summary = summarize_trace(path)
        assert summary.n_spans == 3
        assert summary.n_events == 1
        assert summary.stages["search.region"].count == 2
        assert summary.stages["search.run"].count == 1
        assert summary.events["ber.early_stop"] == 1
        assert summary.counter_value("evaluator.cache_hits") == 3
        # Only the depth-0 span counts toward top-level wall clock.
        assert summary.wall_clock_s == pytest.approx(
            summary.stages["search.run"].total_s
        )

        report = format_trace_report(summary)
        assert "search.region" in report
        assert "3 hits / 7 misses" in report
        assert "ber.early_stop" in report

    def test_reducer_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = {"type": "span", "name": "ok", "dur_s": 0.5, "depth": 0,
                "status": "ok"}
        path.write_text("not json\n" + json.dumps(good) + "\n[1,2]\n")
        summary = summarize_trace(path)
        assert summary.n_spans == 1
        assert summary.stages["ok"].total_s == 0.5

    def test_sink_serializes_exotic_attrs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "event", "name": "e",
                       "attrs": {"obj": object(), "t": (1, 2)}})
        (record,) = list(read_trace(path))
        assert isinstance(record["attrs"]["obj"], str)
        assert record["attrs"]["t"] == [1, 2]

    def test_error_spans_reported(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = install_tracing(path)
        with pytest.raises(RuntimeError):
            with get_tracer().span("fragile"):
                raise RuntimeError("x")
        shutdown_tracing(sink)
        summary = summarize_trace(path)
        assert summary.stages["fragile"].errors == 1
        assert "(1 errors)" in format_trace_report(summary)


class TestCachingEvaluatorAccounting:
    def _evaluator(self, max_fidelity=2):
        calls = []

        def price(point, fidelity):
            calls.append((dict(point), fidelity))
            return {"cost": float(point["x"]) + fidelity}

        inner = FunctionEvaluator(price, max_fidelity=max_fidelity)
        return CachingEvaluator(inner), calls

    def test_hit_miss_counts(self):
        evaluator, calls = self._evaluator()
        evaluator.evaluate({"x": 1}, 0)
        evaluator.evaluate({"x": 1}, 0)  # hit
        evaluator.evaluate({"x": 2}, 0)  # miss
        assert evaluator.cache_hits == 1
        assert evaluator.cache_misses == 2
        assert evaluator.cache_upgrades == 0
        assert len(calls) == 2
        # The log records computed evaluations only, never hits.
        assert evaluator.log.n_evaluations == 2

    def test_lower_fidelity_answered_by_higher_is_a_hit(self):
        evaluator, calls = self._evaluator()
        evaluator.evaluate({"x": 1}, 2)
        result = evaluator.evaluate({"x": 1}, 0)
        assert result == {"cost": 3.0}  # the fidelity-2 answer
        assert evaluator.cache_hits == 1
        assert evaluator.cache_misses == 1
        assert len(calls) == 1

    def test_upgrade_is_a_miss_and_counted(self):
        evaluator, _ = self._evaluator()
        evaluator.evaluate({"x": 1}, 0)
        evaluator.evaluate({"x": 1}, 2)  # recompute at higher fidelity
        evaluator.evaluate({"x": 1}, 1)  # now answered from fidelity 2
        assert evaluator.cache_misses == 2
        assert evaluator.cache_upgrades == 1
        assert evaluator.cache_hits == 1

    def test_registry_counters_advance(self):
        registry = get_registry()
        registry.reset()
        evaluator, _ = self._evaluator()
        evaluator.evaluate({"x": 1}, 0)
        evaluator.evaluate({"x": 1}, 0)
        assert registry.counter("evaluator.cache_hits").value == 1
        assert registry.counter("evaluator.cache_misses").value == 1
        hist = registry.get("evaluator.latency_s.fid0")
        assert hist is not None and hist.count == 1

    def test_search_result_exposes_cache_stats(self):
        from repro.core.objectives import DesignGoal, Objective
        from repro.core.parameters import DesignSpace, DiscreteParameter
        from repro.core.search import MetacoreSearch, SearchConfig

        space = DesignSpace(
            [DiscreteParameter("x", tuple(range(8)))]
        )
        goal = DesignGoal(objectives=[Objective("cost")])

        def price(point, fidelity):
            return {"cost": float(point["x"])}

        search = MetacoreSearch(
            space,
            goal,
            FunctionEvaluator(price, max_fidelity=1),
            config=SearchConfig(max_resolution=1, confirm_best=True),
        )
        result = search.run()
        assert result.cache_misses == search.evaluator.cache_misses
        assert result.cache_hits == search.evaluator.cache_hits
        assert result.cache_hits + result.cache_misses >= result.log.n_evaluations
        assert "cache:" in result.summary()
