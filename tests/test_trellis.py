"""Tests for the decoding trellis (paper Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viterbi import ConvolutionalEncoder, Trellis


class TestTrellisStructure:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7, 8, 9])
    def test_two_regular(self, k):
        """Every state has exactly two predecessors and two successors."""
        try:
            encoder = ConvolutionalEncoder(k)
        except Exception:
            encoder = ConvolutionalEncoder(k, (3, 1) if k == 2 else None)
        trellis = Trellis.from_encoder(encoder)
        assert trellis.predecessors.shape == (encoder.n_states, 2)
        successors = {}
        for state in range(encoder.n_states):
            for bit in (0, 1):
                nxt = encoder.next_state(state, bit)
                successors.setdefault(nxt, []).append(state)
        for state in range(encoder.n_states):
            assert sorted(successors[state]) == sorted(
                trellis.predecessors[state].tolist()
            )

    def test_branch_consistency(self, encoder_k5, trellis_k5):
        """Trellis branch symbols match the encoder's forward tables."""
        for state in range(trellis_k5.n_states):
            for slot in range(2):
                pred = int(trellis_k5.predecessors[state, slot])
                bit = int(trellis_k5.branch_inputs[state, slot])
                assert encoder_k5.next_state(pred, bit) == state
                assert encoder_k5.output_symbols(pred, bit) == tuple(
                    trellis_k5.branch_symbols[state, slot]
                )

    def test_figure3_k3_trellis(self, trellis_k3):
        """Spot-check the 4-state trellis the paper's Fig. 3 draws."""
        assert trellis_k3.n_states == 4
        assert trellis_k3.n_symbols == 2
        # State 0 is reachable from 0 (input 0) and 1 (input 0).
        assert sorted(trellis_k3.predecessors[0].tolist()) == [0, 1]
        # State 2 is reachable from 0 and 1 on input 1.
        assert sorted(trellis_k3.predecessors[2].tolist()) == [0, 1]

    def test_input_bit_of_state(self, trellis_k5):
        states = np.arange(trellis_k5.n_states)
        bits = trellis_k5.input_bit_of_state(states)
        # Top bit of the state is the most recent input.
        assert np.array_equal(bits, states >> 3)

    def test_describe_lists_all_branches(self, trellis_k3):
        text = trellis_k3.describe()
        assert text.count("-->") == 2 * trellis_k3.n_states

    def test_branch_inputs_equal_top_bit(self, trellis_k5):
        for state in range(trellis_k5.n_states):
            for slot in range(2):
                assert trellis_k5.branch_inputs[state, slot] == state >> 3
