"""Tests for the hardware cost models (Trimaran/TR4101 stand-in)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SynthesisError
from repro.hardware import (
    LeveledProgram,
    MachineConfig,
    OperationCounts,
    ViterbiInstanceParams,
    clock_mhz,
    data_path_factor,
    estimate_area,
    evaluate_machine,
    feature_scale,
    optimize_machine,
    schedule,
    throughput_bps,
    viterbi_program,
    width_speed_factor,
)


class TestOperationCounts:
    def test_addition(self):
        total = OperationCounts(alu=2, load=1) + OperationCounts(alu=3, store=4)
        assert total.alu == 5 and total.load == 1 and total.store == 4

    def test_scaled(self):
        assert OperationCounts(alu=4).scaled(0.5).alu == 2

    def test_memory_and_total(self):
        counts = OperationCounts(alu=1, load=2, store=3, branch=4, mult=5)
        assert counts.memory == 5
        assert counts.total == 15


class TestClockModel:
    def test_anchor_point(self):
        assert clock_mhz(0.35, 32) == pytest.approx(81.0)

    def test_linear_feature_scaling(self):
        assert clock_mhz(0.175, 32) == pytest.approx(162.0)

    def test_width_speedup_mild(self):
        assert 1.0 < width_speed_factor(8) < 1.25

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            clock_mhz(0.0)
        with pytest.raises(ConfigurationError):
            width_speed_factor(0)


class TestAreaModel:
    def test_quadratic_feature_scale(self):
        assert feature_scale(0.35) == pytest.approx(1.0)
        assert feature_scale(0.7) == pytest.approx(4.0)

    def test_data_path_factor_bounds(self):
        assert data_path_factor(32) == pytest.approx(1.0)
        assert 0.25 <= data_path_factor(1) < 0.3

    def test_area_monotone_in_alus(self):
        small = estimate_area(1, 1, 16, 1000, 0.25).total
        big = estimate_area(8, 1, 16, 1000, 0.25).total
        assert big > small

    def test_area_monotone_in_width(self):
        narrow = estimate_area(2, 1, 8, 1000, 0.25).total
        wide = estimate_area(2, 1, 32, 1000, 0.25).total
        assert wide > narrow

    def test_area_breakdown_sums(self):
        breakdown = estimate_area(4, 2, 16, 2048, 0.25, n_mults=1)
        parts = (
            breakdown.control
            + breakdown.alus
            + breakdown.mults
            + breakdown.bypass
            + breakdown.mem_ports
            + breakdown.regfile
            + breakdown.storage
        )
        assert breakdown.total == pytest.approx(parts)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            estimate_area(0, 1, 16, 0, 0.25)
        with pytest.raises(ConfigurationError):
            estimate_area(1, 0, 16, 0, 0.25)


class TestScheduler:
    def _program(self) -> LeveledProgram:
        program = LeveledProgram(name="test", datapath_width=16)
        program.add_level("a", alu=8)
        program.add_level("b", alu=4, load=2)
        program.add_level("c", store=1, branch=1)
        return program

    def test_more_alus_fewer_cycles(self):
        program = self._program()
        slow = schedule(program, MachineConfig(n_alus=1))
        fast = schedule(program, MachineConfig(n_alus=4))
        assert fast.cycles < slow.cycles

    def test_levels_are_barriers(self):
        """A wide machine still pays one cycle per level plus overhead."""
        program = self._program()
        result = schedule(program, MachineConfig(n_alus=16, n_mem_ports=4))
        assert result.cycles >= len(program.levels) + 1

    def test_spill_penalty(self):
        program = self._program()
        program.live_words = 100
        no_spill = schedule(program, MachineConfig(n_alus=2, regfile_words=128))
        spilled = schedule(program, MachineConfig(n_alus=2, regfile_words=32))
        assert spilled.spill_ops > 0
        assert spilled.cycles > no_spill.cycles

    def test_mult_needs_mult_unit(self):
        program = LeveledProgram(name="m")
        program.add_level("mul", mult=4)
        assert throughput_bps(program, MachineConfig(n_alus=1, n_mults=0)) == 0.0
        assert throughput_bps(program, MachineConfig(n_alus=1, n_mults=1)) > 0.0

    def test_throughput_scales_with_clock(self):
        program = self._program()
        slow = throughput_bps(program, MachineConfig(n_alus=2, feature_um=0.35))
        fast = throughput_bps(program, MachineConfig(n_alus=2, feature_um=0.175))
        assert fast == pytest.approx(2 * slow)


class TestOptimizer:
    def test_min_area_meets_target(self):
        program = viterbi_program(ViterbiInstanceParams(5, 25, 1, 2, 3, 8, 1))
        estimate = optimize_machine(program, 1.0e6)
        assert estimate.throughput_bps >= 1.0e6

    def test_tighter_target_bigger_area(self):
        program = viterbi_program(ViterbiInstanceParams(5, 25, 3))
        loose = optimize_machine(program, 0.5e6)
        tight = optimize_machine(program, 4.0e6)
        assert tight.area_mm2 > loose.area_mm2

    def test_infeasible_raises(self):
        program = viterbi_program(ViterbiInstanceParams(9, 63, 4))
        with pytest.raises(SynthesisError):
            optimize_machine(program, 50.0e6)

    def test_rejects_nonpositive_target(self):
        program = viterbi_program(ViterbiInstanceParams(3, 6, 1))
        with pytest.raises(ConfigurationError):
            optimize_machine(program, 0.0)

    def test_evaluate_machine_consistent(self):
        program = viterbi_program(ViterbiInstanceParams(3, 9, 2))
        machine = MachineConfig(n_alus=2, datapath_width=program.datapath_width)
        estimate = evaluate_machine(program, machine)
        assert estimate.area_mm2 == pytest.approx(estimate.area.total)


class TestViterbiTrace:
    def test_states_property(self):
        assert ViterbiInstanceParams(7, 35, 1).n_states == 64

    def test_multires_requires_pairing(self):
        with pytest.raises(ConfigurationError):
            ViterbiInstanceParams(5, 25, 1, 2, high_resolution_bits=3)

    def test_multires_r2_above_r1(self):
        with pytest.raises(ConfigurationError):
            ViterbiInstanceParams(5, 25, 3, 2, 3, 4, 1)

    def test_n_range(self):
        with pytest.raises(ConfigurationError):
            ViterbiInstanceParams(5, 25, 1, 2, 3, 4, 5)
        with pytest.raises(ConfigurationError):
            ViterbiInstanceParams(5, 25, 3, normalization_count=1)

    def test_ops_grow_with_k(self):
        small = viterbi_program(ViterbiInstanceParams(3, 15, 1)).op_counts.total
        large = viterbi_program(ViterbiInstanceParams(7, 35, 1)).op_counts.total
        assert large > 4 * small

    def test_multires_adds_work_and_storage(self):
        pure = viterbi_program(ViterbiInstanceParams(5, 25, 1))
        multi = viterbi_program(ViterbiInstanceParams(5, 25, 1, 2, 3, 8, 1))
        assert multi.op_counts.total > pure.op_counts.total
        assert multi.storage_bits > pure.storage_bits
        assert multi.datapath_width > pure.datapath_width

    def test_storage_grows_with_depth(self):
        shallow = viterbi_program(ViterbiInstanceParams(5, 10, 1)).storage_bits
        deep = viterbi_program(ViterbiInstanceParams(5, 35, 1)).storage_bits
        assert deep > shallow

    @given(st.integers(3, 9), st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_area_monotone_in_k(self, k, l_mult):
        """Area at fixed throughput grows with constraint length."""
        if k >= 9:
            return
        small = optimize_machine(
            viterbi_program(ViterbiInstanceParams(k, l_mult * k, 2)), 1e6
        ).area_mm2
        big = optimize_machine(
            viterbi_program(ViterbiInstanceParams(k + 1, l_mult * (k + 1), 2)),
            1e6,
        ).area_mm2
        assert big > small
