"""Tests for node-level dataflow scheduling (repro.hardware.listsched)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.listsched import (
    DataflowGraph,
    dfg_from_sections,
    list_schedule,
    minimum_resources,
)


def _chain(length: int) -> DataflowGraph:
    graph = DataflowGraph()
    previous = None
    for _ in range(length):
        previous = graph.add(
            "add", [previous] if previous is not None else []
        )
    return graph


def _independent(n_mult: int) -> DataflowGraph:
    graph = DataflowGraph()
    for _ in range(n_mult):
        graph.add("mult")
    return graph


class TestGraphBasics:
    def test_add_validates_predecessors(self):
        graph = DataflowGraph()
        with pytest.raises(ConfigurationError):
            graph.add("add", [0])

    def test_rejects_unknown_kind(self):
        graph = DataflowGraph()
        with pytest.raises(ConfigurationError):
            graph.add("divide")

    def test_counts(self):
        graph = dfg_from_sections([([1.0, 0.5, 0.2], [1.0, -0.3, 0.1])])
        assert graph.count("mult") == 5  # 2 feedback + 3 feedforward
        assert graph.count("add") == 4


class TestTiming:
    def test_asap_of_chain(self):
        graph = _chain(5)
        assert graph.asap() == [0, 1, 2, 3, 4]
        assert graph.critical_path() == 5

    def test_asap_of_independent(self):
        graph = _independent(6)
        assert graph.critical_path() == 1

    def test_alap_and_mobility(self):
        graph = DataflowGraph()
        a = graph.add("mult")
        b = graph.add("mult")
        c = graph.add("add", [a])
        d = graph.add("add", [c, b])
        mobility = graph.mobility()
        # a and the adds are on the critical path; b has one slack cycle.
        assert mobility[a] == 0 and mobility[c] == 0 and mobility[d] == 0
        assert mobility[b] == 1

    def test_alap_deadline_extends_slack(self):
        graph = _chain(3)
        mobility = graph.mobility(deadline=6)
        assert all(m == 3 for m in mobility)

    def test_alap_rejects_impossible_deadline(self):
        with pytest.raises(ConfigurationError):
            _chain(5).alap(deadline=3)


class TestListScheduling:
    def test_independent_ops_pack_by_units(self):
        graph = _independent(8)
        assert list_schedule(graph, {"mult": 1}).cycles == 8
        assert list_schedule(graph, {"mult": 4}).cycles == 2
        assert list_schedule(graph, {"mult": 8}).cycles == 1

    def test_chain_cannot_go_faster_than_critical_path(self):
        graph = _chain(6)
        schedule = list_schedule(graph, {"add": 16})
        assert schedule.cycles == graph.critical_path()

    def test_dependences_respected(self):
        graph = dfg_from_sections(
            [([1.0, 0.2, 0.1], [1.0, -0.5, 0.25])] * 3
        )
        schedule = list_schedule(graph, {"mult": 2, "add": 2})
        starts = schedule.start_times
        for node in graph.nodes:
            for predecessor in node.predecessors:
                assert starts[predecessor] < starts[node.index]

    def test_resource_capacity_respected(self):
        graph = dfg_from_sections(
            [([1.0, 0.2, 0.1], [1.0, -0.5, 0.25])] * 4
        )
        units = {"mult": 2, "add": 1}
        schedule = list_schedule(graph, units)
        per_cycle = {}
        for node in graph.nodes:
            key = (schedule.start_times[node.index], node.kind)
            per_cycle[key] = per_cycle.get(key, 0) + 1
        for (cycle, kind), used in per_cycle.items():
            assert used <= units[kind]

    def test_missing_units_rejected(self):
        with pytest.raises(ConfigurationError):
            list_schedule(_independent(2), {"add": 1})

    def test_utilization(self):
        graph = _independent(8)
        schedule = list_schedule(graph, {"mult": 2})
        assert schedule.utilization(graph, "mult") == pytest.approx(1.0)
        assert schedule.utilization(graph, "add") == 0.0


class TestMinimumResources:
    def test_loose_deadline_single_units(self):
        graph = dfg_from_sections(
            [([1.0, 0.2, 0.1], [1.0, -0.5, 0.25])] * 4
        )
        resources = minimum_resources(graph, deadline=100)
        assert resources == {"mult": 1, "add": 1}

    def test_tight_deadline_more_units(self):
        graph = dfg_from_sections(
            [([1.0, 0.2, 0.1], [1.0, -0.5, 0.25])] * 4,
            parallel_sections=True,
        )
        loose = minimum_resources(graph, deadline=50)
        tight = minimum_resources(graph, deadline=graph.critical_path() + 2)
        assert sum(tight.values()) > sum(loose.values())

    def test_deadline_below_critical_rejected(self):
        graph = _chain(10)
        with pytest.raises(ConfigurationError):
            minimum_resources(graph, deadline=5)

    def test_validates_bound_based_estimator(self):
        """The calibrated count-based estimator's unit counts are within
        one unit of a real node-level schedule for the cascade."""
        from repro.hardware.synthesis import estimate_iir_implementation
        from repro.iir.design import paper_bandpass_spec, design_filter
        from repro.iir.structures import realize

        tf = design_filter(paper_bandpass_spec(), "elliptic").to_tf()
        cascade = realize("cascade", tf)
        # A looser period, so the single-sample DFG deadline is not
        # dominated by the chain latency (the count-based model assumes
        # inter-section pipelining that a one-sample schedule cannot
        # express).
        estimate = estimate_iir_implementation(
            cascade.dataflow(), word_length=12, sample_period_us=2.0
        )
        graph = dfg_from_sections(cascade.sections)
        deadline = max(estimate.cycles_per_sample, graph.critical_path())
        resources = minimum_resources(graph, deadline=deadline)
        assert abs(resources["mult"] - estimate.n_multipliers) <= 1
        assert abs(resources["add"] - estimate.n_adders) <= 1


class TestParallelGraphs:
    def test_parallel_shorter_critical_path(self):
        sections = [([1.0, 0.2], [1.0, -0.5, 0.25])] * 4
        cascade = dfg_from_sections(sections, parallel_sections=False)
        parallel = dfg_from_sections(sections, parallel_sections=True)
        assert parallel.critical_path() < cascade.critical_path()

    def test_merge_tree_added(self):
        sections = [([1.0], [1.0, -0.5])] * 3
        parallel = dfg_from_sections(sections, parallel_sections=True)
        cascade = dfg_from_sections(sections, parallel_sections=False)
        assert parallel.count("add") == cascade.count("add") + 2
