"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iir.design import design_filter, paper_bandpass_spec
from repro.viterbi import ConvolutionalEncoder, Trellis


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-vector fixtures under tests/golden/ "
        "from the current implementation instead of comparing against "
        "them (review the diff before committing!)",
    )


@pytest.fixture(scope="session")
def regen_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(scope="session")
def encoder_k3() -> ConvolutionalEncoder:
    return ConvolutionalEncoder(3)


@pytest.fixture(scope="session")
def encoder_k5() -> ConvolutionalEncoder:
    return ConvolutionalEncoder(5)


@pytest.fixture(scope="session")
def trellis_k3(encoder_k3) -> Trellis:
    return Trellis.from_encoder(encoder_k3)


@pytest.fixture(scope="session")
def trellis_k5(encoder_k5) -> Trellis:
    return Trellis.from_encoder(encoder_k5)


@pytest.fixture(scope="session")
def bandpass_tf():
    """The paper's Sec. 5.3 elliptic band-pass filter (order 8)."""
    return design_filter(paper_bandpass_spec(), "elliptic").to_tf()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
