"""Cross-cutting property-based tests (hypothesis).

Deeper invariants spanning several modules: decoder correctness under
arbitrary parameters, normalization canonicity, puncture round-trips,
structure equivalence under random stable filters, and grid algebra.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Region,
    SurrogateModel,
    select_lexicographic,
    select_weighted_sum,
)
from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import Direction, Objective
from repro.core.parameters import frozen_point
from repro.core.pareto import dominates, front_sort_key, pareto_front
from repro.iir.structures import realize
from repro.iir.transfer import TransferFunction
from repro.viterbi import (
    AdaptiveQuantizer,
    ConvolutionalEncoder,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    PuncturePattern,
    Trellis,
    ViterbiDecoder,
    bpsk_modulate,
)
from repro.viterbi.metacore import normalize_viterbi_point
from repro.viterbi.puncture import STANDARD_PATTERNS, standard_pattern
from repro.viterbi.tailbiting import decode_tailbiting, encode_tailbiting


class TestDecoderProperties:
    @given(
        k=st.integers(3, 7),
        l_mult=st.integers(2, 6),
        m_exp=st.integers(0, 4),
        length=st.integers(40, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_multires_noiseless_exact(self, k, l_mult, m_exp, length):
        """Any multiresolution configuration decodes clean symbols
        exactly."""
        n_states = 1 << (k - 1)
        m = min(1 << m_exp, n_states)
        encoder = ConvolutionalEncoder(k)
        decoder = MultiresolutionViterbiDecoder(
            Trellis.from_encoder(encoder),
            HardQuantizer(),
            AdaptiveQuantizer(3),
            l_mult * k,
            multires_paths=m,
        )
        rng = np.random.default_rng(k * 1009 + l_mult * 31 + m)
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        clean = bpsk_modulate(encoder.encode(bits))
        assert np.array_equal(decoder.decode(clean, sigma=0.4), bits)

    @given(
        k=st.integers(3, 6),
        flips=st.integers(0, 2),
        length=st.integers(60, 140),
    )
    @settings(max_examples=25, deadline=None)
    def test_few_symbol_flips_corrected(self, k, flips, length):
        """Up to floor((dfree-1)/2) well-separated symbol errors are
        always corrected (dfree >= 5 for these codes)."""
        encoder = ConvolutionalEncoder(k)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 6 * k
        )
        rng = np.random.default_rng(k * 7919 + flips + length)
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        received = bpsk_modulate(encoder.encode(bits))
        positions = np.linspace(
            10, length - 10, max(flips, 1), dtype=int
        )[:flips]
        for position in positions:
            received[position, 0] *= -1.0
        assert np.array_equal(decoder.decode(received, sigma=0.2), bits)


class TestNormalizationProperties:
    POINT_STRATEGY = st.fixed_dictionaries(
        {
            "K": st.sampled_from((3, 4, 5, 6, 7)),
            "L_mult": st.sampled_from(tuple(range(1, 8))),
            "G": st.just("standard"),
            "R1": st.sampled_from((1, 2, 3)),
            "R2": st.sampled_from((2, 3, 4, 5)),
            "Q": st.sampled_from(("hard", "fixed", "adaptive")),
            "N": st.sampled_from((1, 2, 3, 4)),
            "M": st.sampled_from((0, 1, 2, 4, 8, 16, 32, 64)),
        }
    )

    @given(point=POINT_STRATEGY)
    @settings(max_examples=100, deadline=None)
    def test_normalization_idempotent_and_valid(self, point):
        once = normalize_viterbi_point(point)
        twice = normalize_viterbi_point(once)
        assert once == twice
        # Normalized points always describe a buildable decoder.
        from repro.viterbi import build_decoder

        decoder = build_decoder(once)
        assert decoder is not None

    @given(point=POINT_STRATEGY)
    @settings(max_examples=60, deadline=None)
    def test_normalized_invariants(self, point):
        normalized = normalize_viterbi_point(point)
        k = int(normalized["K"])
        m = int(normalized["M"])
        assert 0 <= m <= (1 << (k - 1))
        if m > 0:
            assert int(normalized["R2"]) > int(normalized["R1"])
            assert 1 <= int(normalized["N"]) <= m
            assert normalized["Q"] != "hard"
        if normalized["Q"] == "hard":
            assert int(normalized["R1"]) == 1 and m == 0


class TestPunctureProperties:
    @given(
        period=st.integers(1, 6),
        seed=st.integers(0, 1000),
        frames=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_pattern_round_trip(self, period, seed, frames):
        rng = np.random.default_rng(seed)
        mask = rng.integers(0, 2, size=(period, 2))
        # Every row must keep at least one symbol.
        for row in mask:
            if row.sum() == 0:
                row[rng.integers(2)] = 1
        pattern = PuncturePattern(
            "rand", tuple(tuple(int(b) for b in row) for row in mask)
        )
        steps = 4 * period
        symbols = rng.normal(size=(frames, steps, 2))
        restored = pattern.depuncture(pattern.puncture(symbols), steps)
        keep = pattern.mask_array(steps)
        assert np.allclose(restored[..., keep], symbols[..., keep])
        assert np.isnan(restored[..., ~keep]).all()


class TestPunctureErasureProperties:
    """Round trips over streams that already carry erasures (NaN)."""

    @given(
        rate=st.sampled_from(sorted(STANDARD_PATTERNS)),
        frames=st.integers(1, 3),
        periods=st.integers(1, 4),
        nan_fraction=st.floats(0.0, 0.5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_depuncture_puncture_identity_on_erasure_streams(
        self, rate, frames, periods, nan_fraction, seed
    ):
        """depuncture(puncture(x)) restores every kept position
        bit-exactly — including NaN erasures already present in x —
        and marks every deleted position as an erasure."""
        pattern = standard_pattern(rate)
        steps = periods * pattern.period
        rng = np.random.default_rng(seed)
        symbols = rng.normal(size=(frames, steps, pattern.n_symbols))
        erase = rng.random(symbols.shape) < nan_fraction
        symbols[erase] = np.nan
        punctured = pattern.puncture(symbols)
        restored = pattern.depuncture(punctured, steps)
        keep = pattern.mask_array(steps)
        assert np.array_equal(
            restored[..., keep], symbols[..., keep], equal_nan=True
        )
        assert np.isnan(restored[..., ~keep]).all()

    @given(
        rate=st.sampled_from(sorted(STANDARD_PATTERNS)),
        periods=st.integers(1, 4),
        nan_fraction=st.floats(0.0, 0.5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_puncture_depuncture_is_exact_identity(
        self, rate, periods, nan_fraction, seed
    ):
        """The other direction is a full identity: re-puncturing a
        depunctured stream gives back the received symbols verbatim."""
        pattern = standard_pattern(rate)
        steps = periods * pattern.period
        rng = np.random.default_rng(seed)
        kept = int(pattern.mask_array(steps).sum())
        received = rng.normal(size=kept)
        received[rng.random(kept) < nan_fraction] = np.nan
        again = pattern.puncture(pattern.depuncture(received, steps))
        assert np.array_equal(again, received, equal_nan=True)

    @given(
        rate=st.sampled_from(sorted(STANDARD_PATTERNS)),
        periods=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_rate_bookkeeping(self, rate, periods):
        pattern = standard_pattern(rate)
        steps = periods * pattern.period
        symbols = np.zeros((steps, pattern.n_symbols))
        assert pattern.puncture(symbols).shape[-1] == (
            periods * pattern.kept_per_period
        )
        k, n = pattern.rate
        assert k * pattern.kept_per_period == n * pattern.period


class TestTailbitingProperties:
    @given(
        k=st.integers(3, 5),
        length=st.integers(16, 48),
        seed=st.integers(0, 1000),
        all_zero=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_tailbiting_matches_terminated_decode_clean(
        self, k, length, seed, all_zero
    ):
        """On clean symbols, the wrap-around tail-biting decode and the
        standard (known-start) decode both recover the message exactly
        — tail-biting pays no flush bits for the same answer."""
        encoder = ConvolutionalEncoder(k)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 6 * k
        )
        rng = np.random.default_rng(seed)
        bits = (
            np.zeros(length, dtype=np.int8)
            if all_zero
            else rng.integers(0, 2, size=length, dtype=np.int8)
        )
        tailbiting = decode_tailbiting(
            decoder, bpsk_modulate(encode_tailbiting(encoder, bits))
        )
        terminated = decoder.decode(bpsk_modulate(encoder.encode(bits)))
        assert np.array_equal(tailbiting, bits)
        assert np.array_equal(terminated, bits)

    @given(
        k=st.integers(3, 5),
        length=st.integers(20, 48),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_tailbiting_matches_terminated_decode_high_snr(
        self, k, length, seed
    ):
        """At 10 dB Es/N0 (hard-decision flip probability ~4e-6, and
        any lone flip is inside the code's correction radius) both
        decodes still recover the message."""
        from repro.viterbi.channel import AWGNChannel

        encoder = ConvolutionalEncoder(k)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 6 * k
        )
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        channel = AWGNChannel(10.0)
        tailbiting = decode_tailbiting(
            decoder,
            channel.transmit(
                encode_tailbiting(encoder, bits),
                rng=np.random.default_rng(seed + 1),
            ),
            sigma=channel.sigma,
        )
        terminated = decoder.decode(
            channel.transmit(
                encoder.encode(bits), rng=np.random.default_rng(seed + 2)
            ),
            sigma=channel.sigma,
        )
        assert np.array_equal(tailbiting, bits)
        assert np.array_equal(terminated, bits)

    @given(
        k=st.integers(3, 5),
        length=st.integers(8, 32),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tailbiting_state_wraps(self, k, length, seed):
        """Tail-biting encoding starts and ends in the same state, and
        emits exactly one symbol pair per data bit (no flush)."""
        encoder = ConvolutionalEncoder(k)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        symbols = encode_tailbiting(encoder, bits)
        assert symbols.shape == (length, encoder.n_outputs)
        # Re-encoding from the wrap state reproduces the symbols.
        state = 0
        for bit in bits[-(k - 1):]:
            state = encoder.next_state(state, int(bit))
        assert np.array_equal(
            encoder.encode(bits, initial_state=state), symbols
        )


class TestStructureProperties:
    @given(
        poles=st.lists(
            st.tuples(st.floats(0.1, 0.93), st.floats(0.1, 3.0)),
            min_size=1,
            max_size=3,
        ),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_structures_reproduce_random_stable_filters(self, poles, seed):
        """cascade/parallel/ladder/statespace realize any random stable
        all-pole-pair filter with matching responses."""
        pole_list = []
        for radius, angle in poles:
            pole_list.extend(
                [radius * np.exp(1j * angle), radius * np.exp(-1j * angle)]
            )
        # Distinct poles required by the parallel form.
        values = np.asarray(pole_list)
        assume(
            np.min(
                np.abs(values[:, None] - values[None, :])
                + np.eye(values.size)
            )
            > 1e-3
        )
        rng = np.random.default_rng(seed)
        a = np.real(np.poly(values))
        b = rng.normal(size=values.size // 2 + 1)
        assume(np.max(np.abs(b)) > 1e-3)
        tf = TransferFunction(b, a)
        omega = np.linspace(0.1, 3.0, 48)
        reference = tf.response(omega)
        # Tolerance scales with the response's own magnitude: the
        # parallel form's partial-fraction residues grow with resonance
        # sharpness, so high-Q filters carry proportionally larger
        # round-off while staying exact in relative terms.
        tol = 1e-6 * max(1.0, float(np.max(np.abs(reference))))
        for name in ("cascade", "parallel", "ladder", "statespace"):
            rebuilt = realize(name, tf).to_tf().response(omega)
            assert np.max(np.abs(rebuilt - reference)) < tol


class TestParetoProperties:
    """Dominance-relation invariants behind the atlas frontier."""

    OBJECTIVES = [
        Objective("a", Direction.MINIMIZE),
        Objective("b", Direction.MAXIMIZE),
    ]

    METRICS = st.fixed_dictionaries(
        {
            "a": st.sampled_from((0.0, 1.0, 2.0, 3.0)),
            "b": st.sampled_from((0.0, 1.0, 2.0, 3.0)),
        }
    )

    @staticmethod
    def _records(metric_dicts):
        return [
            EvaluationRecord(point=(("x", i),), fidelity=1, metrics=m)
            for i, m in enumerate(metric_dicts)
        ]

    @given(metrics=METRICS)
    @settings(max_examples=30, deadline=None)
    def test_dominance_irreflexive(self, metrics):
        """No record dominates itself (strict-on-one clause)."""
        assert not dominates(metrics, metrics, self.OBJECTIVES)

    @given(ma=METRICS, mb=METRICS)
    @settings(max_examples=60, deadline=None)
    def test_dominance_antisymmetric(self, ma, mb):
        assert not (
            dominates(ma, mb, self.OBJECTIVES)
            and dominates(mb, ma, self.OBJECTIVES)
        )

    @given(pool=st.lists(METRICS, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_front_minimal_and_complete(self, pool):
        """No front member dominates another, and every excluded record
        is dominated by (or duplicates the point of) a front member."""
        records = self._records(pool)
        front = pareto_front(records, self.OBJECTIVES)
        for record in front:
            for other in front:
                if record is not other:
                    assert not dominates(
                        record.metrics, other.metrics, self.OBJECTIVES
                    )
        front_points = {r.point for r in front}
        for record in records:
            if record.point in front_points:
                continue
            assert any(
                dominates(member.metrics, record.metrics, self.OBJECTIVES)
                for member in front
            )

    @given(
        pool=st.lists(METRICS, min_size=1, max_size=12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_front_order_deterministic_under_shuffle(self, pool, seed):
        """The tie-broken front is identical for any insertion order."""
        records = self._records(pool)
        shuffled = records[:]
        np.random.default_rng(seed).shuffle(shuffled)
        # Shuffling reorders same-point shadowing, so restrict to pools
        # with unique points (our strategy guarantees that by design).
        base = pareto_front(records, self.OBJECTIVES)
        again = pareto_front(shuffled, self.OBJECTIVES)
        assert [r.point for r in base] == [r.point for r in again]
        assert [
            front_sort_key(r, self.OBJECTIVES) for r in base
        ] == sorted(front_sort_key(r, self.OBJECTIVES) for r in base)


class TestStrategyProperties:
    """Determinism invariants behind the pluggable search strategies."""

    SPACE = DesignSpace(
        [
            DiscreteParameter("w", tuple(range(6))),
            DiscreteParameter(
                "s", ("ladder", "cascade", "parallel"),
                correlation=Correlation.NONE,
            ),
            ContinuousParameter("r", 0.0, 1.0),
        ]
    )

    OBJECTIVES = [
        Objective("a", Direction.MINIMIZE),
        Objective("b", Direction.MAXIMIZE),
    ]

    METRICS = st.fixed_dictionaries(
        {
            "a": st.sampled_from((0.0, 1.0, 2.0, 3.0)),
            "b": st.sampled_from((0.0, 1.0, 2.0, 3.0)),
        }
    )

    @classmethod
    def _random_points(cls, rng, count):
        structures = ("ladder", "cascade", "parallel")
        return [
            {
                "w": int(rng.integers(6)),
                "s": structures[rng.integers(3)],
                "r": float(rng.random()),
            }
            for _ in range(count)
        ]

    @staticmethod
    def _records(metric_dicts):
        return [
            EvaluationRecord(point=(("x", i),), fidelity=1, metrics=m)
            for i, m in enumerate(metric_dicts)
        ]

    @given(
        seed=st.integers(0, 10_000),
        n_train=st.integers(2, 10),
        n_candidates=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_surrogate_rank_invariant_under_shuffle(
        self, seed, n_train, n_candidates
    ):
        """The model ranks a candidate list identically no matter what
        order the candidates are presented in — the property the
        pruned funnel's determinism guarantee rests on."""
        rng = np.random.default_rng(seed)
        training = self._random_points(rng, n_train)
        scores = [float(s) for s in rng.normal(size=n_train)]
        model = SurrogateModel(self.SPACE)
        assume(model.fit(training, scores))
        candidates = self._random_points(rng, n_candidates)
        baseline = [
            frozen_point(candidates[i]) for i in model.rank(candidates)
        ]
        permutation = rng.permutation(n_candidates)
        shuffled = [candidates[i] for i in permutation]
        again = [frozen_point(shuffled[i]) for i in model.rank(shuffled)]
        assert baseline == again

    @given(
        pool=st.lists(METRICS, min_size=1, max_size=12),
        wa=st.floats(0.0, 10.0),
        wb=st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_sum_selects_front_member(self, pool, wa, wb):
        """Any non-negative weighting picks a Pareto-front member."""
        records = self._records(pool)
        front_points = {
            r.point for r in pareto_front(records, self.OBJECTIVES)
        }
        choice = select_weighted_sum(records, self.OBJECTIVES, (wa, wb))
        assert choice.point in front_points

    @given(
        pool=st.lists(METRICS, min_size=1, max_size=12),
        a_first=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_lexicographic_selects_front_member(self, pool, a_first):
        """Any priority order picks a Pareto-front member, and the
        winner is optimal on the leading objective over the front."""
        records = self._records(pool)
        front = pareto_front(records, self.OBJECTIVES)
        front_points = {r.point for r in front}
        priority = ("a", "b") if a_first else ("b", "a")
        choice = select_lexicographic(
            records, self.OBJECTIVES, priority=priority
        )
        assert choice.point in front_points
        leading = next(
            o for o in self.OBJECTIVES if o.metric == priority[0]
        )
        best = min(leading.score(r.metrics) for r in front)
        assert leading.score(choice.metrics) == best


class TestGridProperties:
    @given(
        sizes=st.lists(st.integers(2, 12), min_size=1, max_size=4),
        resolution=st.integers(0, 3),
        budget=st.integers(4, 128),
    )
    @settings(max_examples=50, deadline=None)
    def test_grid_budget_and_membership(self, sizes, resolution, budget):
        space = DesignSpace(
            [
                DiscreteParameter(f"p{i}", tuple(range(size)))
                for i, size in enumerate(sizes)
            ]
        )
        grid = Region.full(space).grid(resolution, max_points=budget)
        assert 1 <= len(grid.points) <= budget
        for point in grid.points:
            space.validate_point(point)
        # Points are unique.
        keys = {tuple(sorted(p.items())) for p in grid.points}
        assert len(keys) == len(grid.points)


class TestPowerProperties:
    """Invariants of the power-aware cost engine (repro.power)."""

    THREE_OBJECTIVES = [
        Objective("area_mm2", Direction.MINIMIZE),
        Objective("energy_nj_per_bit", Direction.MINIMIZE),
        Objective("throughput_bps", Direction.MAXIMIZE),
    ]

    METRICS3 = st.fixed_dictionaries(
        {
            "area_mm2": st.sampled_from((0.0, 1.0, 2.0)),
            "energy_nj_per_bit": st.sampled_from((0.0, 1.0, 2.0)),
            "throughput_bps": st.sampled_from((0.0, 1.0, 2.0)),
        }
    )

    @staticmethod
    def _records(metric_dicts):
        return [
            EvaluationRecord(point=(("x", i),), fidelity=1, metrics=m)
            for i, m in enumerate(metric_dicts)
        ]

    @given(
        k=st.integers(3, 7),
        f_lo=st.integers(0, 9),
        f_step=st.integers(1, 9),
        width=st.sampled_from((8, 16, 32, 64)),
    )
    @settings(max_examples=40, deadline=None)
    def test_energy_monotone_in_feature_size(self, k, f_lo, f_step, width):
        """Dynamic energy never decreases when the feature size grows."""
        import dataclasses

        from repro.hardware import MachineConfig, estimate_energy
        from repro.hardware.trace import viterbi_program
        from repro.viterbi.metacore import instance_params, normalize_viterbi_point

        point = normalize_viterbi_point(
            {"G": "standard", "N": 1, "K": k, "Q": "hard",
             "L_mult": 5, "R1": 3, "R2": 4, "M": 0}
        )
        program = viterbi_program(instance_params(point))
        features = (0.13 + 0.05 * f_lo, 0.13 + 0.05 * (f_lo + f_step))
        machines = [
            MachineConfig(n_alus=2, feature_um=f, datapath_width=width)
            for f in features
        ]
        energies = [
            estimate_energy(program, machine).total_pj
            for machine in machines
        ]
        assert energies[0] <= energies[1]

    @given(
        k=st.integers(3, 7),
        w_lo=st.integers(4, 60),
        w_step=st.integers(1, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_energy_monotone_in_datapath_width(self, k, w_lo, w_step):
        """Dynamic energy never decreases when the datapath widens."""
        from repro.hardware import MachineConfig, estimate_energy
        from repro.hardware.trace import viterbi_program
        from repro.viterbi.metacore import instance_params, normalize_viterbi_point

        point = normalize_viterbi_point(
            {"G": "standard", "N": 1, "K": k, "Q": "hard",
             "L_mult": 5, "R1": 3, "R2": 4, "M": 0}
        )
        program = viterbi_program(instance_params(point))
        energies = [
            estimate_energy(
                program,
                MachineConfig(
                    n_alus=2, feature_um=0.25, datapath_width=w
                ),
            ).total_pj
            for w in (w_lo, w_lo + w_step)
        ]
        assert energies[0] <= energies[1]

    @given(
        feature=st.sampled_from((0.13, 0.18, 0.25, 0.35, 0.6, 0.8, 1.2)),
        t_lo=st.floats(0.0, 1.0),
        t_hi=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_dvfs_frequency_monotone_in_vdd(self, feature, t_lo, t_hi):
        """Max clock frequency never decreases with the supply."""
        from repro.power import dvfs_bounds, max_frequency_mhz, technology_node

        node = technology_node(feature)
        low, high = dvfs_bounds(node)
        va, vb = sorted(
            (low + (high - low) * t_lo, low + (high - low) * t_hi)
        )
        assert max_frequency_mhz(node, va) <= max_frequency_mhz(node, vb)

    @given(ma=METRICS3, mb=METRICS3)
    @settings(max_examples=60, deadline=None)
    def test_three_objective_dominance_antisymmetric(self, ma, mb):
        assert not dominates(ma, ma, self.THREE_OBJECTIVES)
        assert not (
            dominates(ma, mb, self.THREE_OBJECTIVES)
            and dominates(mb, ma, self.THREE_OBJECTIVES)
        )

    @given(pool=st.lists(METRICS3, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_three_objective_front_minimal_and_complete(self, pool):
        """3-objective fronts keep the 2-objective invariants: no member
        dominates another; every excluded record is dominated."""
        records = self._records(pool)
        front = pareto_front(records, self.THREE_OBJECTIVES)
        for record in front:
            for other in front:
                if record is not other:
                    assert not dominates(
                        record.metrics, other.metrics, self.THREE_OBJECTIVES
                    )
        front_points = {r.point for r in front}
        for record in records:
            if record.point not in front_points:
                assert any(
                    dominates(
                        member.metrics, record.metrics, self.THREE_OBJECTIVES
                    )
                    for member in front
                )

    @given(
        pool=st.lists(METRICS3, min_size=1, max_size=12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_three_objective_front_order_deterministic(self, pool, seed):
        """front_sort_key gives one canonical order on the energy axis
        too, independent of insertion order."""
        records = self._records(pool)
        shuffled = records[:]
        np.random.default_rng(seed).shuffle(shuffled)
        base = pareto_front(records, self.THREE_OBJECTIVES)
        again = pareto_front(shuffled, self.THREE_OBJECTIVES)
        assert [r.point for r in base] == [r.point for r in again]
        assert [
            front_sort_key(r, self.THREE_OBJECTIVES) for r in base
        ] == sorted(
            front_sort_key(r, self.THREE_OBJECTIVES) for r in base
        )
