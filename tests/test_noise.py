"""Tests for round-off noise analysis (repro.iir.noise)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import FilterDesignError
from repro.iir.design import LowpassSpec, design_filter
from repro.iir.noise import (
    NoiseReport,
    compare_structures,
    l2_norm_squared,
    noise_report,
)
from repro.iir.structures import realize
from repro.iir.transfer import TransferFunction


@pytest.fixture(scope="module")
def lowpass_tf():
    spec = LowpassSpec(0.25 * math.pi, 0.45 * math.pi, 0.05, 0.02)
    return design_filter(spec, "elliptic").to_tf()


class TestL2Norm:
    def test_fir_norm_exact(self):
        tf = TransferFunction([0.6, -0.8], [1.0])
        assert l2_norm_squared(tf) == pytest.approx(0.36 + 0.64)

    def test_one_pole_geometric_series(self):
        # h[n] = a^n: sum h^2 = 1 / (1 - a^2).
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert l2_norm_squared(tf) == pytest.approx(1.0 / 0.75, rel=1e-9)

    def test_unstable_rejected(self):
        with pytest.raises(FilterDesignError):
            l2_norm_squared(TransferFunction([1.0], [1.0, -1.2]))


class TestNoiseReports:
    @pytest.mark.parametrize(
        "name", ["direct1", "direct2", "cascade", "parallel", "ladder",
                 "statespace"]
    )
    def test_positive_gain(self, name, lowpass_tf):
        report = noise_report(realize(name, lowpass_tf))
        assert report.noise_gain > 0
        assert report.n_injection_points >= 1
        assert report.structure == name

    def test_continued_fraction_unsupported(self, lowpass_tf):
        realization = realize("continued", lowpass_tf)
        with pytest.raises(FilterDesignError):
            noise_report(realization)

    def test_direct_form_noisier_than_cascade(self, lowpass_tf):
        """The textbook result: high-order direct forms amplify
        round-off noise far more than cascades of biquads."""
        direct = noise_report(realize("direct2", lowpass_tf))
        cascade = noise_report(realize("cascade", lowpass_tf))
        assert direct.noise_gain > cascade.noise_gain

    def test_parallel_among_the_quietest(self, lowpass_tf):
        reports = compare_structures(
            lowpass_tf, ["direct2", "cascade", "parallel"]
        )
        assert reports[0].structure in ("parallel", "cascade")
        assert reports[-1].structure == "direct2"

    def test_noise_variance_scales_with_word_length(self, lowpass_tf):
        report = noise_report(realize("cascade", lowpass_tf))
        # Each extra data bit buys 20*log10(2) ~ 6.02 dB of noise floor.
        delta = report.output_noise_db(12) - report.output_noise_db(16)
        assert delta == pytest.approx(80.0 * math.log10(2.0), abs=1e-9)

    def test_variance_formula(self, lowpass_tf):
        report = noise_report(realize("cascade", lowpass_tf))
        word = 12
        lsb = 2.0 ** (-(word - 1))
        assert report.output_noise_variance(word) == pytest.approx(
            report.noise_gain * lsb * lsb / 12.0
        )

    def test_compare_structures_sorted(self, lowpass_tf):
        reports = compare_structures(
            lowpass_tf, ["direct2", "cascade", "parallel", "ladder"]
        )
        gains = [r.noise_gain for r in reports]
        assert gains == sorted(gains)

    def test_narrowband_amplifies_direct_form_noise(self):
        """Noise gain of the direct form explodes as poles approach the
        unit circle — the mechanism coupling structure choice to word
        length."""
        mild = design_filter(
            LowpassSpec(0.3 * math.pi, 0.6 * math.pi, 0.1, 0.05), "elliptic"
        ).to_tf()
        sharp = design_filter(
            LowpassSpec(0.3 * math.pi, 0.34 * math.pi, 0.02, 0.01), "elliptic"
        ).to_tf()
        gain_mild = noise_report(realize("direct2", mild)).noise_gain
        gain_sharp = noise_report(realize("direct2", sharp)).noise_gain
        assert gain_sharp > 10 * gain_mild
