"""Tests for the power-aware cost engine (repro.power).

Three layers of coverage:

1. unit behavior of the technology table, DVFS law, leakage model,
   and ``PowerModel`` reports;
2. the opt-in gating contract — with ``power=None`` every fingerprint
   and metric is byte-identical to the classic cost engine, and a
   nominal-Vdd power config changes *only* the energy metrics;
3. end-to-end: 3-objective goals, an energy-capped search, an
   energy-constrained atlas ``recommend()``, wire payloads, and the
   ``trace-report`` power line.
"""

from __future__ import annotations

import math

import pytest

from repro.core.objectives import (
    BERThresholdCurve,
    Constraint,
    DesignGoal,
    Objective,
)
from repro.core.search import SearchConfig
from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_FEATURE_UM, clock_mhz
from repro.iir.metacore import IIRMetacoreEvaluator, IIRSpec
from repro.power import (
    LEAKAGE_NW_PER_BIT,
    OperatingPoint,
    PowerConfig,
    PowerModel,
    TECHNOLOGY_NODES,
    VDD_REFERENCE_V,
    dvfs_bounds,
    frequency_scale,
    leakage_power_mw,
    max_frequency_mhz,
    technology_node,
)
from repro.viterbi.metacore import (
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    normalize_viterbi_point,
)

CURVE = BERThresholdCurve.single(2.0, 1e-2)

#: The Table-3-style golden scenario point (cheap, always feasible).
POINT = normalize_viterbi_point(
    {"G": "standard", "N": 1, "K": 3, "Q": "hard",
     "L_mult": 5, "R1": 3, "R2": 4, "M": 0}
)

IIR_POINT = {
    "structure": "cascade",
    "family": "elliptic",
    "word_length": 12,
    "ripple_allocation": 0.6,
}


class TestTechnologyTable:
    def test_anchor_rows_returned_verbatim(self):
        for node in TECHNOLOGY_NODES:
            assert technology_node(node.feature_um) is node

    def test_anchor_is_the_tr4101_generation(self):
        node = technology_node(TR4101_FEATURE_UM)
        assert node.vdd_nominal_v == VDD_REFERENCE_V
        assert node.leakage_factor == 1.0
        assert node.capacitance_factor == 1.0

    def test_interpolation_brackets_the_anchors(self):
        node = technology_node(0.30)
        above, below = technology_node(0.35), technology_node(0.25)
        assert below.vdd_nominal_v < node.vdd_nominal_v < above.vdd_nominal_v
        assert below.vth_v < node.vth_v < above.vth_v
        assert above.leakage_factor < node.leakage_factor < below.leakage_factor

    def test_out_of_span_rejected(self):
        with pytest.raises(ConfigurationError):
            technology_node(0.09)
        with pytest.raises(ConfigurationError):
            technology_node(2.0)
        with pytest.raises(ConfigurationError):
            technology_node(-1.0)

    def test_capacitance_factor_linear_in_feature(self):
        assert technology_node(0.18).capacitance_factor == pytest.approx(
            0.18 / 0.35
        )

    def test_invalid_node_rejected(self):
        from repro.power import TechnologyNode

        with pytest.raises(ConfigurationError):
            TechnologyNode(0.35, 3.3, 3.4, 1.0)  # vth above vdd
        with pytest.raises(ConfigurationError):
            TechnologyNode(0.35, 3.3, 0.6, -1.0)


class TestDVFS:
    def test_exactly_one_at_nominal(self):
        for node in TECHNOLOGY_NODES:
            assert frequency_scale(node, node.vdd_nominal_v) == 1.0

    def test_nominal_reproduces_clock_model(self):
        node = technology_node(0.35)
        assert max_frequency_mhz(node, node.vdd_nominal_v, 32) == clock_mhz(
            0.35, 32
        )

    def test_scale_monotone_in_vdd(self):
        node = technology_node(0.25)
        low, high = dvfs_bounds(node)
        vdds = [low + (high - low) * i / 10 for i in range(11)]
        scales = [frequency_scale(node, v) for v in vdds]
        assert scales == sorted(scales)
        assert scales[0] < 1.0 < scales[-1]

    def test_out_of_window_rejected(self):
        node = technology_node(0.35)
        low, high = dvfs_bounds(node)
        with pytest.raises(ConfigurationError):
            frequency_scale(node, low - 0.01)
        with pytest.raises(ConfigurationError):
            OperatingPoint(node, high + 0.01)

    def test_nominal_operating_point(self):
        node = technology_node(0.25)
        op = OperatingPoint.nominal(node)
        assert op.frequency_scale == 1.0
        assert op.frequency_mhz(32) == clock_mhz(0.25, 32)


class TestLeakage:
    def test_linear_in_bits_and_vdd(self):
        node = technology_node(0.35)
        base = leakage_power_mw(1000, node, node.vdd_nominal_v)
        assert base == pytest.approx(
            1000 * LEAKAGE_NW_PER_BIT * 1e-6
        )
        assert leakage_power_mw(2000, node, node.vdd_nominal_v) == (
            pytest.approx(2 * base)
        )
        half_v = leakage_power_mw(1000, node, node.vdd_nominal_v / 2)
        assert half_v == pytest.approx(base / 2)

    def test_deep_submicron_leaks_more(self):
        bits = 10_000
        coarse = leakage_power_mw(
            bits, technology_node(0.35), 3.3
        )
        fine = leakage_power_mw(bits, technology_node(0.13), 3.3 * 1.3)
        assert fine > coarse

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            leakage_power_mw(-1, technology_node(0.35), 3.3)


class TestPowerConfig:
    def test_defaults_resolve_to_spec_node_nominal(self):
        op = PowerConfig().operating_point(0.25)
        assert op.node.feature_um == 0.25
        assert op.vdd_v == op.node.vdd_nominal_v
        assert op.frequency_scale == 1.0

    def test_overrides(self):
        op = PowerConfig(tech_node_um=0.18, vdd_v=1.5).operating_point(0.25)
        assert op.node.feature_um == 0.18
        assert op.vdd_v == 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(tech_node_um=-0.1)
        with pytest.raises(ConfigurationError):
            PowerConfig(max_power_mw=0.0)
        with pytest.raises(ConfigurationError):
            PowerConfig(max_energy_nj=-5.0)

    def test_fingerprint_fragment_excludes_caps(self):
        # Caps shape the goal, not the metrics: configs that differ
        # only in caps must share a cache namespace.
        a = PowerConfig(max_energy_nj=1.0)
        b = PowerConfig(max_power_mw=2.0, objective=False)
        assert a.fingerprint_fragment() == b.fingerprint_fragment()
        assert (
            PowerConfig(vdd_v=2.0).fingerprint_fragment()
            != a.fingerprint_fragment()
        )

    def test_payload_round_trip(self):
        config = PowerConfig(
            tech_node_um=0.18, vdd_v=1.5, max_energy_nj=3.0, objective=False
        )
        assert PowerConfig.from_payload(config.to_payload()) == config
        assert PowerConfig.from_payload(None) is None


class TestPowerModel:
    def _model(self, **kwargs):
        return PowerModel.for_spec(0.25, PowerConfig(**kwargs))

    def test_viterbi_report_units(self):
        from repro.hardware.vliw import optimize_machine
        from repro.hardware.trace import viterbi_program
        from repro.viterbi.metacore import instance_params

        program = viterbi_program(instance_params(POINT))
        estimate = optimize_machine(program, 1e6, feature_um=0.25)
        report = self._model().viterbi_report(
            program, estimate.machine, bits_per_s=estimate.throughput_bps
        )
        assert report.dynamic_nj > 0
        assert report.leakage_nj > 0
        assert report.energy_nj == pytest.approx(
            report.dynamic_nj + report.leakage_nj
        )
        assert report.power_mw == pytest.approx(
            report.dynamic_power_mw + report.leakage_power_mw
        )
        # energy/item * items/s must equal the reported average power.
        assert report.power_mw == pytest.approx(
            report.energy_nj * estimate.throughput_bps * 1e-6
        )

    def test_lower_vdd_lower_energy(self):
        from repro.hardware.vliw import optimize_machine
        from repro.hardware.trace import viterbi_program
        from repro.viterbi.metacore import instance_params

        program = viterbi_program(instance_params(POINT))
        machine = optimize_machine(program, 1e6, feature_um=0.25).machine
        nominal = self._model().viterbi_report(program, machine, 1e6)
        scaled = self._model(vdd_v=2.0).viterbi_report(program, machine, 1e6)
        assert scaled.energy_nj < nominal.energy_nj
        assert scaled.frequency_mhz < nominal.frequency_mhz


class TestGatingBitIdentity:
    def test_power_off_fingerprint_has_no_power_fragment(self):
        spec = ViterbiSpec(1e6, CURVE)
        assert "power" not in ViterbiMetacoreEvaluator(spec).fingerprint()
        ispec = IIRSpec.paper(4.0)
        assert "power" not in IIRMetacoreEvaluator(ispec).fingerprint()

    def test_power_on_fingerprint_differs(self):
        off = ViterbiMetacoreEvaluator(ViterbiSpec(1e6, CURVE)).fingerprint()
        on = ViterbiMetacoreEvaluator(
            ViterbiSpec(1e6, CURVE, power=PowerConfig())
        ).fingerprint()
        assert on != off
        assert on.startswith(off)

    def test_viterbi_nominal_power_only_adds_energy_keys(self):
        off = ViterbiMetacoreEvaluator(ViterbiSpec(1e6, CURVE))
        on = ViterbiMetacoreEvaluator(
            ViterbiSpec(1e6, CURVE, power=PowerConfig())
        )
        m_off = off.evaluate(POINT, 0)
        m_on = on.evaluate(POINT, 0)
        assert set(m_on) == set(m_off) | {"energy_nj_per_bit", "power_mw"}
        for key, value in m_off.items():
            assert m_on[key] == value, key

    def test_iir_nominal_power_only_adds_energy_keys(self):
        off = IIRMetacoreEvaluator(IIRSpec.paper(4.0))
        on = IIRMetacoreEvaluator(
            IIRSpec.paper(4.0, power=PowerConfig())
        )
        m_off = off.evaluate(IIR_POINT, 0)
        m_on = on.evaluate(IIR_POINT, 0)
        assert set(m_on) == set(m_off) | {"energy_nj_per_sample", "power_mw"}
        for key, value in m_off.items():
            assert m_on[key] == value, key

    def test_goal_unchanged_with_power_off(self):
        goal = ViterbiSpec(1e6, CURVE).goal()
        assert [o.metric for o in goal.objectives] == ["area_mm2"]
        assert goal.constraints == []


class TestThreeObjectiveGoals:
    def test_viterbi_goal_gains_energy_axis(self):
        spec = ViterbiSpec(
            1e6, CURVE,
            power=PowerConfig(max_energy_nj=5.0, max_power_mw=100.0),
        )
        goal = spec.goal()
        assert [o.metric for o in goal.objectives] == [
            "area_mm2", "energy_nj_per_bit",
        ]
        bounds = {c.metric: c.upper for c in goal.all_constraints()}
        assert bounds["energy_nj_per_bit"] == 5.0
        assert bounds["power_mw"] == 100.0

    def test_constraint_only_mode(self):
        spec = IIRSpec.paper(
            4.0, power=PowerConfig(max_energy_nj=5.0, objective=False)
        )
        goal = spec.goal()
        assert [o.metric for o in goal.objectives] == ["area_mm2"]
        assert any(
            c.metric == "energy_nj_per_sample" for c in goal.constraints
        )

    def test_compare_breaks_area_ties_on_energy(self):
        goal = DesignGoal(
            objectives=[Objective("area_mm2"), Objective("energy_nj_per_bit")]
        )
        a = {"area_mm2": 1.0, "energy_nj_per_bit": 0.5}
        b = {"area_mm2": 1.0, "energy_nj_per_bit": 0.9}
        assert goal.compare(a, b) < 0
        assert goal.compare(b, a) > 0
        assert goal.compare(a, dict(a)) == 0

    def test_compare_primary_still_dominates(self):
        goal = DesignGoal(
            objectives=[Objective("area_mm2"), Objective("energy_nj_per_bit")]
        )
        small_hot = {"area_mm2": 1.0, "energy_nj_per_bit": 9.0}
        big_cool = {"area_mm2": 2.0, "energy_nj_per_bit": 0.1}
        assert goal.compare(small_hot, big_cool) < 0

    def test_frontier_spans_energy_axis(self):
        from repro.atlas.frontier import frontier_objectives

        goal = ViterbiSpec(
            1e6, CURVE, power=PowerConfig(max_power_mw=10.0)
        ).goal()
        metrics = [o.metric for o in frontier_objectives(goal)]
        assert "area_mm2" in metrics
        assert "energy_nj_per_bit" in metrics
        assert "power_mw" in metrics


class TestEndToEnd:
    CONFIG = SearchConfig(max_resolution=1, refine_top_k=1)
    FIXED = {"G": "standard", "N": 1, "K": 3, "Q": "hard"}

    def _search(self, power):
        spec = ViterbiSpec(1e6, CURVE, power=power)
        return ViterbiMetaCore(
            spec, fixed=dict(self.FIXED), config=self.CONFIG
        ).search()

    def test_power_off_selection_untouched_by_import(self):
        result = self._search(None)
        assert result.feasible
        assert "energy_nj_per_bit" not in result.best_metrics

    def test_energy_capped_search_feasible(self):
        baseline = self._search(PowerConfig())
        assert baseline.feasible
        cap = baseline.best_metrics["energy_nj_per_bit"] * 1.5
        result = self._search(PowerConfig(max_energy_nj=cap))
        assert result.feasible
        assert result.best_metrics["energy_nj_per_bit"] <= cap

    def test_impossible_energy_cap_infeasible(self):
        result = self._search(PowerConfig(max_energy_nj=1e-9))
        assert not result.feasible

    def test_atlas_recommend_with_energy_constraint(self, tmp_path):
        atlas = str(tmp_path / "atlas.jsonl")
        spec = ViterbiSpec(1e6, CURVE, power=PowerConfig())
        metacore = ViterbiMetaCore(
            spec, fixed=dict(self.FIXED), config=self.CONFIG,
            atlas_path=atlas,
        )
        result = metacore.search()
        assert result.feasible
        cap = result.best_metrics["energy_nj_per_bit"] * 1.2
        fresh = ViterbiMetaCore(
            spec, fixed=dict(self.FIXED), config=self.CONFIG,
            atlas_path=atlas,
        )
        recommendation = fresh.recommend({"energy_nj_per_bit": cap})
        assert recommendation.feasible
        assert recommendation.n_evaluations == 0
        assert recommendation.metrics["energy_nj_per_bit"] <= cap


class TestWirePayloads:
    def test_power_off_payload_has_no_power_key(self):
        from repro.serve.protocol import spec_from_payload, spec_to_payload

        payload = spec_to_payload(ViterbiSpec(1e6, CURVE))
        assert "power" not in payload
        assert spec_to_payload(IIRSpec.paper(4.0)).get("power") is None
        assert spec_from_payload(payload).power is None

    def test_viterbi_round_trip(self):
        from repro.serve.protocol import spec_from_payload, spec_to_payload

        spec = ViterbiSpec(
            1e6, CURVE,
            power=PowerConfig(tech_node_um=0.18, vdd_v=1.5, max_energy_nj=2.0),
        )
        restored = spec_from_payload(spec_to_payload(spec))
        assert restored.power == spec.power

    def test_iir_round_trip(self):
        from repro.serve.protocol import spec_from_payload, spec_to_payload

        spec = IIRSpec.paper(
            4.0, power=PowerConfig(max_power_mw=5.0, objective=False)
        )
        restored = spec_from_payload(spec_to_payload(spec))
        assert restored.power == spec.power


class TestTraceReport:
    def test_power_line_when_priced(self):
        from repro.observability.export import (
            TraceSummary,
            format_trace_report,
        )

        summary = TraceSummary(
            metrics={
                "power.priced": {"type": "counter", "value": 8},
                "power.priced.f0": {"type": "counter", "value": 6},
                "power.priced.f3": {"type": "counter", "value": 2},
            },
        )
        report = format_trace_report(summary)
        assert "power: 8 evaluations energy-priced (f0=75%, f3=25%)" in report
        # power.* counters fold into the power line, not the generic dump.
        assert "power.priced" not in report

    def test_no_power_line_without_telemetry(self):
        from repro.observability.export import (
            TraceSummary,
            format_trace_report,
        )

        assert "power:" not in format_trace_report(TraceSummary())

    def test_counters_increment_on_priced_evaluations(self):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        before = registry.counter("power.priced").value
        spec = ViterbiSpec(1e6, CURVE, power=PowerConfig())
        ViterbiMetacoreEvaluator(spec).evaluate(POINT, 0)
        assert registry.counter("power.priced").value == before + 1
