"""Differential and behavioral tests of the evaluation service.

The load-bearing property is the **bit-identical guarantee**: whatever
the service does — micro-batching, shuffled arrival order, forced batch
splits, concurrent clients, worker threads — every evaluation record it
answers must be *byte-identical* (compared as canonical JSON) to a
serial one-shot evaluation of the same (point, fidelity).  The
remaining tests cover the service mechanics the guarantee rides on:
admission control, timeouts, resilience, the wire protocol, status,
and shutdown.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List

import pytest

from repro.core import BERThresholdCurve, SearchConfig
from repro.errors import ConfigurationError
from repro.serve import (
    MicroBatcher,
    ServeClient,
    ServeHandle,
    ServeRequestError,
    ServiceConfig,
    encode_message,
    decode_message,
    spec_to_payload,
)


def canonical(record: Dict[str, float]) -> bytes:
    """The byte-level form differential comparisons use."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


class RecordingEvaluator:
    """Deterministic toy evaluator that logs every batch it prices."""

    max_fidelity = 2

    def __init__(self, delay_s: float = 0.0) -> None:
        self.delay_s = delay_s
        self.batch_sizes: List[int] = []
        self._lock = threading.Lock()

    def fingerprint(self) -> str:
        return f"recording:delay={self.delay_s}"

    def evaluate(self, point, fidelity):
        x = float(point["x"])
        y = float(point.get("y", 0.0))
        # Deliberately irrational arithmetic: any re-ordering or
        # double-evaluation bug shows up in the low mantissa bits.
        return {
            "area_mm2": (x * 1.37 + y / 3.0) * (fidelity + 1) + x**1.5,
            "spec_violation": 0.0 if x >= 0 else 1.0,
            "fidelity_echo": float(fidelity),
        }

    def evaluate_many(self, points, fidelity):
        return [
            t.metrics for t in self.evaluate_many_timed(points, fidelity)
        ]

    def evaluate_many_timed(self, points, fidelity):
        from repro.core.evaluation import TimedEvaluation

        with self._lock:
            self.batch_sizes.append(len(points))
        if self.delay_s:
            time.sleep(self.delay_s)
        return [
            TimedEvaluation(
                metrics=self.evaluate(p, fidelity), elapsed_s=0.0
            )
            for p in points
        ]


class PoisonedEvaluator(RecordingEvaluator):
    """Fails permanently on x == 13 (the poisoned point)."""

    def fingerprint(self) -> str:
        return "poisoned:v1"

    def evaluate(self, point, fidelity):
        if float(point["x"]) == 13.0:
            raise ValueError("poisoned point")
        return super().evaluate(point, fidelity)


def started_handle(**config_kwargs) -> ServeHandle:
    config = ServiceConfig(**{"linger_s": 0.002, **config_kwargs})
    return ServeHandle(config).start()


POINTS = [{"x": float(i), "y": float(i % 5)} for i in range(24)]


class TestDifferentialEval:
    """Serve path == serial path, byte for byte."""

    def serial_records(self, factory, points, fidelity):
        reference = factory()
        return [canonical(reference.evaluate(p, fidelity)) for p in points]

    def test_concurrent_clients_byte_identical(self):
        evaluator = RecordingEvaluator(delay_s=0.002)
        with started_handle(max_batch=4) as handle:
            handle.service.register_evaluator("toy", evaluator)
            results: Dict[int, bytes] = {}
            errors: List[BaseException] = []
            lock = threading.Lock()

            def client_worker(worker: int) -> None:
                # Each client walks the points in its own shuffled order.
                order = list(range(len(POINTS)))
                stride = 5 + worker
                order = [
                    order[(i * stride) % len(order)]
                    for i in range(len(order))
                ]
                try:
                    with handle.client() as client:
                        for index in order:
                            metrics = client.eval(
                                POINTS[index], fidelity=1, session="toy"
                            )
                            with lock:
                                results[index] = canonical(metrics)
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_worker, args=(w,))
                for w in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        serial = self.serial_records(RecordingEvaluator, POINTS, 1)
        assert [results[i] for i in range(len(POINTS))] == serial
        # The service must respect the batch bound...
        assert max(evaluator.batch_sizes) <= 4
        # ...and actually coalesce under concurrent load.
        assert max(evaluator.batch_sizes) >= 2

    def test_forced_batch_splits_byte_identical(self):
        """max_batch=1 vs max_batch=8: identical records either way."""
        outcomes = []
        for max_batch in (1, 8):
            evaluator = RecordingEvaluator()
            with started_handle(max_batch=max_batch) as handle:
                session = handle.service.register_evaluator(
                    "toy", evaluator
                )
                futures = [
                    handle.submit_async(
                        handle.service.submit_point(session, point, 2)
                    )
                    for point in POINTS
                ]
                outcomes.append(
                    [canonical(f.result(30)) for f in futures]
                )
            if max_batch == 1:
                assert max(evaluator.batch_sizes) == 1
        assert outcomes[0] == outcomes[1]
        assert outcomes[0] == self.serial_records(
            RecordingEvaluator, POINTS, 2
        )

    def test_shuffled_arrival_order_byte_identical(self):
        evaluator = RecordingEvaluator()
        with started_handle(max_batch=3) as handle:
            session = handle.service.register_evaluator("toy", evaluator)
            shuffled = list(reversed(POINTS))
            futures = [
                handle.submit_async(
                    handle.service.submit_point(session, point, 0)
                )
                for point in shuffled
            ]
            records = [canonical(f.result(30)) for f in futures]
        serial = self.serial_records(RecordingEvaluator, shuffled, 0)
        assert records == serial

    def test_real_viterbi_point_byte_identical(self):
        from repro.viterbi import ViterbiSpec
        from repro.viterbi.metacore import ViterbiMetacoreEvaluator

        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(2.0, 1e-2),
        )
        point = {
            "K": 3, "L_mult": 3, "G": "standard", "R1": 1, "R2": 3,
            "Q": "hard", "N": 1, "M": 0,
        }
        with started_handle(max_batch=4) as handle:
            with handle.client() as client:
                served = client.eval(
                    point, fidelity=0, spec=spec_to_payload(spec)
                )
        serial = ViterbiMetacoreEvaluator(spec).evaluate(point, 0)
        assert canonical(served) == canonical(serial)


class TestDifferentialSearch:
    def test_iir_search_selection_matches_direct(self):
        """A search through the service picks the same winner as the
        in-process facade — same point, same metrics, same count."""
        from repro.iir import IIRMetaCore, IIRSpec

        spec = IIRSpec.paper(4.0)
        config = SearchConfig(max_resolution=1, refine_top_k=2)
        direct = IIRMetaCore(spec, config=config).search()
        with started_handle(max_batch=8) as handle:
            with handle.client() as client:
                served = client.search(
                    spec=spec_to_payload(spec),
                    config={"max_resolution": 1, "refine_top_k": 2},
                )
        assert served["feasible"] == direct.feasible
        assert served["best_point"] == direct.best_point
        assert canonical(served["best_metrics"]) == canonical(
            direct.best_metrics
        )
        assert served["n_evaluations"] == direct.log.n_evaluations


class TestBackpressure:
    def test_admission_control_rejects_overload(self):
        evaluator = RecordingEvaluator(delay_s=0.1)
        with started_handle(
            max_batch=1, max_pending=2, linger_s=0.0
        ) as handle:
            session = handle.service.register_evaluator("slow", evaluator)
            futures = [
                handle.submit_async(
                    handle.service.submit_point(session, {"x": float(i)}, 0)
                )
                for i in range(8)
            ]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(("ok", future.result(30)))
                except Exception as exc:
                    outcomes.append(("err", exc))
        codes = [
            getattr(exc, "code", None)
            for kind, exc in outcomes
            if kind == "err"
        ]
        assert codes and all(code == "overloaded" for code in codes)
        # Admitted requests still answer correctly.
        reference = RecordingEvaluator()
        for (kind, value), i in zip(outcomes, range(8)):
            if kind == "ok":
                assert value == reference.evaluate({"x": float(i)}, 0)
        status = handle.service.status()
        assert status["rejected"] == len(codes)

    def test_per_request_timeout(self):
        evaluator = RecordingEvaluator(delay_s=0.5)
        with started_handle(max_batch=1, linger_s=0.0) as handle:
            session = handle.service.register_evaluator("slow", evaluator)
            future = handle.submit_async(
                handle.service.submit_point(
                    session, {"x": 1.0}, 0, timeout_s=0.05
                )
            )
            with pytest.raises(Exception) as info:
                future.result(30)
            assert getattr(info.value, "code", None) == "timeout"
            assert handle.service.status()["timeouts"] == 1

    def test_client_timeout_over_the_wire(self):
        evaluator = RecordingEvaluator(delay_s=0.5)
        with started_handle(max_batch=1, linger_s=0.0) as handle:
            handle.service.register_evaluator("slow", evaluator)
            with handle.client() as client:
                with pytest.raises(ServeRequestError) as info:
                    client.eval(
                        {"x": 1.0}, session="slow", timeout_s=0.05
                    )
                assert info.value.code == "timeout"


class TestResilience:
    def test_poisoned_point_quarantined_not_fatal(self):
        evaluator = PoisonedEvaluator()
        with started_handle(
            max_batch=4, resilient=True, max_retries=0
        ) as handle:
            handle.service.register_evaluator("poison", evaluator)
            with handle.client() as client:
                poisoned = client.eval({"x": 13.0}, session="poison")
                healthy = client.eval({"x": 2.0}, session="poison")
                status = client.status()
        assert poisoned["evaluation_failed"] == 1.0
        assert poisoned["area_mm2"] == float("inf")
        reference = PoisonedEvaluator()
        assert healthy == reference.evaluate({"x": 2.0}, 0)
        (session_stats,) = status["sessions"].values()
        assert session_stats["resilience"]["quarantined"] == 1

    def test_unprotected_poison_fails_only_its_request(self):
        evaluator = PoisonedEvaluator()
        with started_handle(max_batch=1, linger_s=0.0) as handle:
            handle.service.register_evaluator("poison", evaluator)
            with handle.client() as client:
                with pytest.raises(ServeRequestError) as info:
                    client.eval({"x": 13.0}, session="poison")
                assert info.value.code == "evaluation_failed"
                # The service survives and keeps answering.
                healthy = client.eval({"x": 2.0}, session="poison")
        assert healthy == PoisonedEvaluator().evaluate({"x": 2.0}, 0)


class TestCaching:
    def test_repeat_points_hit_shared_cache(self):
        evaluator = RecordingEvaluator()
        with started_handle(max_batch=4) as handle:
            handle.service.register_evaluator("toy", evaluator)
            with handle.client() as client:
                first = client.eval({"x": 7.0}, session="toy")
                second = client.eval({"x": 7.0}, session="toy")
                status = client.status()
        assert canonical(first) == canonical(second)
        (session_stats,) = status["sessions"].values()
        assert session_stats["cache_hits"] >= 1
        assert session_stats["hit_ratio"] > 0
        # The point was computed exactly once.
        assert sum(evaluator.batch_sizes) == 1

    def test_persistent_cache_warm_restart(self, tmp_path):
        from repro.iir import IIRSpec

        cache = str(tmp_path / "serve-cache.jsonl")
        payload = spec_to_payload(IIRSpec.paper(4.0))
        point = {
            "structure": "cascade", "family": "elliptic",
            "word_length": 12, "ripple_allocation": 0.85,
        }
        with started_handle(cache_path=cache) as handle:
            with handle.client() as client:
                cold = client.eval(point, spec=payload)
        with started_handle(cache_path=cache) as handle:
            with handle.client() as client:
                warm = client.eval(point, spec=payload)
                status = client.status()
        assert canonical(cold) == canonical(warm)
        assert status["persistent_hits"] == 1
        assert status["store"]["entries"] >= 1


class TestProtocolAndStatus:
    def test_status_shape(self):
        with started_handle(max_batch=4) as handle:
            handle.service.register_evaluator(
                "toy", RecordingEvaluator()
            )
            with handle.client() as client:
                assert client.ping() == {"pong": True, "protocol": 1}
                client.eval({"x": 1.0}, session="toy")
                status = client.status()
        assert status["running"] is True
        assert status["requests"] == 1
        assert status["batches"] == 1
        assert status["batch_size"]["count"] == 1
        assert status["batch_size"]["mean"] == 1.0
        assert status["latency_s"]["count"] == 1
        assert status["latency_s"]["p99"] >= status["latency_s"]["p50"]
        assert status["queue_depth"] == 0

    def test_unknown_session_is_bad_request(self):
        with started_handle() as handle:
            with handle.client() as client:
                with pytest.raises(ServeRequestError) as info:
                    client.eval({"x": 1.0}, session="nope")
                assert info.value.code == "bad_request"

    def test_unknown_op_and_garbage_line(self):
        with started_handle() as handle:
            with socket.create_connection(handle.address, timeout=10) as s:
                stream = s.makefile("rwb")
                stream.write(encode_message({"id": 1, "op": "frobnicate"}))
                stream.flush()
                response = decode_message(stream.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                stream.write(b"this is not json\n")
                stream.flush()
                response = decode_message(stream.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "protocol"

    def test_fidelity_validation(self):
        with started_handle() as handle:
            handle.service.register_evaluator(
                "toy", RecordingEvaluator()
            )
            with handle.client() as client:
                with pytest.raises(ServeRequestError) as info:
                    client.eval({"x": 1.0}, fidelity=9, session="toy")
                assert info.value.code == "bad_request"

    def test_duplicate_registration_rejected(self):
        with started_handle() as handle:
            handle.service.register_evaluator("toy", RecordingEvaluator())
            with pytest.raises(ConfigurationError):
                handle.service.register_evaluator(
                    "toy", RecordingEvaluator()
                )


class TestShutdown:
    def test_clean_shutdown_via_client(self):
        handle = started_handle()
        handle.service.register_evaluator("toy", RecordingEvaluator())
        with handle.client() as client:
            client.eval({"x": 1.0}, session="toy")
            client.shutdown()
        deadline = time.monotonic() + 10
        while handle._thread is not None and handle._thread.is_alive():
            if time.monotonic() > deadline:
                pytest.fail("server thread did not exit")
            time.sleep(0.01)
        assert handle.service.status()["running"] is False
        with pytest.raises(OSError):
            socket.create_connection(handle.address, timeout=1)

    def test_stop_is_idempotent(self):
        handle = started_handle()
        handle.stop()
        handle.stop()
        assert handle.service.status()["running"] is False


class TestMicroBatcherUnit:
    def test_linger_and_bound(self):
        import asyncio

        async def scenario():
            ran: List[List[int]] = []

            async def run_batch(key, requests):
                ran.append([r.point["x"] for r in requests])
                for request in requests:
                    request.future.set_result({"ok": 1.0})

            batcher = MicroBatcher(
                run_batch, max_batch=3, linger_s=0.01
            )
            loop = asyncio.get_running_loop()
            from repro.serve import PendingRequest

            futures = []
            for i in range(7):
                future = loop.create_future()
                futures.append(future)
                batcher.submit(
                    "k", PendingRequest({"x": i}, 0, future)
                )
            await asyncio.gather(*futures)
            await batcher.close()
            return ran

        batches = asyncio.run(scenario())
        assert [x for batch in batches for x in batch] == list(range(7))
        assert all(len(batch) <= 3 for batch in batches)
        assert max(len(batch) for batch in batches) >= 2
