"""Tests for section scaling, tail-biting coding, and search reports."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    DesignGoal,
    DesignSpace,
    DiscreteParameter,
    FunctionEvaluator,
    MetacoreSearch,
    Objective,
    SearchConfig,
)
from repro.core.report import (
    format_pareto_report,
    format_point,
    format_search_report,
    ranked_candidates,
)
from repro.errors import ConfigurationError, FilterDesignError
from repro.iir.design import LowpassSpec, design_filter
from repro.iir.scaling import linf_norm, scale_cascade
from repro.iir.structures import realize
from repro.viterbi import (
    AdaptiveQuantizer,
    ConvolutionalEncoder,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
    bpsk_modulate,
)
from repro.viterbi.tailbiting import decode_tailbiting, encode_tailbiting


@pytest.fixture(scope="module")
def cascade8():
    spec = LowpassSpec(0.25 * math.pi, 0.4 * math.pi, 0.03, 0.01)
    tf = design_filter(spec, "elliptic").to_tf()
    return realize("cascade", tf), tf


class TestScaling:
    @pytest.mark.parametrize("norm", ["l2", "linf"])
    def test_transfer_function_preserved(self, cascade8, norm):
        cascade, tf = cascade8
        scaled, _ = scale_cascade(cascade, norm)
        omega = np.linspace(0.05, 3.0, 64)
        assert np.max(
            np.abs(scaled.to_tf().response(omega) - tf.response(omega))
        ) < 1e-9

    @pytest.mark.parametrize("norm", ["l2", "linf"])
    def test_internal_nodes_normalized(self, cascade8, norm):
        cascade, _ = cascade8
        _, report = scale_cascade(cascade, norm)
        assert all(
            n == pytest.approx(1.0, rel=1e-6) for n in report.node_norms_after
        )

    def test_headroom_saved_when_nodes_hot(self, cascade8):
        cascade, _ = cascade8
        _, report = scale_cascade(cascade, "linf")
        # The paper-style narrow filters have resonant internal nodes;
        # scaling buys headroom whenever the worst node exceeded 1.
        if report.worst_before > 1.0:
            assert report.headroom_bits_saved > 0.0

    def test_single_section_noop(self):
        spec = LowpassSpec(0.3 * math.pi, 0.6 * math.pi, 0.1, 0.05)
        tf = design_filter(spec, "elliptic").to_tf()
        cascade = realize("cascade", tf)
        if len(cascade.sections) > 1:
            pytest.skip("design produced multiple sections")
        scaled, report = scale_cascade(cascade)
        assert report.node_norms_before == ()

    def test_unknown_norm_rejected(self, cascade8):
        cascade, _ = cascade8
        with pytest.raises(FilterDesignError):
            scale_cascade(cascade, "l7")

    def test_linf_norm_peak(self):
        from repro.iir.transfer import TransferFunction

        tf = TransferFunction([1.0], [1.0, -0.9])
        assert linf_norm(tf) == pytest.approx(10.0, rel=1e-3)


class TestTailbiting:
    def test_start_equals_end_state(self, encoder_k5, rng):
        bits = rng.integers(0, 2, size=64, dtype=np.int8)
        memory = encoder_k5.constraint_length - 1
        # Re-derive the initial state and walk the whole frame.
        state = 0
        for bit in bits[-memory:]:
            state = encoder_k5.next_state(state, int(bit))
        start = state
        for bit in bits:
            state = encoder_k5.next_state(state, int(bit))
        assert state == start

    def test_no_rate_overhead(self, encoder_k5, rng):
        bits = rng.integers(0, 2, size=64, dtype=np.int8)
        symbols = encode_tailbiting(encoder_k5, bits)
        assert symbols.shape == (64, 2)

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_noiseless_round_trip(self, k, rng):
        encoder = ConvolutionalEncoder(k)
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder), HardQuantizer(), 5 * k
        )
        bits = rng.integers(0, 2, size=(4, 96), dtype=np.int8)
        clean = bpsk_modulate(encode_tailbiting(encoder, bits))
        decoded = decode_tailbiting(decoder, clean, sigma=0.1)
        assert np.array_equal(decoded, bits)

    def test_noisy_decoding_reasonable(self, encoder_k5, rng):
        from repro.viterbi import AWGNChannel

        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder_k5), AdaptiveQuantizer(3), 25
        )
        channel = AWGNChannel(3.0)
        bits = rng.integers(0, 2, size=(16, 96), dtype=np.int8)
        received = channel.transmit(encode_tailbiting(encoder_k5, bits), rng)
        decoded = decode_tailbiting(decoder, received, sigma=channel.sigma)
        errors = np.count_nonzero(decoded != bits)
        assert errors / bits.size < 5e-3

    def test_frame_too_short_rejected(self, encoder_k5):
        with pytest.raises(ConfigurationError):
            encode_tailbiting(encoder_k5, np.array([1, 0]))

    def test_wraps_validated(self, encoder_k3):
        decoder = ViterbiDecoder(
            Trellis.from_encoder(encoder_k3), HardQuantizer(), 9
        )
        with pytest.raises(ConfigurationError):
            decode_tailbiting(decoder, np.zeros((8, 2)), wraps=1)


class TestReports:
    def _result(self):
        space = DesignSpace(
            [DiscreteParameter("x", tuple(range(10)))]
        )

        def func(point, fidelity):
            return {"cost": (point["x"] - 6) ** 2, "aux": float(point["x"])}

        goal = DesignGoal(objectives=[Objective("cost")])
        search = MetacoreSearch(
            space, goal, FunctionEvaluator(func, 1),
            SearchConfig(max_resolution=3),
        )
        return search.run(), goal

    def test_format_point(self):
        assert format_point({"b": 2, "a": 0.25}) == "a=0.25, b=2"

    def test_ranked_candidates_order(self):
        result, goal = self._result()
        ranked = ranked_candidates(result, goal, top=5)
        costs = [r.metrics["cost"] for r in ranked]
        assert costs == sorted(costs)
        assert costs[0] == 0

    def test_search_report_contents(self):
        result, goal = self._result()
        text = format_search_report(result, goal, top=3)
        assert "winner:" in text
        assert "x=6" in text
        assert "top 3 candidates" in text
        assert "feasible: True" in text

    def test_pareto_report(self):
        result, goal = self._result()
        text = format_pareto_report(
            result, [Objective("cost"), Objective("aux")]
        )
        assert "Pareto front" in text
        assert "cost=0" in text
