"""Tests for the convolutional encoder (paper Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.viterbi import ConvolutionalEncoder
from repro.viterbi.polynomials import (
    BEST_RATE_HALF,
    default_polynomials,
    parse_octal,
    to_octal,
    validate_polynomials,
)


class TestPolynomials:
    def test_parse_octal(self):
        assert parse_octal("171") == 0o171
        assert parse_octal("7") == 7

    def test_parse_octal_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_octal("8")

    def test_to_octal_round_trip(self):
        for poly in (0o7, 0o35, 0o171):
            assert parse_octal(to_octal(poly)) == poly

    def test_default_polynomials_paper_values(self):
        # The exact generators of the paper's Table 3.
        assert default_polynomials(3) == (0o7, 0o5)
        assert default_polynomials(5) == (0o35, 0o23)
        assert default_polynomials(7) == (0o171, 0o133)

    def test_default_polynomials_rate_third(self):
        assert len(default_polynomials(5, rate_inverse=3)) == 3

    def test_default_polynomials_unknown_k(self):
        with pytest.raises(ConfigurationError):
            default_polynomials(2)

    def test_validate_rejects_oversized(self):
        with pytest.raises(ConfigurationError):
            validate_polynomials((0o17,), constraint_length=3)

    def test_validate_rejects_no_input_tap(self):
        with pytest.raises(ConfigurationError):
            validate_polynomials((0b011, 0b001), constraint_length=3)

    def test_validate_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            validate_polynomials((), constraint_length=3)


class TestEncoder:
    def test_figure2_reference_sequence(self):
        """Hand-computed symbols of the K=3, G=(7,5) encoder of Fig. 2."""
        encoder = ConvolutionalEncoder(3)
        bits = np.array([1, 0, 1, 1], dtype=np.int8)
        symbols = encoder.encode(bits)
        # register (current, prev1, prev2): outputs (x^2+x+1, x^2+1).
        expected = np.array(
            [[1, 1], [1, 0], [0, 0], [0, 1]], dtype=np.int8
        )
        assert np.array_equal(symbols, expected)

    def test_rate_and_states(self, encoder_k5):
        assert encoder_k5.rate == 0.5
        assert encoder_k5.n_states == 16

    def test_zero_input_zero_output(self, encoder_k3):
        bits = np.zeros(32, dtype=np.int8)
        assert not encoder_k3.encode(bits).any()

    def test_batch_matches_single(self, encoder_k5, rng):
        frames = rng.integers(0, 2, size=(5, 40), dtype=np.int8)
        batch = encoder_k5.encode(frames)
        for i in range(5):
            assert np.array_equal(batch[i], encoder_k5.encode(frames[i]))

    def test_encode_rejects_non_binary(self, encoder_k3):
        with pytest.raises(ConfigurationError):
            encoder_k3.encode(np.array([0, 1, 2]))

    def test_encode_rejects_3d(self, encoder_k3):
        with pytest.raises(ConfigurationError):
            encoder_k3.encode(np.zeros((2, 2, 2), dtype=np.int8))

    def test_encode_bad_initial_state(self, encoder_k3):
        with pytest.raises(ConfigurationError):
            encoder_k3.encode(np.array([1, 0]), initial_state=4)

    def test_terminate_returns_to_zero(self, encoder_k5, rng):
        bits = rng.integers(0, 2, size=30, dtype=np.int8)
        flushed = encoder_k5.terminate(bits)
        state = 0
        for bit in flushed:
            state = encoder_k5.next_state(state, int(bit))
        assert state == 0

    def test_next_state_convention(self, encoder_k3):
        # next = (u << (K-2)) | (s >> 1)
        assert encoder_k3.next_state(0b00, 1) == 0b10
        assert encoder_k3.next_state(0b10, 0) == 0b01
        assert encoder_k3.next_state(0b11, 1) == 0b11

    @given(st.integers(2, 8), st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_linearity_over_gf2(self, k, length):
        """Convolutional codes are linear: enc(a^b) = enc(a)^enc(b)."""
        try:
            encoder = ConvolutionalEncoder(k)
        except ConfigurationError:
            return
        rng = np.random.default_rng(k * 1000 + length)
        a = rng.integers(0, 2, size=length, dtype=np.int8)
        b = rng.integers(0, 2, size=length, dtype=np.int8)
        combined = encoder.encode(a ^ b)
        assert np.array_equal(combined, encoder.encode(a) ^ encoder.encode(b))

    def test_repr_mentions_octal(self, encoder_k5):
        assert "35,23" in repr(encoder_k5)


class TestEncodeMatchesStepwise:
    """The shifted-XOR encode against its definitional register walk."""

    @given(
        k=st.integers(3, 9),
        length=st.integers(1, 96),
        n_frames=st.integers(0, 4),
        state_pick=st.integers(0, 3),
        rate_inverse=st.sampled_from([2, 3]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_differential(
        self, k, length, n_frames, state_pick, rate_inverse, seed
    ):
        try:
            polys = default_polynomials(k, rate_inverse=rate_inverse)
        except ConfigurationError:
            return
        encoder = ConvolutionalEncoder(k, polys)
        # Cover both corners and arbitrary interior initial states.
        initial_state = [0, 1, encoder.n_states - 1, seed % encoder.n_states][
            state_pick
        ]
        rng = np.random.default_rng(seed)
        if n_frames == 0:  # 1-D single-message form
            bits = rng.integers(0, 2, size=length, dtype=np.int8)
        else:
            bits = rng.integers(0, 2, size=(n_frames, length), dtype=np.int8)
        fast = encoder.encode(bits, initial_state=initial_state)
        slow = encoder._encode_stepwise(bits, initial_state=initial_state)
        assert fast.dtype == slow.dtype
        assert np.array_equal(fast, slow)
