"""Differential tests: fused decode kernels vs the reference loops.

The fused kernels in :mod:`repro.viterbi.kernels` promise *bit-identical*
outputs to the reference forward passes — same decisions, same survivor
selections, same decoded bits, same final metrics.  These tests enforce
that promise over randomized configurations (hypothesis), through the
BER simulator's adaptive frame batching, and up through a whole search.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BERThresholdCurve, SearchConfig
from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    BranchMetricTable,
    ConvolutionalEncoder,
    DECODE_KERNELS,
    FixedQuantizer,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    Trellis,
    ViterbiDecoder,
    ViterbiMetaCore,
    ViterbiSpec,
    standard_pattern,
)
from repro.viterbi.kernels import symbol_indices
from repro.viterbi.metrics import MAX_COMBO_LUT_ENTRIES


def _received(rng, n_frames, n_steps, n_symbols, erasure_rate=0.0):
    """Random analog samples, optionally with NaN erasures mixed in."""
    samples = rng.normal(0.0, 1.0, size=(n_frames, n_steps, n_symbols))
    if erasure_rate > 0.0:
        mask = rng.random(samples.shape) < erasure_rate
        samples[mask] = np.nan
    return samples


def _pair(decoder_cls, *args, **kwargs):
    """The same decoder twice: fused kernel and reference kernel."""
    fused = decoder_cls(*args, kernel="fused", **kwargs)
    reference = decoder_cls(*args, kernel="reference", **kwargs)
    return fused, reference


def _assert_identical_decode(fused, reference, received, sigma):
    decoded_fused = fused.decode(received, sigma=sigma)
    metrics_fused = fused._final_metrics.copy()
    decoded_ref = reference.decode(received, sigma=sigma)
    assert np.array_equal(decoded_fused, decoded_ref)
    assert np.array_equal(metrics_fused, reference._final_metrics)


class TestSymbolIndices:
    def test_round_trip_all_combos(self):
        base = 5  # 4 levels + erasure slot
        n = 2
        combos = base**n
        index = np.arange(combos)
        levels = np.empty((combos, n), dtype=np.int64)
        work = index.copy()
        for k in range(n - 1, -1, -1):
            levels[:, k] = work % base - 1
            work = work // base
        assert np.array_equal(symbol_indices(levels, base), index)

    def test_symbol_zero_is_most_significant(self):
        # (level0=1, level1=-1) must differ from (level0=-1, level1=1).
        a = symbol_indices(np.array([1, -1]), base=3)
        b = symbol_indices(np.array([-1, 1]), base=3)
        assert a == (1 + 1) * 3 + 0
        assert b == 0 * 3 + (1 + 1)
        assert a != b


class TestComboLut:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_masked_lut_matches_compute(self, trellis_k5, bits):
        table = BranchMetricTable(trellis_k5, AdaptiveQuantizer(bits))
        lut = table.combo_lut()
        assert lut is not None
        base = table.quantizer.lut_base
        n = trellis_k5.n_symbols
        rng = np.random.default_rng(7)
        levels = rng.integers(-1, base - 1, size=(64, n))
        rows = symbol_indices(levels, base)
        assert np.array_equal(lut[rows], table.compute(levels))

    def test_unmasked_lut_matches_compute_for_states(self, trellis_k5):
        """compute_for_states does NOT erasure-mask; nor must this LUT."""
        table = BranchMetricTable(trellis_k5, AdaptiveQuantizer(3))
        lut = table.combo_lut(erasure_masked=False)
        assert lut is not None
        rng = np.random.default_rng(11)
        levels = rng.integers(-1, table.quantizer.lut_base - 1, size=(8, 2))
        states = np.tile(np.arange(trellis_k5.n_states), (8, 1))
        subset = table.compute_for_states(levels, states)
        rows = symbol_indices(levels, table.quantizer.lut_base)
        assert np.array_equal(lut[rows], subset)

    def test_luts_are_cached(self, trellis_k3):
        table = BranchMetricTable(trellis_k3, HardQuantizer())
        assert table.combo_lut() is table.combo_lut()
        assert table.combo_lut(erasure_masked=False) is table.combo_lut(
            erasure_masked=False
        )

    def test_oversized_table_falls_back(self, monkeypatch):
        import repro.viterbi.metrics as metrics_mod

        monkeypatch.setattr(metrics_mod, "MAX_COMBO_LUT_ENTRIES", 1)
        encoder = ConvolutionalEncoder(3)
        trellis = Trellis.from_encoder(encoder)
        table = BranchMetricTable(trellis, AdaptiveQuantizer(3))
        table._combo_luts.clear()
        assert table.combo_lut() is None
        decoder = ViterbiDecoder(trellis, AdaptiveQuantizer(3), 15)
        decoder.metric_table = table
        assert decoder.active_kernel() == "reference"
        # And the decode still works (via the reference loop).
        rng = np.random.default_rng(3)
        bits = decoder.decode(
            _received(rng, 2, 40, trellis.n_symbols), sigma=0.7
        )
        assert bits.shape == (2, 40)

    def test_real_tables_fit_the_cap(self, trellis_k7):
        table = BranchMetricTable(trellis_k7, AdaptiveQuantizer(3))
        lut = table.combo_lut()
        assert lut is not None
        assert lut.size <= MAX_COMBO_LUT_ENTRIES


@pytest.fixture(scope="session")
def trellis_k7():
    return Trellis.from_encoder(ConvolutionalEncoder(7))


class TestFusedSingleResolution:
    @pytest.mark.parametrize("k", [3, 5, 7])
    @pytest.mark.parametrize(
        "quantizer", [HardQuantizer(), AdaptiveQuantizer(2), FixedQuantizer(3, 1.5)]
    )
    def test_bit_identical(self, k, quantizer):
        trellis = Trellis.from_encoder(ConvolutionalEncoder(k))
        fused, reference = _pair(
            ViterbiDecoder, trellis, quantizer, 5 * k
        )
        assert fused.active_kernel() == "fused"
        rng = np.random.default_rng(100 + k)
        received = _received(rng, 6, 96, trellis.n_symbols, erasure_rate=0.15)
        _assert_identical_decode(fused, reference, received, sigma=0.8)

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=3, max_value=7),
        bits=st.integers(min_value=1, max_value=3),
        depth=st.integers(min_value=4, max_value=48),
        n_frames=st.integers(min_value=1, max_value=5),
        n_steps=st.integers(min_value=8, max_value=80),
        erasures=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_differential_random_configs(
        self, k, bits, depth, n_frames, n_steps, erasures, seed
    ):
        trellis = Trellis.from_encoder(ConvolutionalEncoder(k))
        fused, reference = _pair(
            ViterbiDecoder, trellis, AdaptiveQuantizer(bits), depth
        )
        rng = np.random.default_rng(seed)
        received = _received(rng, n_frames, n_steps, trellis.n_symbols, erasures)
        _assert_identical_decode(fused, reference, received, sigma=0.9)

    def test_tie_break_prefers_slot_zero(self, trellis_k3):
        """Equal candidate metrics must select predecessor slot 0."""
        fused, reference = _pair(ViterbiDecoder, trellis_k3, HardQuantizer(), 8)
        # All-zero received levels make every branch metric symmetric,
        # a tie factory for the compare-select.
        received = np.zeros((1, 24, trellis_k3.n_symbols))
        dec_f, best_f = fused._forward(received, None)
        dec_r, best_r = reference._forward(received, None)
        assert np.array_equal(dec_f, dec_r)
        assert np.array_equal(best_f, best_r)


class TestFusedMultiresolution:
    @settings(max_examples=20, deadline=None)
    @given(
        k=st.integers(min_value=3, max_value=6),
        low_bits=st.integers(min_value=1, max_value=2),
        extra_bits=st.integers(min_value=1, max_value=2),
        paths=st.sampled_from(["one", "half", "all"]),
        method=st.sampled_from(["offset", "scale-offset", "none"]),
        n_frames=st.integers(min_value=1, max_value=4),
        n_steps=st.integers(min_value=8, max_value=64),
        erasures=st.floats(min_value=0.0, max_value=0.25),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_differential_random_configs(
        self, k, low_bits, extra_bits, paths, method, n_frames, n_steps,
        erasures, seed,
    ):
        trellis = Trellis.from_encoder(ConvolutionalEncoder(k))
        m = {"one": 1, "half": max(1, trellis.n_states // 2),
             "all": trellis.n_states}[paths]
        fused, reference = _pair(
            MultiresolutionViterbiDecoder,
            trellis,
            AdaptiveQuantizer(low_bits),
            AdaptiveQuantizer(low_bits + extra_bits),
            5 * k,
            m,
            normalization_count=1,
            normalization_method=method,
        )
        assert fused.active_kernel() == "fused"
        rng = np.random.default_rng(seed)
        received = _received(rng, n_frames, n_steps, trellis.n_symbols, erasures)
        _assert_identical_decode(fused, reference, received, sigma=0.9)

    def test_normalization_count_above_one(self, trellis_k5):
        fused, reference = _pair(
            MultiresolutionViterbiDecoder,
            trellis_k5,
            AdaptiveQuantizer(1),
            AdaptiveQuantizer(3),
            25,
            8,
            normalization_count=4,
            normalization_method="scale-offset",
        )
        rng = np.random.default_rng(21)
        received = _received(rng, 4, 80, trellis_k5.n_symbols, 0.1)
        _assert_identical_decode(fused, reference, received, sigma=0.7)


class TestKernelDispatch:
    def test_rejects_unknown_kernel(self, trellis_k3):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(trellis_k3, HardQuantizer(), 10, kernel="turbo")
        assert "fused" in DECODE_KERNELS and "reference" in DECODE_KERNELS

    def test_active_hook_forces_reference_loop(self, trellis_k3, monkeypatch):
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 10)
        decoder.fault_hook = FaultInjector(
            FaultSpec(model="seu", rate=0.01), instance="t"
        )
        assert decoder.fault_hook.active

        def boom(received, sigma):  # pragma: no cover - must not run
            raise AssertionError("fused kernel ran under an active hook")

        monkeypatch.setattr(decoder, "_forward_fused", boom)
        rng = np.random.default_rng(5)
        decoder.decode(_received(rng, 2, 32, trellis_k3.n_symbols), sigma=0.5)

    def test_inert_hook_keeps_fused_path(self, trellis_k3, monkeypatch):
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 10)
        decoder.fault_hook = FaultInjector(
            FaultSpec(model="seu", rate=0.0), instance="t"
        )
        assert not decoder.fault_hook.active
        calls = []
        original = decoder._forward_fused

        def spy(received, sigma):
            calls.append(1)
            return original(received, sigma)

        monkeypatch.setattr(decoder, "_forward_fused", spy)
        rng = np.random.default_rng(6)
        decoder.decode(_received(rng, 2, 32, trellis_k3.n_symbols), sigma=0.5)
        assert calls

    def test_reference_kernel_never_fuses(self, trellis_k3, monkeypatch):
        decoder = ViterbiDecoder(
            trellis_k3, HardQuantizer(), 10, kernel="reference"
        )
        assert decoder.active_kernel() == "reference"

        def boom(received, sigma):  # pragma: no cover - must not run
            raise AssertionError("fused kernel ran with kernel='reference'")

        monkeypatch.setattr(decoder, "_forward_fused", boom)
        rng = np.random.default_rng(7)
        decoder.decode(_received(rng, 1, 24, trellis_k3.n_symbols), sigma=0.5)


class TestAdaptiveBatching:
    def _measure_pair(self, encoder, decoder, snr, **measure_kwargs):
        adaptive = BERSimulator(
            encoder, frame_length=128, frames_per_batch=8, seed=99,
            adaptive_batching=True,
        )
        fixed = BERSimulator(
            encoder, frame_length=128, frames_per_batch=8, seed=99,
            adaptive_batching=False,
        )
        a = adaptive.measure(decoder, snr, **measure_kwargs)
        b = fixed.measure(decoder, snr, **measure_kwargs)
        assert (a.bits, a.errors) == (b.bits, b.errors)
        assert a.ber == b.ber
        return a

    @pytest.mark.parametrize(
        "snr,max_bits,target_errors",
        [(0.0, 20_000, 60), (4.0, 30_000, 25), (6.0, 20_000, None)],
    )
    def test_point_identical_to_fixed_batching(
        self, encoder_k3, trellis_k3, snr, max_bits, target_errors
    ):
        decoder = ViterbiDecoder(trellis_k3, AdaptiveQuantizer(2), 15)
        self._measure_pair(
            encoder_k3, decoder, snr,
            max_bits=max_bits, target_errors=target_errors,
        )

    def test_point_identical_with_puncturing(self, encoder_k3, trellis_k3):
        pattern = standard_pattern("3/4")
        decoder = ViterbiDecoder(trellis_k3, AdaptiveQuantizer(2), 15)
        adaptive = BERSimulator(
            encoder_k3, frame_length=126, frames_per_batch=6, seed=42,
            puncture=pattern, adaptive_batching=True,
        )
        fixed = BERSimulator(
            encoder_k3, frame_length=126, frames_per_batch=6, seed=42,
            puncture=pattern, adaptive_batching=False,
        )
        a = adaptive.measure(decoder, 3.0, max_bits=24_000, target_errors=50)
        b = fixed.measure(decoder, 3.0, max_bits=24_000, target_errors=50)
        assert (a.bits, a.errors) == (b.bits, b.errors)

    def test_point_identical_multires(self, encoder_k5, trellis_k5):
        decoder = MultiresolutionViterbiDecoder(
            trellis_k5, AdaptiveQuantizer(1), AdaptiveQuantizer(3), 25, 4
        )
        self._measure_pair(
            encoder_k5, decoder, 2.0, max_bits=16_000, target_errors=40
        )

    def test_reference_kernel_decoder_under_adaptive_sim(
        self, encoder_k3, trellis_k3
    ):
        decoder = ViterbiDecoder(
            trellis_k3, AdaptiveQuantizer(2), 15, kernel="reference"
        )
        self._measure_pair(
            encoder_k3, decoder, 2.0, max_bits=16_000, target_errors=40
        )

    def test_active_hook_disables_adaptive_grouping(
        self, encoder_k3, trellis_k3
    ):
        """Fault streams are per-block; grouping must never change them."""
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 15)
        decoder.fault_hook = FaultInjector(
            FaultSpec(model="seu", rate=0.005, seed=1), instance="t"
        )
        adaptive = BERSimulator(
            encoder_k3, frame_length=128, frames_per_batch=8, seed=13,
            adaptive_batching=True,
        )
        fixed = BERSimulator(
            encoder_k3, frame_length=128, frames_per_batch=8, seed=13,
            adaptive_batching=False,
        )
        a = adaptive.measure(decoder, 4.0, max_bits=8_000, target_errors=None)
        b = fixed.measure(decoder, 4.0, max_bits=8_000, target_errors=None)
        assert (a.bits, a.errors) == (b.bits, b.errors)

    def test_throughput_metrics_recorded(self, encoder_k3, trellis_k3):
        registry = get_registry()
        registry.reset()
        decoder = ViterbiDecoder(trellis_k3, HardQuantizer(), 15)
        sim = BERSimulator(encoder_k3, frame_length=128, frames_per_batch=8)
        sim.measure(decoder, 4.0, max_bits=8_000, target_errors=None)
        snapshot = registry.snapshot()
        assert snapshot["ber.decoded_frames"]["value"] > 0
        assert "ber.frames_per_sec" in snapshot
        kernel = decoder.active_kernel()
        assert snapshot[f"ber.kernel.{kernel}.frames"]["value"] > 0
        registry.reset()


class TestSearchParity:
    def test_search_results_identical_across_kernels(self):
        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(4.0, 2e-2),
        )
        config = SearchConfig(max_resolution=1, refine_top_k=2)
        results = {}
        for kernel in DECODE_KERNELS:
            metacore = ViterbiMetaCore(
                spec, fixed={"G": "standard", "N": 1},
                config=config, kernel=kernel,
            )
            results[kernel] = metacore.search()
        fused, reference = results["fused"], results["reference"]
        assert fused.feasible == reference.feasible
        assert fused.best_point == reference.best_point
        assert fused.best_metrics == reference.best_metrics

    def test_kernel_not_in_fingerprint(self):
        from repro.viterbi import ViterbiMetacoreEvaluator

        spec = ViterbiSpec(
            throughput_bps=1e6,
            ber_curve=BERThresholdCurve.single(3.0, 1e-3),
        )
        fused = ViterbiMetacoreEvaluator(spec, kernel="fused")
        reference = ViterbiMetacoreEvaluator(spec, kernel="reference")
        assert fused.fingerprint() == reference.fingerprint()
