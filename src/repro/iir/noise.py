"""Round-off noise analysis of filter realizations.

Coefficient quantization (handled in :mod:`repro.iir.fixedpoint`) is
only half of the finite-word-length story: every multiplier output must
also be rounded back to the data word length at run time, injecting
white noise of variance ``q^2 / 12`` (q = one LSB) at that node.  The
total output noise depends on the *structure*: each injection point is
shaped by the transfer function from that node to the output.

This module computes the classic *noise gain* — the sum over rounding
points of the squared L2 norm of the node-to-output transfer function —
for each realization, using the structures' own topologies.  Together
with the coefficient-sensitivity results it completes the paper's
Sec. 3.4 hardware-requirements picture ("word length" covers both
effects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import Realization
from repro.iir.structures.cascade import Cascade
from repro.iir.structures.direct import _DirectFormBase
from repro.iir.structures.lattice import LatticeLadder
from repro.iir.structures.parallel import Parallel
from repro.iir.structures.statespace import StateSpace
from repro.iir.transfer import TransferFunction

#: Impulse-response length used to evaluate L2 norms numerically; long
#: enough for the narrow-band filters in this repo (poles to r ~ 0.999).
_L2_LENGTH = 8192


def l2_norm_squared(tf: TransferFunction, length: int = _L2_LENGTH) -> float:
    """Squared L2 norm of a transfer function (sum of h[n]^2)."""
    if not tf.is_stable():
        raise FilterDesignError("L2 norm of an unstable transfer function")
    impulse = tf.impulse_response(length)
    return float(np.dot(impulse, impulse))


@dataclass(frozen=True)
class NoiseReport:
    """Round-off noise characteristics of one realization."""

    structure: str
    #: Sum over rounding nodes of ||H_node->out||_2^2.
    noise_gain: float
    #: Number of run-time rounding points (multiplier outputs merged
    #: per accumulation node).
    n_injection_points: int

    def output_noise_variance(self, data_word_length: int) -> float:
        """Output noise variance for a given data word length.

        Assumes rounding to ``data_word_length`` bits over a unit
        signal range: one LSB is ``2**-(W-1)`` and each injection
        contributes ``q^2 / 12`` of white noise.
        """
        lsb = 2.0 ** (-(data_word_length - 1))
        return self.noise_gain * lsb * lsb / 12.0

    def output_noise_db(self, data_word_length: int) -> float:
        """Output noise power in dB relative to full scale."""
        variance = self.output_noise_variance(data_word_length)
        return 10.0 * math.log10(max(variance, 1e-300))


def _noise_gain_direct(realization: _DirectFormBase) -> Tuple[float, int]:
    # All products accumulate at one node whose noise passes through
    # 1/A(z) (direct form II; form I differs only by delay placement).
    shaping = TransferFunction([1.0], realization.a)
    n_products = realization.b.size + (realization.a.size - 1)
    return n_products * l2_norm_squared(shaping), 1


def _noise_gain_cascade(realization: Cascade) -> Tuple[float, int]:
    # Section i's accumulation noise passes through 1/A_i and every
    # *later* section.
    total = 0.0
    sections = realization.sections
    for index, (_, a) in enumerate(sections):
        shaping = TransferFunction([1.0], a)
        for b_next, a_next in sections[index + 1 :]:
            shaping = shaping * TransferFunction(b_next, a_next)
        b_here, a_here = sections[index]
        n_products = b_here.size + (a_here.size - 1)
        total += n_products * l2_norm_squared(shaping)
    return total, len(sections)


def _noise_gain_parallel(realization: Parallel) -> Tuple[float, int]:
    # Each section's noise passes through 1/D_i only; the feed-through
    # product injects directly at the output.
    total = 1.0  # the constant multiplier's own rounding
    for num, den in realization.sections:
        shaping = TransferFunction([1.0], den)
        n_products = num.size + (den.size - 1)
        total += n_products * l2_norm_squared(shaping)
    return total, len(realization.sections) + 1


def _noise_gain_lattice(realization: LatticeLadder) -> Tuple[float, int]:
    # Conservative model: each stage's two products inject where the
    # full denominator shaping applies; ladder taps inject at the
    # output.  (Exact per-node norms require the internal transfer
    # functions; the all-pass structure makes this bound tight in
    # practice.)
    tf = realization.to_tf()
    shaping = l2_norm_squared(TransferFunction([1.0], tf.a))
    n_stage_products = 2 * realization.ks.size
    n_taps = realization.vs.size
    return n_stage_products * shaping + n_taps, realization.ks.size + 1


def _noise_gain_statespace(realization: StateSpace) -> Tuple[float, int]:
    # State-update products inject into the states: the shaping from
    # state i to the output is C (zI - A)^{-1} e_i; output products
    # inject directly.
    order = realization.a.shape[0]
    if order == 0:
        return 1.0, 1
    total = 1.0 + order  # D product + C row products at the output
    den = np.poly(realization.a)
    for i in range(order):
        basis = np.zeros((order, 1))
        basis[i, 0] = 1.0
        # num(z) for C (zI-A)^{-1} e_i via the determinant identity.
        num = np.poly(realization.a - basis @ realization.c) - den
        shaping = TransferFunction(num, den)
        per_state_products = order + 1  # row of A plus B entry
        total += per_state_products * l2_norm_squared(shaping)
    return total, order + 1


def noise_report(realization: Realization) -> NoiseReport:
    """Round-off noise gain of a realization.

    Raises :class:`FilterDesignError` for structures without a noise
    model (the continued fraction, whose internal nodes this library
    does not expose).
    """
    if isinstance(realization, Cascade):
        gain, points = _noise_gain_cascade(realization)
    elif isinstance(realization, Parallel):
        gain, points = _noise_gain_parallel(realization)
    elif isinstance(realization, LatticeLadder):
        gain, points = _noise_gain_lattice(realization)
    elif isinstance(realization, StateSpace):
        gain, points = _noise_gain_statespace(realization)
    elif isinstance(realization, _DirectFormBase):
        gain, points = _noise_gain_direct(realization)
    else:
        raise FilterDesignError(
            f"no round-off noise model for structure "
            f"{realization.name!r}"
        )
    return NoiseReport(
        structure=realization.name,
        noise_gain=gain,
        n_injection_points=points,
    )


def compare_structures(
    tf: TransferFunction, names: List[str]
) -> List[NoiseReport]:
    """Noise reports for several realizations of the same filter."""
    from repro.iir.structures import realize

    reports = []
    for name in names:
        reports.append(noise_report(realize(name, tf)))
    return sorted(reports, key=lambda r: r.noise_gain)
