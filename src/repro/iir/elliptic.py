"""Jacobi elliptic function machinery for elliptic filter design.

Implemented from scratch (no scipy in the library): complete elliptic
integrals via the arithmetic-geometric mean, the Jacobi ``cd``/``sn``
functions and their inverses via descending Landen transformations, the
elliptic nome via theta functions, and the degree equation solver that
elliptic (Cauer) filter design needs.  The formulation follows the
classic filter-design treatment (Orfanidis' lecture notes on elliptic
filter design), with arguments normalized to the quarter period: all
``u`` parameters below are in units of ``K(k)``.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Union

from repro.errors import FilterDesignError

Complex = Union[float, complex]

#: Landen iterations; moduli shrink quartically so 8 reaches 1e-15 from
#: any k < 1 - 1e-12.
_LANDEN_ITERATIONS = 8


def _validate_modulus(k: float) -> None:
    if not 0.0 <= k < 1.0:
        raise FilterDesignError(f"elliptic modulus must be in [0, 1): {k}")


def landen_sequence(k: float, iterations: int = _LANDEN_ITERATIONS) -> List[float]:
    """Descending Landen sequence k -> k1 -> ... (rapidly to zero)."""
    _validate_modulus(k)
    sequence = []
    current = k
    for _ in range(iterations):
        kp = math.sqrt(max(0.0, 1.0 - current * current))
        current = (current / (1.0 + kp)) ** 2
        sequence.append(current)
    return sequence


def ellipk(k: float) -> float:
    """Complete elliptic integral of the first kind, K(k).

    Computed via the arithmetic-geometric mean: K = pi / (2 AGM(1, k')).
    """
    _validate_modulus(k)
    a, b = 1.0, math.sqrt(max(0.0, 1.0 - k * k))
    for _ in range(64):
        if abs(a - b) < 1e-16 * a:
            break
        a, b = (a + b) / 2.0, math.sqrt(a * b)
    return math.pi / (2.0 * a)


def ellipk_complement(k: float) -> float:
    """K'(k) = K(sqrt(1 - k^2))."""
    _validate_modulus(k)
    return ellipk(math.sqrt(max(0.0, 1.0 - k * k)))


def cde(u: Complex, k: float) -> complex:
    """Jacobi cd(u K(k), k) with ``u`` in quarter-period units.

    Descends the Landen sequence to a near-zero modulus, starts from
    ``cos(u pi / 2)`` and ascends with the Gauss transformation
    ``w <- (1 + v) w / (1 + v w^2)``.
    """
    sequence = landen_sequence(k)
    w: complex = cmath.cos(complex(u) * math.pi / 2.0)
    for v in reversed(sequence):
        w = (1.0 + v) * w / (1.0 + v * w * w)
    return w


def sne(u: Complex, k: float) -> complex:
    """Jacobi sn(u K(k), k); uses sn(u K) = cd((1 - u) K)."""
    sequence = landen_sequence(k)
    w: complex = cmath.sin(complex(u) * math.pi / 2.0)
    for v in reversed(sequence):
        w = (1.0 + v) * w / (1.0 + v * w * w)
    return w


def acde(w: Complex, k: float) -> complex:
    """Inverse of :func:`cde`: u (quarter-period units) with cd(uK)=w."""
    sequence = landen_sequence(k)
    moduli = [k] + sequence[:-1]
    value: complex = complex(w)
    for k_prev, v in zip(moduli, sequence):
        value = 2.0 * value / (
            (1.0 + v) * (1.0 + cmath.sqrt(1.0 - (k_prev * value) ** 2))
        )
    u = 2.0 * cmath.acos(value) / math.pi
    return u


def asne(w: Complex, k: float) -> complex:
    """Inverse of :func:`sne`: sn(uK) = w -> u = 1 - acde(w)."""
    return 1.0 - acde(w, k)


def nome(k: float) -> float:
    """Elliptic nome q(k) = exp(-pi K'(k) / K(k))."""
    _validate_modulus(k)
    if k == 0.0:
        return 0.0
    return math.exp(-math.pi * ellipk_complement(k) / ellipk(k))


def modulus_from_nome(q: float) -> float:
    """Invert the nome via theta functions: k = (theta2 / theta3)^2."""
    if not 0.0 <= q < 1.0:
        raise FilterDesignError(f"nome must be in [0, 1): {q}")
    if q == 0.0:
        return 0.0
    theta2 = 0.0
    theta3 = 1.0
    for m in range(0, 32):
        term2 = q ** (m * (m + 1))
        theta2 += term2
        if m >= 1:
            theta3 += 2.0 * q ** (m * m)
        if term2 < 1e-18:
            break
    theta2 *= 2.0 * q**0.25
    return (theta2 / theta3) ** 2


def ellipdeg(n: int, k1: float) -> float:
    """Solve the degree equation for the modulus k.

    Given the filter order ``n`` and the ripple modulus ``k1``, return
    the selectivity modulus ``k`` satisfying::

        n = K(k) K'(k1) / (K'(k) K(k1))

    via the nome relation ``q(k) = q(k1)**(1/n)``.
    """
    if n < 1:
        raise FilterDesignError("order must be at least 1")
    _validate_modulus(k1)
    if k1 == 0.0:
        return 0.0
    return modulus_from_nome(nome(k1) ** (1.0 / n))
