"""Digital IIR filter design from scratch (paper Sec. 3.4 and 5.3).

The paper designs its validation filters with SPW/MATLAB; here the
complete design path is implemented directly: analog low-pass
prototypes (Butterworth, Chebyshev I/II, elliptic) -> analog frequency
transformation (low-pass or band-pass) -> bilinear transform, with
closed-form order estimation per family.

Specifications use the paper's conventions: band edges as radian
frequencies (the Sec. 5.3 spec writes them as fractions of pi) and
*linear* ripples — ``passband_ripple`` is the maximum deviation of the
passband magnitude from 1, ``stopband_ripple`` the maximum stopband
magnitude.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.elliptic import asne, cde, ellipdeg, ellipk, ellipk_complement, sne
from repro.iir.transfer import TransferFunction, ZPK

FILTER_FAMILIES = ("butterworth", "chebyshev1", "chebyshev2", "elliptic")


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------


def _validate_ripples(passband_ripple: float, stopband_ripple: float) -> None:
    if not 0.0 < passband_ripple < 1.0:
        raise FilterDesignError("passband ripple must be in (0, 1)")
    if not 0.0 < stopband_ripple < 1.0:
        raise FilterDesignError("stopband ripple must be in (0, 1)")


@dataclass(frozen=True)
class LowpassSpec:
    """Low-pass spec: edges in rad/sample, linear ripples."""

    passband_edge: float
    stopband_edge: float
    passband_ripple: float
    stopband_ripple: float

    def __post_init__(self) -> None:
        if not 0.0 < self.passband_edge < self.stopband_edge < math.pi:
            raise FilterDesignError("need 0 < wp < ws < pi")
        _validate_ripples(self.passband_ripple, self.stopband_ripple)

    @property
    def passbands(self) -> List[Tuple[float, float]]:
        return [(1e-4, self.passband_edge)]

    @property
    def stopbands(self) -> List[Tuple[float, float]]:
        return [(self.stopband_edge, math.pi - 1e-4)]


@dataclass(frozen=True)
class BandpassSpec:
    """Band-pass spec: the Sec. 5.3 parameter set."""

    passband_low: float
    passband_high: float
    stopband_low: float
    stopband_high: float
    passband_ripple: float
    stopband_ripple: float

    def __post_init__(self) -> None:
        ordered = (
            0.0
            < self.stopband_low
            < self.passband_low
            < self.passband_high
            < self.stopband_high
            < math.pi
        )
        if not ordered:
            raise FilterDesignError("need 0 < ws1 < wp1 < wp2 < ws2 < pi")
        _validate_ripples(self.passband_ripple, self.stopband_ripple)

    @property
    def passbands(self) -> List[Tuple[float, float]]:
        return [(self.passband_low, self.passband_high)]

    @property
    def stopbands(self) -> List[Tuple[float, float]]:
        return [
            (1e-4, self.stopband_low),
            (self.stopband_high, math.pi - 1e-4),
        ]


FilterSpec = Union[LowpassSpec, BandpassSpec]


def paper_bandpass_spec() -> BandpassSpec:
    """The exact band-pass specification of Sec. 5.3."""
    return BandpassSpec(
        passband_low=0.411111 * math.pi,
        passband_high=0.466667 * math.pi,
        stopband_low=0.3487015 * math.pi,
        stopband_high=0.494444 * math.pi,
        passband_ripple=0.015782,
        stopband_ripple=0.0157816,
    )


# ---------------------------------------------------------------------------
# Ripple conversions
# ---------------------------------------------------------------------------


def ripples_to_db(passband_ripple: float, stopband_ripple: float) -> Tuple[float, float]:
    """(rp, rs) in dB from linear ripples."""
    rp = -20.0 * math.log10(1.0 - passband_ripple)
    rs = -20.0 * math.log10(stopband_ripple)
    return rp, rs


def _epsilons(rp_db: float, rs_db: float) -> Tuple[float, float]:
    ep = math.sqrt(10.0 ** (rp_db / 10.0) - 1.0)
    es = math.sqrt(10.0 ** (rs_db / 10.0) - 1.0)
    return ep, es


# ---------------------------------------------------------------------------
# Analog prototypes (normalized low-pass)
# ---------------------------------------------------------------------------


def butterworth_prototype(order: int, rp_db: float) -> ZPK:
    """Butterworth prototype with ripple exactly rp at Omega = 1."""
    if order < 1:
        raise FilterDesignError("order must be >= 1")
    ep, _ = _epsilons(rp_db, rp_db + 1.0)
    cutoff = ep ** (-1.0 / order)  # gain = 1/sqrt(1+ep^2) at Omega = 1
    poles = [
        cutoff * cmath.exp(1j * math.pi * (2 * i + order + 1) / (2 * order))
        for i in range(order)
    ]
    gain = cutoff**order
    return ZPK(zeros=(), poles=tuple(poles), gain=gain)


def chebyshev1_prototype(order: int, rp_db: float) -> ZPK:
    """Chebyshev type-I prototype (equiripple passband, edge at 1)."""
    if order < 1:
        raise FilterDesignError("order must be >= 1")
    ep, _ = _epsilons(rp_db, rp_db + 1.0)
    mu = math.asinh(1.0 / ep) / order
    poles = []
    for i in range(order):
        theta = math.pi * (2 * i + 1) / (2 * order)
        poles.append(
            complex(-math.sinh(mu) * math.sin(theta), math.cosh(mu) * math.cos(theta))
        )
    gain = np.real(np.prod([-p for p in poles]))
    if order % 2 == 0:
        gain /= math.sqrt(1.0 + ep * ep)
    return ZPK(zeros=(), poles=tuple(poles), gain=float(gain))


def chebyshev2_prototype(order: int, rs_db: float) -> ZPK:
    """Chebyshev type-II (inverse) prototype, stopband edge at 1."""
    if order < 1:
        raise FilterDesignError("order must be >= 1")
    _, es = _epsilons(rs_db - 0.5, rs_db)
    es = math.sqrt(10.0 ** (rs_db / 10.0) - 1.0)
    mu = math.asinh(es) / order
    zeros = []
    poles = []
    for i in range(order):
        theta = math.pi * (2 * i + 1) / (2 * order)
        if abs(math.cos(theta)) > 1e-12:
            zeros.append(complex(0.0, 1.0 / math.cos(theta)))
        lowpass_pole = complex(
            -math.sinh(mu) * math.sin(theta), math.cosh(mu) * math.cos(theta)
        )
        poles.append(1.0 / lowpass_pole)
    gain = np.real(np.prod([-p for p in poles]) / np.prod([-z for z in zeros]))
    return ZPK(zeros=tuple(zeros), poles=tuple(poles), gain=float(gain))


def elliptic_prototype(order: int, rp_db: float, rs_db: float) -> ZPK:
    """Elliptic (Cauer) prototype, passband edge at 1.

    Uses the Landen/Jacobi machinery of :mod:`repro.iir.elliptic`; the
    transition modulus comes from the degree equation so the design is
    exactly equiripple in both bands at the given order.
    """
    if order < 1:
        raise FilterDesignError("order must be >= 1")
    ep, es = _epsilons(rp_db, rs_db)
    k1 = ep / es
    if order == 1:
        pole = -1.0 / ep
        return ZPK(zeros=(), poles=(complex(pole),), gain=1.0 / ep)
    k = ellipdeg(order, k1)
    n_pairs = order // 2
    zeros = []
    v0 = -1j * asne(1j / ep, k1) / order
    poles = []
    for i in range(1, n_pairs + 1):
        u = (2 * i - 1) / order
        zeta = cde(u, k).real
        zero = 1j / (k * zeta)
        zeros.extend([zero, zero.conjugate()])
        pole = 1j * cde(u - 1j * v0, k)
        poles.extend([pole, pole.conjugate()])
    if order % 2 == 1:
        poles.append(1j * sne(1j * v0, k))
    gain = np.real(np.prod([-p for p in poles]) / np.prod([-z for z in zeros]))
    if order % 2 == 0:
        gain /= math.sqrt(1.0 + ep * ep)
    return ZPK(zeros=tuple(zeros), poles=tuple(poles), gain=float(gain))


# ---------------------------------------------------------------------------
# Order estimation
# ---------------------------------------------------------------------------


def required_order(
    family: str, selectivity: float, rp_db: float, rs_db: float
) -> int:
    """Minimum prototype order for a transition ratio.

    ``selectivity`` is Omega_stop / Omega_pass of the (transformed)
    analog low-pass problem, > 1.
    """
    if selectivity <= 1.0:
        raise FilterDesignError("stopband must lie beyond the passband")
    ep, es = _epsilons(rp_db, rs_db)
    discrimination = es / ep
    if family == "butterworth":
        order = math.log(discrimination) / math.log(selectivity)
    elif family in ("chebyshev1", "chebyshev2"):
        order = math.acosh(discrimination) / math.acosh(selectivity)
    elif family == "elliptic":
        k = 1.0 / selectivity
        k1 = 1.0 / discrimination
        order = (ellipk(k) * ellipk_complement(k1)) / (
            ellipk_complement(k) * ellipk(k1)
        )
    else:
        raise FilterDesignError(f"unknown family {family!r}")
    return max(1, math.ceil(order - 1e-9))


# ---------------------------------------------------------------------------
# Frequency transforms
# ---------------------------------------------------------------------------


def lp_to_lp(zpk: ZPK, cutoff: float) -> ZPK:
    """Scale a normalized low-pass prototype to cutoff ``cutoff``."""
    degree = len(zpk.poles) - len(zpk.zeros)
    return ZPK(
        zeros=tuple(z * cutoff for z in zpk.zeros),
        poles=tuple(p * cutoff for p in zpk.poles),
        gain=zpk.gain * cutoff**degree,
    )


def lp_to_bp(zpk: ZPK, center: float, bandwidth: float) -> ZPK:
    """Analog low-pass to band-pass: s -> (s^2 + w0^2) / (B s)."""

    def transform(root: complex) -> Tuple[complex, complex]:
        half = root * bandwidth / 2.0
        disc = cmath.sqrt(half * half - center * center)
        return half + disc, half - disc

    zeros: List[complex] = []
    poles: List[complex] = []
    for z in zpk.zeros:
        zeros.extend(transform(z))
    for p in zpk.poles:
        poles.extend(transform(p))
    degree = len(zpk.poles) - len(zpk.zeros)
    zeros.extend([0j] * degree)
    return ZPK(
        zeros=tuple(zeros),
        poles=tuple(poles),
        gain=zpk.gain * bandwidth**degree,
    )


def bilinear(zpk: ZPK) -> ZPK:
    """Bilinear transform with T = 2 (matching Omega = tan(omega/2))."""
    degree = len(zpk.poles) - len(zpk.zeros)
    zeros = [(1.0 + z) / (1.0 - z) for z in zpk.zeros]
    poles = [(1.0 + p) / (1.0 - p) for p in zpk.poles]
    num = np.prod([1.0 - z for z in zpk.zeros]) if zpk.zeros else 1.0
    den = np.prod([1.0 - p for p in zpk.poles]) if zpk.poles else 1.0
    gain = zpk.gain * float(np.real(num / den))
    zeros.extend([-1.0 + 0j] * degree)
    return ZPK(zeros=tuple(zeros), poles=tuple(poles), gain=gain)


def prewarp(omega: float) -> float:
    """Digital edge (rad/sample) to analog edge for T = 2 bilinear."""
    return math.tan(omega / 2.0)


# ---------------------------------------------------------------------------
# Top-level design
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DigitalFilter:
    """A designed filter: its zpk, spec, family, and prototype order."""

    zpk: ZPK
    family: str
    order: int
    spec: FilterSpec

    def to_tf(self) -> TransferFunction:
        return self.zpk.to_tf()


def _prototype(family: str, order: int, rp_db: float, rs_db: float) -> ZPK:
    if family == "butterworth":
        return butterworth_prototype(order, rp_db)
    if family == "chebyshev1":
        return chebyshev1_prototype(order, rp_db)
    if family == "chebyshev2":
        return chebyshev2_prototype(order, rs_db)
    if family == "elliptic":
        return elliptic_prototype(order, rp_db, rs_db)
    raise FilterDesignError(f"unknown family {family!r}")


def design_filter(
    spec: FilterSpec, family: str = "elliptic", order: int = None
) -> DigitalFilter:
    """Design a digital filter meeting ``spec`` with the given family.

    ``order`` overrides the estimated minimum prototype order (the
    MetaCore search uses this to explore over-designed instances).
    """
    rp_db, rs_db = ripples_to_db(spec.passband_ripple, spec.stopband_ripple)
    if isinstance(spec, LowpassSpec):
        wp = prewarp(spec.passband_edge)
        ws = prewarp(spec.stopband_edge)
        selectivity = ws / wp
        n = order or required_order(family, selectivity, rp_db, rs_db)
        prototype = _prototype(family, n, rp_db, rs_db)
        if family == "chebyshev2":
            analog = lp_to_lp(prototype, ws)
        else:
            analog = lp_to_lp(prototype, wp)
        digital = bilinear(analog)
        return DigitalFilter(zpk=digital, family=family, order=n, spec=spec)
    if isinstance(spec, BandpassSpec):
        wp1 = prewarp(spec.passband_low)
        wp2 = prewarp(spec.passband_high)
        ws1 = prewarp(spec.stopband_low)
        ws2 = prewarp(spec.stopband_high)
        center = math.sqrt(wp1 * wp2)
        bandwidth = wp2 - wp1
        # Equivalent low-pass selectivity: the tighter of the two
        # stopband edges after the band-pass mapping.
        selectivity = min(
            abs((ws * ws - center * center) / (bandwidth * ws))
            for ws in (ws1, ws2)
        )
        n = order or required_order(family, selectivity, rp_db, rs_db)
        prototype = _prototype(family, n, rp_db, rs_db)
        if family == "chebyshev2":
            prototype = lp_to_lp(prototype, selectivity)
        analog = lp_to_bp(prototype, center, bandwidth)
        digital = bilinear(analog)
        return DigitalFilter(zpk=digital, family=family, order=n, spec=spec)
    raise FilterDesignError(f"unsupported spec type {type(spec).__name__}")
