"""Fixed-point verification of realized filters.

The word length is one of the paper's IIR degrees of freedom: each
realization structure needs a different minimum number of coefficient
bits to still meet the frequency-domain spec (Sec. 3.4's "word length"
hardware requirement).  This module quantizes a realization, re-derives
the transfer function *from the quantized coefficients*, and measures
it against the specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FilterDesignError
from repro.iir.design import FilterSpec
from repro.iir.structures.base import Realization
from repro.iir.transfer import measure_bands

#: Default measurement grid density (the fidelity knob).
DEFAULT_GRID_POINTS = 512


@dataclass(frozen=True)
class QuantizationReport:
    """Outcome of checking one realization at one word length."""

    word_length: int
    stable: bool
    passband_ripple: float
    stopband_level: float
    realizable: bool

    def meets(self, spec: FilterSpec) -> bool:
        """Spec compliance of the quantized filter."""
        return (
            self.realizable
            and self.stable
            and self.passband_ripple <= spec.passband_ripple
            and self.stopband_level <= spec.stopband_ripple
        )

    def violation(self, spec: FilterSpec) -> float:
        """Relative spec violation (0 when compliant)."""
        if not self.realizable or not self.stable:
            return float("inf")
        ripple_excess = max(
            0.0, self.passband_ripple / spec.passband_ripple - 1.0
        )
        stop_excess = max(
            0.0, self.stopband_level / spec.stopband_ripple - 1.0
        )
        return ripple_excess + stop_excess


def check_quantized(
    realization: Realization,
    spec: FilterSpec,
    word_length: int,
    grid_points: int = DEFAULT_GRID_POINTS,
) -> QuantizationReport:
    """Quantize, reconstruct, and measure one realization."""
    try:
        quantized = realization.quantized(word_length)
        tf = quantized.to_tf()
    except FilterDesignError:
        return QuantizationReport(
            word_length=word_length,
            stable=False,
            passband_ripple=float("inf"),
            stopband_level=float("inf"),
            realizable=False,
        )
    stable = tf.is_stable()
    if not stable:
        return QuantizationReport(
            word_length=word_length,
            stable=False,
            passband_ripple=float("inf"),
            stopband_level=float("inf"),
            realizable=True,
        )
    measurement = measure_bands(
        tf, spec.passbands, spec.stopbands, grid_points=grid_points
    )
    return QuantizationReport(
        word_length=word_length,
        stable=True,
        passband_ripple=measurement.passband_ripple,
        stopband_level=measurement.stopband_level,
        realizable=True,
    )


def minimum_word_length(
    realization: Realization,
    spec: FilterSpec,
    max_word_length: int = 24,
    grid_points: int = DEFAULT_GRID_POINTS,
) -> Optional[int]:
    """Smallest word length at which the realization still meets spec.

    Returns ``None`` when even ``max_word_length`` bits do not suffice
    (e.g. a direct form of a high-order narrow-band filter).
    """
    for word_length in range(4, max_word_length + 1):
        report = check_quantized(realization, spec, word_length, grid_points)
        if report.meets(spec):
            return word_length
    return None
