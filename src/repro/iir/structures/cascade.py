"""Cascade (second-order-section) realization.

Poles are grouped into conjugate pairs, ordered by radius (the pair
closest to the unit circle first), and each pair is matched with its
nearest zero pair — the classic pairing rule that minimizes section
peak gain.  The overall gain is distributed evenly across sections.

Cascades combine low coefficient sensitivity (each biquad's
coefficients only control two poles) with a short feedback loop (one
multiply and two additions per biquad, sections pipelinable in
between) — which is why they dominate the high-throughput end of the
paper's Table 4.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction


def group_conjugate_roots(roots: np.ndarray) -> List[np.ndarray]:
    """Split roots into conjugate pairs and single real roots."""
    remaining = list(roots)
    groups: List[np.ndarray] = []
    reals: List[complex] = []
    while remaining:
        root = remaining.pop(0)
        if abs(root.imag) < 1e-9:
            reals.append(root)
            continue
        match_idx = None
        for i, other in enumerate(remaining):
            if abs(other - np.conj(root)) < 1e-6 * max(1.0, abs(root)):
                match_idx = i
                break
        if match_idx is None:
            raise FilterDesignError("complex root without a conjugate twin")
        remaining.pop(match_idx)
        groups.append(np.array([root, np.conj(root)]))
    # Pair up real roots two at a time; a leftover becomes first order.
    reals.sort(key=lambda r: abs(r), reverse=True)
    while len(reals) >= 2:
        groups.append(np.array([reals.pop(0), reals.pop(0)]))
    if reals:
        groups.append(np.array([reals.pop(0)]))
    return groups


def _pair_sections(
    pole_groups: List[np.ndarray], zero_groups: List[np.ndarray]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Match each pole group with its nearest unused zero group."""
    pole_groups = sorted(
        pole_groups, key=lambda g: float(np.max(np.abs(g))), reverse=True
    )
    unused = list(zero_groups)
    sections = []
    for poles in pole_groups:
        if unused:
            distances = [
                float(np.min(np.abs(poles[0] - zeros))) for zeros in unused
            ]
            zeros = unused.pop(int(np.argmin(distances)))
        else:
            zeros = np.array([])
        sections.append((poles, zeros))
    if unused:
        raise FilterDesignError("more zeros than poles; not a proper filter")
    return sections


@register_structure
class Cascade(Realization):
    """A chain of first/second-order direct-form-II sections."""

    name = "cascade"

    def __init__(self, sections: List[Tuple[np.ndarray, np.ndarray]]) -> None:
        #: list of (b, a) coefficient arrays, each of length <= 3, a[0]=1.
        self.sections = [
            (np.asarray(b, dtype=float), np.asarray(a, dtype=float))
            for b, a in sections
        ]

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "Cascade":
        zpk = tf.to_zpk()
        pole_groups = group_conjugate_roots(np.asarray(zpk.poles))
        zero_groups = group_conjugate_roots(np.asarray(zpk.zeros))
        paired = _pair_sections(pole_groups, zero_groups)
        n_sections = max(len(paired), 1)
        magnitude = abs(zpk.gain) ** (1.0 / n_sections)
        sign = math.copysign(1.0, zpk.gain)
        sections = []
        for index, (poles, zeros) in enumerate(paired):
            b = np.real(np.poly(zeros)) if zeros.size else np.array([1.0])
            a = np.real(np.poly(poles))
            scale = magnitude * (sign if index == 0 else 1.0)
            sections.append((b * scale, a))
        if not sections:
            sections.append((np.array([zpk.gain]), np.array([1.0])))
        return cls(sections)

    # ------------------------------------------------------------------

    def coefficients(self) -> Dict[str, np.ndarray]:
        coeffs: Dict[str, np.ndarray] = {}
        for i, (b, a) in enumerate(self.sections):
            coeffs[f"b{i}"] = b
            coeffs[f"a{i}"] = a[1:]
        return coeffs

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "Cascade":
        sections = []
        for i in range(len(self.sections)):
            b = coeffs[f"b{i}"]
            a = np.concatenate([[1.0], coeffs[f"a{i}"]])
            sections.append((b, a))
        return Cascade(sections)

    def to_tf(self) -> TransferFunction:
        b_total = np.array([1.0])
        a_total = np.array([1.0])
        for b, a in self.sections:
            b_total = np.convolve(b_total, b)
            a_total = np.convolve(a_total, a)
        return TransferFunction(b_total, a_total)

    def simulate(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=float)
        for b, a in self.sections:
            y = TransferFunction(b, a).filter(y, state_hook=self.fault_hook)
        return y

    def dataflow(self) -> DataflowStats:
        multiplies = 0
        additions = 0
        delays = 0
        for b, a in self.sections:
            order = max(b.size, a.size) - 1
            multiplies += b.size + (a.size - 1)
            additions += (b.size - 1) + (a.size - 1)
            delays += order
        return DataflowStats(
            multiplies=multiplies,
            additions=additions,
            delays=delays,
            loop_multiplies=1,
            loop_additions=2,
            chain_local=True,
        )
