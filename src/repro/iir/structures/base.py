"""Realization-structure protocol.

The paper's IIR design space is spanned first of all by the
*topological structure* (Sec. 3.4): realizations of the same transfer
function that "greatly differ in terms of hardware requirements, such
as number of multiplications, number of additions, word length,
interconnect, and registers".  Every structure here knows its

- coefficient set (what gets quantized to a finite word length),
- time-domain simulation through its own topology,
- reconstruction of the transfer function *from its (possibly
  quantized) coefficients* — the mechanism by which per-structure
  coefficient sensitivity emerges,
- dataflow statistics (operation counts, registers, and the longest
  feedback cycle, which bounds achievable throughput) for the
  HYPER-style synthesis estimator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from typing import Dict, List, Type

import numpy as np

from repro.errors import FilterDesignError
from repro.hardware.synthesis import DataflowStats
from repro.iir.transfer import TransferFunction
from repro.utils.fixed import (
    needed_integer_bits,
    quantize_array,
    quantize_mantissa,
)


class Realization(ABC):
    """A filter structure holding its own coefficient arrays."""

    #: Registry name, e.g. "cascade"; set by subclasses.
    name: str = "abstract"

    #: Optional fault-injection state hook, ``hook(state, n) -> state``
    #: (see :mod:`repro.resilience`): every structure routes its delay
    #: line / state words through it per simulated sample when set.
    fault_hook = None

    #: Structures whose implementations conventionally scale each
    #: coefficient by its own power of two (a barrel shift after the
    #: multiply) set this; quantization then preserves *relative*
    #: precision per coefficient instead of per array.
    per_coefficient_scaling: bool = False

    # -- construction ----------------------------------------------------

    @classmethod
    @abstractmethod
    def from_tf(cls, tf: TransferFunction) -> "Realization":
        """Realize a transfer function in this topology."""

    # -- coefficients ------------------------------------------------------

    @abstractmethod
    def coefficients(self) -> Dict[str, np.ndarray]:
        """Named coefficient arrays (the quantization targets)."""

    @abstractmethod
    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "Realization":
        """A copy of this realization with replaced coefficients."""

    def quantized(self, word_length: int) -> "Realization":
        """Coefficients rounded to ``word_length``-bit fixed point.

        Each coefficient array gets the fractional precision left after
        reserving the integer bits its own magnitudes need — so a
        structure with small, well-conditioned coefficients (e.g.
        lattice reflection coefficients, all < 1) retains more
        fractional bits at the same word length than one with large
        coefficients (e.g. a continued-fraction expansion).
        """
        quantized: Dict[str, np.ndarray] = {}
        for key, values in self.coefficients().items():
            if self.per_coefficient_scaling:
                quantized[key] = quantize_mantissa(values, word_length)
                continue
            integer_bits = needed_integer_bits(values)
            frac_bits = word_length - 1 - integer_bits
            if frac_bits < 0:
                raise FilterDesignError(
                    f"{self.name}: coefficients of {key} need more than "
                    f"{word_length} bits for their integer part alone"
                )
            quantized[key] = quantize_array(values, word_length, frac_bits)
        return self.with_coefficients(quantized)

    # -- behaviour ---------------------------------------------------------

    @abstractmethod
    def to_tf(self) -> TransferFunction:
        """Transfer function implied by the current coefficients."""

    @abstractmethod
    def simulate(self, x: np.ndarray) -> np.ndarray:
        """Filter a signal through this topology sample by sample."""

    @abstractmethod
    def dataflow(self) -> DataflowStats:
        """Operation/register counts for the synthesis estimator."""

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        stats = self.dataflow()
        return (
            f"{type(self).__name__}(mults={stats.multiplies}, "
            f"adds={stats.additions}, delays={stats.delays})"
        )


#: Registry mapping structure names to classes; populated on import by
#: each structure module.
STRUCTURE_REGISTRY: Dict[str, Type[Realization]] = {}


def register_structure(cls: Type[Realization]) -> Type[Realization]:
    """Class decorator adding a realization to the registry."""
    if cls.name in STRUCTURE_REGISTRY:
        raise FilterDesignError(f"duplicate structure name {cls.name!r}")
    STRUCTURE_REGISTRY[cls.name] = cls
    return cls


def available_structures() -> List[str]:
    return sorted(STRUCTURE_REGISTRY)


def realize(name: str, tf: TransferFunction) -> Realization:
    """Realize ``tf`` in the named structure."""
    try:
        cls = STRUCTURE_REGISTRY[name]
    except KeyError as exc:
        raise FilterDesignError(
            f"unknown structure {name!r}; available: {available_structures()}"
        ) from exc
    return cls.from_tf(tf)
