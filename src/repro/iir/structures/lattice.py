"""Lattice-ladder ("ladder") realization.

The denominator becomes reflection coefficients via the backward
Levinson recursion; the numerator becomes ladder tap weights on the
backward prediction signals.  Reflection coefficients are bounded by 1
in magnitude for a stable filter and quantize extremely gracefully —
the low-sensitivity structure of the set, and the paper's Table 4
winner at the *loosest* throughput constraint.  The price is the long
serial feedback path through every lattice stage, which caps the
achievable sample rate.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction


def reflection_coefficients(a: np.ndarray) -> np.ndarray:
    """Backward Levinson recursion: denominator -> reflection coeffs."""
    a = np.asarray(a, dtype=float)
    order = a.size - 1
    current = a / a[0]
    ks = np.zeros(order)
    for m in range(order, 0, -1):
        k = current[m]
        if abs(k) >= 1.0:
            raise FilterDesignError(
                "reflection coefficient >= 1; filter is not minimum-phase "
                "stable in lattice form"
            )
        ks[m - 1] = k
        if m > 1:
            denom = 1.0 - k * k
            # previous[i] = (current[i] - k * current[m - i]) / (1 - k^2)
            reversed_head = current[m - np.arange(m)]
            previous = (current[:m] - k * reversed_head) / denom
            current = np.concatenate([previous, np.zeros(a.size - m)])
        else:
            current = np.array([1.0])
    return ks


def predictor_polynomials(ks: np.ndarray) -> List[np.ndarray]:
    """Forward Levinson: reflection coeffs -> A_m(z) for m = 0..order."""
    polys = [np.array([1.0])]
    for m, k in enumerate(np.asarray(ks, dtype=float), start=1):
        prev = polys[-1]
        padded = np.concatenate([prev, [0.0]])
        reversed_prev = padded[::-1]
        polys.append(padded + k * reversed_prev)
    return polys


def ladder_coefficients(b: np.ndarray, polys: List[np.ndarray]) -> np.ndarray:
    """Solve the triangular system giving the ladder tap weights.

    With backward polynomials ``B_m`` (reversed ``A_m``), the numerator
    is ``sum_m v_m B_m``; the taps follow by back substitution.
    """
    order = len(polys) - 1
    b_full = np.zeros(order + 1)
    b_arr = np.asarray(b, dtype=float)
    if b_arr.size > order + 1:
        raise FilterDesignError("numerator longer than denominator order + 1")
    b_full[: b_arr.size] = b_arr
    v = np.zeros(order + 1)
    for j in range(order, -1, -1):
        acc = b_full[j]
        for m in range(j + 1, order + 1):
            acc -= v[m] * polys[m][m - j]
        v[j] = acc  # polys[j][0] == 1
    return v


@register_structure
class LatticeLadder(Realization):
    """IIR lattice with ladder output taps."""

    name = "ladder"
    per_coefficient_scaling = True

    def __init__(self, ks: np.ndarray, vs: np.ndarray) -> None:
        self.ks = np.asarray(ks, dtype=float)
        self.vs = np.asarray(vs, dtype=float)
        if self.vs.size != self.ks.size + 1:
            raise FilterDesignError("need exactly order+1 ladder taps")

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "LatticeLadder":
        ks = reflection_coefficients(tf.a)
        polys = predictor_polynomials(ks)
        vs = ladder_coefficients(tf.b, polys)
        return cls(ks, vs)

    # ------------------------------------------------------------------

    def coefficients(self) -> Dict[str, np.ndarray]:
        return {"k": self.ks, "v": self.vs}

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "LatticeLadder":
        return LatticeLadder(coeffs["k"], coeffs["v"])

    def quantized(self, word_length: int) -> "LatticeLadder":
        """Mantissa-quantize taps; store reflection coefficients near
        +/-1 as their complement.

        Narrow-band filters push reflection coefficients toward the
        stability boundary; lattice implementations conventionally
        store ``1 - |k|`` there (the pole radius depends on exactly
        that quantity), which preserves the structure's celebrated
        low-sensitivity behaviour at small word lengths.
        """
        from repro.utils.fixed import quantize_mantissa

        ks = self.ks.copy()
        near_one = np.abs(ks) > 0.5
        complements = quantize_mantissa(1.0 - np.abs(ks[near_one]), word_length)
        ks[near_one] = np.sign(ks[near_one]) * (1.0 - complements)
        ks[~near_one] = quantize_mantissa(ks[~near_one], word_length)
        vs = quantize_mantissa(self.vs, word_length)
        return LatticeLadder(ks, vs)

    def to_tf(self) -> TransferFunction:
        polys = predictor_polynomials(self.ks)
        order = self.ks.size
        a = polys[order]
        b = np.zeros(order + 1)
        for m in range(order + 1):
            # B_m (reversed A_m) has degree m: contributes to b[0..m].
            b[: m + 1] += self.vs[m] * polys[m][::-1]
        return TransferFunction(b, a)

    def simulate(self, x: np.ndarray) -> np.ndarray:
        order = self.ks.size
        x = np.asarray(x, dtype=float)
        g_delayed = np.zeros(order)  # delayed backward signals g_0..g_{order-1}
        y = np.empty_like(x)
        for n, sample in enumerate(x):
            f = sample
            g = np.zeros(order + 1)
            for m in range(order, 0, -1):
                f = f - self.ks[m - 1] * g_delayed[m - 1]
                g[m] = self.ks[m - 1] * f + g_delayed[m - 1]
            g[0] = f
            y[n] = float(np.dot(self.vs, g))
            g_delayed = g[:order].copy()
            if self.fault_hook is not None:
                g_delayed = self.fault_hook(g_delayed, n)
        return y

    def dataflow(self) -> DataflowStats:
        order = self.ks.size
        return DataflowStats(
            multiplies=2 * order + (order + 1),
            additions=2 * order + order,
            delays=order,
            # The feedback path runs serially through every stage, and
            # within a stage g_m depends on f_{m-1}: two dependent
            # multiply-add pairs per stage.
            loop_multiplies=2 * order,
            loop_additions=2 * order,
            chain_local=True,
        )
