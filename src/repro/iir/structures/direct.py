"""Direct-form realizations (forms I and II).

Both implement the difference equation straight from the transfer
function coefficients; they differ only in delay count.  Direct forms
are the cheapest to derive but have the classic weakness the structure
exploration exposes: for higher orders with clustered poles, the
polynomial coefficients are exquisitely sensitive to quantization.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction


class _DirectFormBase(Realization):
    """Shared coefficient handling of the two direct forms."""

    def __init__(self, b: np.ndarray, a: np.ndarray) -> None:
        self.b = np.asarray(b, dtype=float)
        self.a = np.asarray(a, dtype=float)

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "_DirectFormBase":
        return cls(tf.b.copy(), tf.a.copy())

    def coefficients(self) -> Dict[str, np.ndarray]:
        # a[0] == 1 is structural (no multiplier), not a coefficient.
        return {"b": self.b, "a": self.a[1:]}

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "_DirectFormBase":
        return type(self)(coeffs["b"], np.concatenate([[1.0], coeffs["a"]]))

    def to_tf(self) -> TransferFunction:
        return TransferFunction(self.b, self.a)

    def simulate(self, x: np.ndarray) -> np.ndarray:
        return self.to_tf().filter(x, state_hook=self.fault_hook)

    def _orders(self) -> Dict[str, int]:
        return {"num": self.b.size - 1, "den": self.a.size - 1}

    def _loop_stats(self) -> Dict[str, int]:
        den = self._orders()["den"]
        return {
            "loop_multiplies": 1 if den else 0,
            "loop_additions": max(1, math.ceil(math.log2(den + 1))) if den else 0,
        }


@register_structure
class DirectFormI(_DirectFormBase):
    """Direct form I: separate numerator and denominator delay lines."""

    name = "direct1"

    def dataflow(self) -> DataflowStats:
        orders = self._orders()
        return DataflowStats(
            multiplies=orders["num"] + 1 + orders["den"],
            additions=orders["num"] + orders["den"],
            delays=orders["num"] + orders["den"],
            **self._loop_stats(),
        )


@register_structure
class DirectFormII(_DirectFormBase):
    """Direct form II: shared (canonic) delay line."""

    name = "direct2"

    def dataflow(self) -> DataflowStats:
        orders = self._orders()
        return DataflowStats(
            multiplies=orders["num"] + 1 + orders["den"],
            additions=orders["num"] + orders["den"],
            delays=max(orders["num"], orders["den"]),
            **self._loop_stats(),
        )
