"""Continued-fraction realization.

The transfer function is expanded as a continued fraction in
``z^-1``::

    H(z) = q_0 + 1 / (t_1/z^-1 + 1 / (t_2/z^-1 + ...))

by alternately extracting the constant term and inverting the
remainder.  The expansion coefficients can take wildly differing
magnitudes — the continued-fraction form is the notoriously
quantization-hostile member of the structure set, and filters for which
the expansion is singular are simply not realizable this way (the
evaluator treats that as an infeasible candidate, as the paper's tools
would).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction

#: Relative magnitude below which a leading coefficient counts as zero
#: (the expansion is then singular).
_SINGULAR_TOLERANCE = 1e-9

#: Expansion coefficients beyond this magnitude make the structure
#: unquantizable at any practical word length.
_MAX_COEFFICIENT = 1e6


def _trim(poly: np.ndarray) -> np.ndarray:
    """Drop trailing (high-order in z^-1) near-zero coefficients."""
    poly = np.asarray(poly, dtype=float)
    scale = float(np.max(np.abs(poly), initial=0.0))
    if scale == 0.0:
        return np.zeros(0)
    mask = np.abs(poly) > _SINGULAR_TOLERANCE * scale
    if not mask.any():
        return np.zeros(0)
    return poly[: int(np.max(np.nonzero(mask))) + 1]


def continued_fraction_expand(tf: TransferFunction) -> List[float]:
    """Expansion coefficients [q0, q1, ...] of H about z^-1 = 0."""
    num = tf.b.copy()
    den = tf.a.copy()
    coefficients: List[float] = []
    for _ in range(2 * (tf.order + 1) + 1):
        num = _trim(num)
        den = _trim(den)
        if den.size == 0:
            raise FilterDesignError("continued fraction: zero denominator")
        if abs(den[0]) < _SINGULAR_TOLERANCE * float(np.max(np.abs(den))):
            raise FilterDesignError(
                "continued fraction expansion singular for this filter"
            )
        if num.size == 0:
            break
        q = num[0] / den[0]
        if abs(q) > _MAX_COEFFICIENT:
            raise FilterDesignError(
                "continued fraction coefficient magnitude exploded"
            )
        coefficients.append(float(q))
        remainder = num.copy()
        remainder.resize(max(num.size, den.size), refcheck=False)
        remainder[: den.size] -= q * den
        remainder = _trim(remainder)
        if remainder.size == 0:
            break
        if abs(remainder[0]) > _SINGULAR_TOLERANCE * float(
            np.max(np.abs(remainder))
        ):
            raise FilterDesignError(
                "continued fraction remainder has a non-zero constant term"
            )
        num, den = den, remainder[1:]  # divide the remainder by z^-1
    else:
        raise FilterDesignError("continued fraction expansion did not end")
    return coefficients


def continued_fraction_fold(coefficients: List[float]) -> TransferFunction:
    """Rebuild the transfer function from expansion coefficients."""
    if not coefficients:
        raise FilterDesignError("empty continued fraction")
    num = np.array([coefficients[-1]])
    den = np.array([1.0])
    for q in reversed(coefficients[:-1]):
        # H <- q + z^-1 / H  ==  (q*num + z^-1*den) / num
        shifted_den = np.concatenate([[0.0], den])
        new_num = q * num
        size = max(new_num.size, shifted_den.size)
        merged = np.zeros(size)
        merged[: new_num.size] += new_num
        merged[: shifted_den.size] += shifted_den
        num, den = merged, num
    return TransferFunction(num, den)


@register_structure
class ContinuedFraction(Realization):
    """Continued-fraction-expansion realization."""

    name = "continued"

    def __init__(self, expansion: np.ndarray) -> None:
        self.expansion = np.asarray(expansion, dtype=float)
        if self.expansion.size == 0:
            raise FilterDesignError("empty continued fraction")

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "ContinuedFraction":
        expansion = continued_fraction_expand(tf)
        rebuilt = continued_fraction_fold(expansion)
        # Guard: the expansion must reproduce the filter to working
        # precision, otherwise the candidate is numerically unusable.
        omega = np.linspace(0.05, 3.0, 64)
        err = np.max(
            np.abs(rebuilt.response(omega) - tf.response(omega))
        )
        if not np.isfinite(err) or err > 1e-3:
            raise FilterDesignError(
                "continued fraction expansion numerically unstable "
                f"(reconstruction error {err:.2g})"
            )
        return cls(np.array(expansion))

    # ------------------------------------------------------------------

    def coefficients(self) -> Dict[str, np.ndarray]:
        return {"q": self.expansion}

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "ContinuedFraction":
        return ContinuedFraction(coeffs["q"])

    def to_tf(self) -> TransferFunction:
        return continued_fraction_fold(list(self.expansion))

    def simulate(self, x: np.ndarray) -> np.ndarray:
        # The nested feedback topology is simulated through its exact
        # reconstructed coefficients (which carry the quantization).
        return self.to_tf().filter(
            np.asarray(x, dtype=float), state_hook=self.fault_hook
        )

    def dataflow(self) -> DataflowStats:
        n = self.expansion.size
        order = (n - 1 + 1) // 2 if n > 1 else 0
        return DataflowStats(
            multiplies=n,
            additions=n - 1,
            delays=max(order, n // 2),
            # Fully serial nested loops.
            loop_multiplies=max(1, n - 1),
            loop_additions=max(1, n - 1),
        )
