"""Realization structures for IIR filters (paper Sec. 3.4).

Importing this package registers every structure: direct form I/II,
cascade, parallel, lattice-ladder, continued fraction, and (balanced)
state space.  The wave-digital, orthogonal, and multivariable-lattice
structures the paper's survey also names are not implemented; they do
not appear among the Table 4 winners (see DESIGN.md).
"""

from repro.iir.structures.base import (
    STRUCTURE_REGISTRY,
    DataflowStats,
    Realization,
    available_structures,
    realize,
    register_structure,
)
from repro.iir.structures.direct import DirectFormI, DirectFormII
from repro.iir.structures.cascade import Cascade, group_conjugate_roots
from repro.iir.structures.parallel import Parallel, partial_fractions
from repro.iir.structures.lattice import (
    LatticeLadder,
    ladder_coefficients,
    predictor_polynomials,
    reflection_coefficients,
)
from repro.iir.structures.continued import (
    ContinuedFraction,
    continued_fraction_expand,
    continued_fraction_fold,
)
from repro.iir.structures.statespace import (
    StateSpace,
    balance,
    controllable_canonical,
    gramian,
)

__all__ = [
    "STRUCTURE_REGISTRY",
    "DataflowStats",
    "Realization",
    "available_structures",
    "realize",
    "register_structure",
    "DirectFormI",
    "DirectFormII",
    "Cascade",
    "group_conjugate_roots",
    "Parallel",
    "partial_fractions",
    "LatticeLadder",
    "ladder_coefficients",
    "predictor_polynomials",
    "reflection_coefficients",
    "ContinuedFraction",
    "continued_fraction_expand",
    "continued_fraction_fold",
    "StateSpace",
    "balance",
    "controllable_canonical",
    "gramian",
]
