"""Parallel realization via partial-fraction expansion.

The transfer function is split into a feed-through constant plus a sum
of first/second-order sections, one per (conjugate pair of) pole(s).
Sections run concurrently — plenty of instruction-level parallelism at
moderate resource counts, which is where the parallel form wins in the
paper's Table 4 — at the cost of residue coefficients whose dynamic
range (and hence word-length demand) grows for narrow-band filters.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction

#: Pole separation (relative) below which the expansion is rejected;
#: repeated poles would need generalized residues.
_MIN_POLE_SEPARATION = 1e-7


def partial_fractions(
    tf: TransferFunction,
) -> Tuple[float, List[Tuple[np.ndarray, np.ndarray]]]:
    """Expand ``H`` into ``c + sum_i  N_i(z^-1) / D_i(z^-1)``.

    Returns the constant and a list of (numerator, denominator)
    coefficient arrays (ascending in ``z^-1``, denominators monic).
    """
    b = tf.b.copy()
    a = tf.a.copy()
    deg_b, deg_a = b.size - 1, a.size - 1
    if deg_b > deg_a:
        raise FilterDesignError("improper transfer function")
    constant = 0.0
    if deg_b == deg_a:
        # In x = z^-1, divide off the x^N term.
        constant = b[-1] / a[-1]
        b = b - constant * a
        b = b[:-1]
    poles_x = np.roots(a[::-1])  # roots in x = z^-1
    if poles_x.size:
        separation = np.min(
            np.abs(poles_x[:, None] - poles_x[None, :])
            + np.eye(poles_x.size) * 1e9
        )
        if separation < _MIN_POLE_SEPARATION * max(1.0, float(np.max(np.abs(poles_x)))):
            raise FilterDesignError(
                "parallel form needs distinct poles (repeated pole found)"
            )
    # Residues of b(x)/a(x) at each x_i: b(x_i) / a'(x_i).
    a_desc = a[::-1]
    da_desc = np.polyder(a_desc)
    residues = np.polyval(b[::-1], poles_x) / np.polyval(da_desc, poles_x)
    # Convert r/(x - x_i) into s/(1 - p z^-1) with p = 1/x_i, s = -r p.
    poles_z = 1.0 / poles_x
    strengths = -residues * poles_z
    sections: List[Tuple[np.ndarray, np.ndarray]] = []
    used = np.zeros(poles_z.size, dtype=bool)
    for i, pole in enumerate(poles_z):
        if used[i]:
            continue
        used[i] = True
        if abs(pole.imag) < 1e-9:
            sections.append(
                (
                    np.array([strengths[i].real]),
                    np.array([1.0, -pole.real]),
                )
            )
            continue
        match = None
        for j in range(i + 1, poles_z.size):
            if not used[j] and abs(poles_z[j] - np.conj(pole)) < 1e-6 * max(
                1.0, abs(pole)
            ):
                match = j
                break
        if match is None:
            raise FilterDesignError("complex pole without a conjugate twin")
        used[match] = True
        s = strengths[i]
        num = np.array([2.0 * s.real, -2.0 * (s * np.conj(pole)).real])
        den = np.array([1.0, -2.0 * pole.real, abs(pole) ** 2])
        sections.append((num, den))
    return float(np.real(constant)), sections


@register_structure
class Parallel(Realization):
    """Feed-through constant plus parallel first/second-order sections."""

    name = "parallel"

    def __init__(
        self,
        constant: float,
        sections: List[Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        self.constant = float(constant)
        self.sections = [
            (np.asarray(num, dtype=float), np.asarray(den, dtype=float))
            for num, den in sections
        ]

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "Parallel":
        constant, sections = partial_fractions(tf)
        return cls(constant, sections)

    # ------------------------------------------------------------------

    def coefficients(self) -> Dict[str, np.ndarray]:
        coeffs: Dict[str, np.ndarray] = {"c": np.array([self.constant])}
        for i, (num, den) in enumerate(self.sections):
            coeffs[f"num{i}"] = num
            coeffs[f"den{i}"] = den[1:]
        return coeffs

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "Parallel":
        sections = []
        for i in range(len(self.sections)):
            num = coeffs[f"num{i}"]
            den = np.concatenate([[1.0], coeffs[f"den{i}"]])
            sections.append((num, den))
        return Parallel(float(coeffs["c"][0]), sections)

    def to_tf(self) -> TransferFunction:
        b_total = np.array([self.constant])
        a_total = np.array([1.0])
        for num, den in self.sections:
            b_total = np.convolve(b_total, den)
            pad = np.convolve(num, a_total)
            size = max(b_total.size, pad.size)
            b_new = np.zeros(size)
            b_new[: b_total.size] += b_total
            b_new[: pad.size] += pad
            b_total = b_new
            a_total = np.convolve(a_total, den)
        return TransferFunction(b_total, a_total)

    def simulate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = self.constant * x
        for num, den in self.sections:
            y = y + TransferFunction(num, den).filter(
                x, state_hook=self.fault_hook
            )
        return y

    def dataflow(self) -> DataflowStats:
        multiplies = 1  # the feed-through constant
        additions = len(self.sections)  # output combining
        delays = 0
        for num, den in self.sections:
            multiplies += num.size + (den.size - 1)
            additions += (num.size - 1) + (den.size - 1)
            delays += den.size - 1
        return DataflowStats(
            multiplies=multiplies,
            additions=additions,
            delays=delays,
            loop_multiplies=1,
            loop_additions=2,
        )
