"""State-space realizations (canonical and balanced).

``x[n+1] = A x[n] + B u[n]``, ``y[n] = C x[n] + D u[n]``.  The
controllable-canonical form shares direct-form sensitivity; the
*balanced* form (equal, diagonal controllability/observability
Gramians) has excellent quantization behaviour at the cost of a dense
``A`` — order-squared multiplies, the structure exploration's extreme
area/robustness trade-off point.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.structures.base import (
    DataflowStats,
    Realization,
    register_structure,
)
from repro.iir.transfer import TransferFunction


def controllable_canonical(tf: TransferFunction):
    """(A, B, C, D) in controllable canonical form."""
    order = tf.a.size - 1
    if order == 0:
        return (
            np.zeros((0, 0)),
            np.zeros((0, 1)),
            np.zeros((1, 0)),
            float(tf.b[0]),
        )
    a = tf.a
    b = np.zeros(order + 1)
    b[: tf.b.size] = tf.b
    matrix_a = np.zeros((order, order))
    matrix_a[0, :] = -a[1:]
    if order > 1:
        matrix_a[1:, :-1] = np.eye(order - 1)
    matrix_b = np.zeros((order, 1))
    matrix_b[0, 0] = 1.0
    d = b[0]
    matrix_c = (b[1:] - d * a[1:]).reshape(1, order)
    return matrix_a, matrix_b, matrix_c, float(d)


def gramian(a: np.ndarray, b: np.ndarray, iterations: int = 64) -> np.ndarray:
    """Discrete Lyapunov solution ``X = A X A^T + B B^T`` by doubling."""
    x = b @ b.T
    a_power = a.copy()
    with np.errstate(over="ignore", invalid="ignore"):
        for _ in range(iterations):
            update = a_power @ x @ a_power.T
            if not np.all(np.isfinite(update)):
                # Repeated squaring of strongly non-normal matrices
                # (high-order companions with near-unit poles) can
                # overflow transiently; the candidate is unusable.
                raise FilterDesignError(
                    "gramian iteration diverged; system too ill-conditioned "
                    "to balance"
                )
            if float(np.max(np.abs(update))) < 1e-15 * max(
                1.0, float(np.max(np.abs(x)))
            ):
                break
            x = x + update
            a_power = a_power @ a_power
    return x


def balance(a: np.ndarray, b: np.ndarray, c: np.ndarray):
    """Similarity transform to a balanced realization."""
    if a.shape[0] == 0:
        return a, b, c
    spectral_radius = float(np.max(np.abs(np.linalg.eigvals(a))))
    if spectral_radius >= 1.0:
        raise FilterDesignError("cannot balance an unstable system")
    wc = gramian(a, b)
    wo = gramian(a.T, c.T)
    # Square root of Wc via eigen decomposition (Wc is PSD symmetric).
    vals, vecs = np.linalg.eigh((wc + wc.T) / 2.0)
    vals = np.maximum(vals, 1e-300)
    sqrt_wc = vecs @ np.diag(np.sqrt(vals)) @ vecs.T
    middle = sqrt_wc @ wo @ sqrt_wc
    svals, svecs = np.linalg.eigh((middle + middle.T) / 2.0)
    order = np.argsort(svals)[::-1]
    svals = np.maximum(svals[order], 1e-300)
    svecs = svecs[:, order]
    hankel = np.sqrt(np.sqrt(svals))
    transform = sqrt_wc @ svecs @ np.diag(1.0 / hankel)
    inverse = np.diag(hankel) @ svecs.T @ np.linalg.solve(
        sqrt_wc, np.eye(a.shape[0])
    )
    return inverse @ a @ transform, inverse @ b, c @ transform


@register_structure
class StateSpace(Realization):
    """Balanced state-space realization."""

    name = "statespace"

    #: Subclasses / factory flag: balance after canonical construction.
    balanced = True

    def __init__(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, d: float
    ) -> None:
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float).reshape(self.a.shape[0], 1)
        self.c = np.asarray(c, dtype=float).reshape(1, self.a.shape[0])
        self.d = float(d)

    @classmethod
    def from_tf(cls, tf: TransferFunction) -> "StateSpace":
        a, b, c, d = controllable_canonical(tf)
        if cls.balanced and a.shape[0]:
            a, b, c = balance(a, b, c)
        return cls(a, b, c, d)

    # ------------------------------------------------------------------

    def coefficients(self) -> Dict[str, np.ndarray]:
        return {
            "A": self.a.ravel(),
            "B": self.b.ravel(),
            "C": self.c.ravel(),
            "D": np.array([self.d]),
        }

    def with_coefficients(self, coeffs: Dict[str, np.ndarray]) -> "StateSpace":
        order = self.a.shape[0]
        return StateSpace(
            coeffs["A"].reshape(order, order),
            coeffs["B"],
            coeffs["C"],
            float(coeffs["D"][0]),
        )

    def to_tf(self) -> TransferFunction:
        order = self.a.shape[0]
        if order == 0:
            return TransferFunction([self.d], [1.0])
        den = np.poly(self.a)
        # det(zI - A + B C) = den(z) (1 + C (zI - A)^{-1} B), so the
        # strictly proper part's numerator is poly(A - B C) - poly(A).
        num = np.poly(self.a - self.b @ self.c) - den + self.d * den
        return TransferFunction(num, den)

    def simulate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        order = self.a.shape[0]
        state = np.zeros(order)
        y = np.empty_like(x)
        hook = self.fault_hook
        for n, sample in enumerate(x):
            y[n] = (self.c @ state).item() + self.d * sample
            state = self.a @ state + self.b[:, 0] * sample
            if hook is not None:
                state = hook(state, n)
        return y

    def dataflow(self) -> DataflowStats:
        order = self.a.shape[0]
        return DataflowStats(
            multiplies=order * order + 2 * order + 1,
            additions=order * order + order,
            delays=order,
            loop_multiplies=1,
            loop_additions=max(1, math.ceil(math.log2(max(order, 2)))),
        )
