"""The IIR MetaCore — the paper's validation example (Sec. 4.5, 5.3).

Design space: realization structure, filter family (which sets the
order / number of stages for the spec), coefficient word length, and
the ripple allocation — how much of the specified ripple budget the
nominal design consumes, leaving the rest as quantization margin.

The cost-evaluation engine designs the filter, realizes it in the
chosen structure, quantizes the coefficients, measures the quantized
response against the full specification (SPW's role in the paper), and
prices the implementation with the HYPER-style synthesis estimator.
"""

from __future__ import annotations

import math
import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.evalcache import PersistentEvalCache
from repro.core.objectives import Constraint, DesignGoal, Objective
from repro.core.parallel import ParallelEvaluator
from repro.core.parameters import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Point,
)
from repro.core.search import MetacoreSearch, SearchConfig, SearchResult
from repro.errors import ConfigurationError, FilterDesignError, SynthesisError
from repro.hardware.synthesis import SynthesisEstimate, estimate_iir_implementation
from repro.iir.design import (
    BandpassSpec,
    FilterSpec,
    LowpassSpec,
    design_filter,
    paper_bandpass_spec,
)
from repro.iir.fixedpoint import check_quantized
from repro.iir.structures.base import Realization, available_structures, realize
from repro.observability.metrics import get_registry
from repro.power import PowerConfig, PowerModel

#: Frequency-grid density per evaluation fidelity (the paper's "longer
#: run times" on finer search grids).
FIDELITY_GRID_POINTS: Tuple[int, ...] = (128, 256, 512)

#: Word lengths the design space exposes.
WORD_LENGTHS: Tuple[int, ...] = tuple(range(6, 25))

FAMILIES: Tuple[str, ...] = (
    "elliptic",
    "chebyshev1",
    "chebyshev2",
    "butterworth",
)


def iir_design_space(fixed: Optional[Dict[str, object]] = None) -> DesignSpace:
    """Structure x family x word length x ripple allocation."""
    fixed = dict(fixed or {})
    definitions = [
        DiscreteParameter(
            "structure",
            tuple(available_structures()),
            Correlation.NONE,
            "realization topology",
        ),
        DiscreteParameter(
            "family",
            FAMILIES,
            Correlation.NONE,
            "approximation family (sets order/stages)",
        ),
        DiscreteParameter(
            "word_length",
            WORD_LENGTHS,
            Correlation.MONOTONIC,
            "coefficient word length (bits)",
        ),
    ]
    parameters = []
    for definition in definitions:
        if definition.name in fixed:
            value = fixed.pop(definition.name)
            definition.index_of(value)
            definition = DiscreteParameter(
                definition.name,
                (value,),
                definition.correlation,
                definition.description,
            )
        parameters.append(definition)
    if "ripple_allocation" in fixed:
        value = float(fixed.pop("ripple_allocation"))
        parameters.append(
            ContinuousParameter(
                "ripple_allocation", value, value, Correlation.QUADRATIC
            )
        )
    else:
        parameters.append(
            ContinuousParameter(
                "ripple_allocation",
                0.3,
                0.9,
                Correlation.QUADRATIC,
                "fraction of the ripple budget spent by the nominal design",
            )
        )
    if fixed:
        raise ConfigurationError(f"unknown fixed parameters: {sorted(fixed)}")
    return DesignSpace(parameters)


@dataclass
class IIRSpec:
    """A user specification: filter spec plus sample period."""

    filter_spec: FilterSpec
    sample_period_us: float
    feature_um: float = 1.2
    #: Opt-in power pricing (see :mod:`repro.power`); None keeps the
    #: classic cost engine and its fingerprints untouched.
    power: Optional[PowerConfig] = None

    def __post_init__(self) -> None:
        if self.sample_period_us <= 0:
            raise ConfigurationError("sample period must be positive")

    @classmethod
    def paper(
        cls,
        sample_period_us: float,
        power: Optional[PowerConfig] = None,
    ) -> "IIRSpec":
        """The Sec. 5.3 band-pass spec at a Table-4 sample period."""
        return cls(
            filter_spec=paper_bandpass_spec(),
            sample_period_us=sample_period_us,
            power=power,
        )

    def goal(self) -> DesignGoal:
        """Minimize area subject to meeting the frequency-domain spec.

        With power pricing enabled, energy per output sample joins the
        objectives (unless configured constraint-only) and the
        configured energy/power caps become constraints.
        """
        objectives = [Objective("area_mm2")]
        constraints = [Constraint("spec_violation", upper=0.0)]
        if self.power is not None:
            if self.power.objective:
                objectives.append(Objective("energy_nj_per_sample"))
            if self.power.max_energy_nj is not None:
                constraints.append(
                    Constraint(
                        "energy_nj_per_sample",
                        upper=self.power.max_energy_nj,
                    )
                )
            if self.power.max_power_mw is not None:
                constraints.append(
                    Constraint("power_mw", upper=self.power.max_power_mw)
                )
        return DesignGoal(objectives=objectives, constraints=constraints)


def _margin_spec(spec: FilterSpec, allocation: float) -> FilterSpec:
    """The tighter spec the nominal design targets.

    Designing to ``allocation * ripple`` leaves ``1 - allocation`` of
    the budget for coefficient quantization.
    """
    if not 0.05 <= allocation <= 1.0:
        raise ConfigurationError("ripple allocation out of (0.05, 1]")
    if isinstance(spec, LowpassSpec):
        return LowpassSpec(
            spec.passband_edge,
            spec.stopband_edge,
            allocation * spec.passband_ripple,
            allocation * spec.stopband_ripple,
        )
    if isinstance(spec, BandpassSpec):
        return BandpassSpec(
            spec.passband_low,
            spec.passband_high,
            spec.stopband_low,
            spec.stopband_high,
            allocation * spec.passband_ripple,
            allocation * spec.stopband_ripple,
        )
    raise ConfigurationError(f"unsupported spec type {type(spec).__name__}")


class IIRMetacoreEvaluator:
    """Cost-evaluation engine for the IIR MetaCore."""

    def __init__(self, spec: IIRSpec) -> None:
        self.spec = spec
        self.max_fidelity = len(FIDELITY_GRID_POINTS) - 1
        self._realizations: Dict[Tuple[str, str, float], Realization] = {}
        self._power_model: Optional[PowerModel] = (
            PowerModel.for_spec(spec.feature_um, spec.power)
            if spec.power is not None
            else None
        )
        #: DVFS delay stretch (1 / clock ratio); exactly 1.0 with power
        #: off or nominal Vdd, keeping non-energy metrics bit-identical.
        self._delay_scale: float = (
            1.0 / self._power_model.frequency_scale
            if self._power_model is not None
            else 1.0
        )

    def fingerprint(self) -> str:
        """Cross-run cache key over the spec and evaluation settings."""
        import repro

        # Enabled power configs get their own cache namespace; the
        # default power-off fingerprint stays byte-identical.
        power = (
            self.spec.power.fingerprint_fragment()
            if self.spec.power is not None
            else ""
        )
        return (
            f"iir:v{repro.__version__}"
            f":grids={FIDELITY_GRID_POINTS}"
            f":period={self.spec.sample_period_us:.6g}"
            f":feature={self.spec.feature_um:.6g}"
            f":spec={self.spec.filter_spec!r}"
            f"{power}"
        )

    # ------------------------------------------------------------------

    def _realization(
        self, structure: str, family: str, allocation: float
    ) -> Realization:
        """Design + realize, cached (designs are deterministic)."""
        key = (structure, family, round(allocation, 4))
        if key not in self._realizations:
            margin = _margin_spec(self.spec.filter_spec, allocation)
            tf = design_filter(margin, family).to_tf()
            self._realizations[key] = realize(structure, tf)
        return self._realizations[key]

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        """Design, realize, quantize, measure, and synthesize one candidate."""
        if not 0 <= fidelity <= self.max_fidelity:
            raise ConfigurationError(f"fidelity {fidelity} out of range")
        grid_points = FIDELITY_GRID_POINTS[fidelity]
        structure = str(point["structure"])
        family = str(point["family"])
        word_length = int(point["word_length"])
        allocation = float(point["ripple_allocation"])
        if self._power_model is not None:
            registry = get_registry()
            registry.counter("power.priced").inc()
            registry.counter(f"power.priced.f{fidelity}").inc()
        dead = {
            "area_mm2": math.inf,
            "spec_violation": math.inf,
            "throughput_samples_per_s": 0.0,
        }
        if self._power_model is not None:
            dead["energy_nj_per_sample"] = math.inf
            dead["power_mw"] = math.inf
        try:
            realization = self._realization(structure, family, allocation)
        except FilterDesignError:
            return dead
        report = check_quantized(
            realization, self.spec.filter_spec, word_length, grid_points
        )
        violation = report.violation(self.spec.filter_spec)
        stats = realization.dataflow()
        try:
            estimate: SynthesisEstimate = estimate_iir_implementation(
                stats,
                word_length,
                self.spec.sample_period_us,
                feature_um=self.spec.feature_um,
                delay_scale=self._delay_scale,
            )
        except SynthesisError:
            return dead
        metrics = {
            "area_mm2": estimate.area_mm2,
            "spec_violation": violation,
            "passband_ripple": report.passband_ripple,
            "stopband_level": report.stopband_level,
            "n_multipliers": float(estimate.n_multipliers),
            "n_adders": float(estimate.n_adders),
            "n_registers": float(estimate.n_registers),
            "clock_ns": estimate.clock_ns,
            "throughput_samples_per_s": estimate.throughput_samples_per_s,
            "latency_us": estimate.latency_us,
        }
        if self._power_model is not None:
            power = self._power_model.iir_report(
                stats, word_length, estimate
            )
            metrics["energy_nj_per_sample"] = power.energy_nj
            metrics["power_mw"] = power.power_mw
        return metrics


@dataclass
class IIRMetaCore:
    """Facade: specification in, optimized realization out."""

    spec: IIRSpec
    fixed: Dict[str, object] = field(default_factory=dict)
    config: Optional[SearchConfig] = None
    #: Worker processes for grid evaluation (1 = serial in-process).
    workers: int = 1
    #: Path of the persistent cross-run evaluation cache (None = cold).
    cache_path: Optional[str] = None
    #: Crash-tolerant session checkpoint (see :mod:`repro.resilience`).
    checkpoint_path: Optional[str] = None
    #: Resume from an existing checkpoint instead of starting cold.
    resume: bool = False
    #: Abort (checkpoint intact) after this many computed rounds.
    max_rounds: Optional[int] = None
    #: Wrap the evaluator in the retry/quarantine shim.
    resilient: bool = False
    #: Path of the persistent design atlas (None = no library): searches
    #: warm-start from it and ingest their logs back into it.
    atlas_path: Optional[str] = None
    #: Search strategy override ("grid", "evolve" or "surrogate");
    #: None defers to :attr:`config` (whose own default is "grid").
    strategy: Optional[str] = None

    def design_space(self) -> DesignSpace:
        """Structure x family x word length x ripple allocation."""
        return iir_design_space(self.fixed)

    def _effective_config(self) -> Optional[SearchConfig]:
        """:attr:`config` with the :attr:`strategy` override applied."""
        if self.strategy is None:
            return self.config
        return replace(self.config or SearchConfig(), strategy=self.strategy)

    def _open_atlas(self, engine: "IIRMetacoreEvaluator"):
        """(atlas, seeder) for this scenario, or (None, None)."""
        if not self.atlas_path:
            return None, None
        # Imported lazily: repro.atlas dispatches on the spec types.
        from repro.atlas import DesignAtlas, seeder_for

        atlas = DesignAtlas(self.atlas_path)
        seeder = seeder_for(atlas, engine, "iir", self.spec, self.spec.goal())
        return atlas, seeder

    def search(self) -> SearchResult:
        """Run the multiresolution search for this specification."""
        if self.checkpoint_path:
            return self.search_session().result
        engine = IIRMetacoreEvaluator(self.spec)
        atlas, seeder = self._open_atlas(engine)
        try:
            return self._run_search(engine, atlas, seeder)
        finally:
            if atlas is not None:
                atlas.close()

    def _run_search(self, engine, atlas, seeder) -> SearchResult:
        """One search against an already-open atlas handle (or None)."""
        evaluator: object = engine
        parallel: Optional[ParallelEvaluator] = None
        store: Optional[PersistentEvalCache] = None
        try:
            if self.workers and self.workers > 1:
                parallel = ParallelEvaluator(evaluator, workers=self.workers)
                evaluator = parallel
            if self.cache_path:
                store = PersistentEvalCache(self.cache_path)
            searcher = MetacoreSearch(
                self.design_space(),
                self.spec.goal(),
                evaluator,
                config=self._effective_config(),
                store=store,
                atlas=seeder,
            )
            result = searcher.run()
            if atlas is not None:
                from repro.atlas import ingest_result

                ingest_result(
                    atlas, seeder, result.log.records, engine.max_fidelity
                )
            return result
        finally:
            if parallel is not None:
                parallel.close()
            if store is not None:
                store.close()

    def search_session(self):
        """Run the search as a checkpointed, resumable session.

        Returns a :class:`~repro.resilience.session.SessionResult`;
        requires :attr:`checkpoint_path`.
        """
        # Imported lazily: repro.resilience depends on this package.
        from repro.resilience.session import SearchSession

        if not self.checkpoint_path:
            raise ConfigurationError("search_session requires checkpoint_path")
        engine = IIRMetacoreEvaluator(self.spec)
        evaluator: object = engine
        parallel: Optional[ParallelEvaluator] = None
        store: Optional[PersistentEvalCache] = None
        atlas, seeder = self._open_atlas(engine)
        try:
            if self.workers and self.workers > 1:
                parallel = ParallelEvaluator(evaluator, workers=self.workers)
                evaluator = parallel
            if self.cache_path:
                store = PersistentEvalCache(self.cache_path)
            session = SearchSession(
                self.design_space(),
                self.spec.goal(),
                evaluator,
                self.checkpoint_path,
                config=self._effective_config(),
                store=store,
                resume=self.resume,
                max_rounds=self.max_rounds,
                resilient=self.resilient,
                atlas=seeder,
            )
            session_result = session.run()
            if atlas is not None:
                from repro.atlas import ingest_result

                ingest_result(
                    atlas,
                    seeder,
                    session_result.result.log.records,
                    engine.max_fidelity,
                )
            return session_result
        finally:
            if parallel is not None:
                parallel.close()
            if store is not None:
                store.close()
            if atlas is not None:
                atlas.close()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        config: Optional[object] = None,
        replicas: int = 1,
    ):
        """Serve this MetaCore's evaluation engine to concurrent clients.

        Starts the asyncio evaluation service (socket server on a
        background thread) with this facade's ``workers`` /
        ``cache_path`` / ``resilient`` settings and a pre-warmed
        session for this specification; returns a started
        :class:`~repro.serve.server.ServeHandle` (context manager).
        Results are bit-identical to one-shot evaluation — see
        ``docs/serving.md``.

        With ``replicas > 1`` this becomes cluster mode: N replica
        services plus a fingerprint-sharded router front door, returned
        as a started :class:`~repro.cluster.handle.ClusterHandle` with
        the same ``client()``/``stop()`` surface.  Replicas share the
        design atlas; results stay bit-identical — see
        ``docs/cluster.md``.
        """
        # Imported lazily: repro.serve depends on this module.
        from repro.serve import ServeHandle, ServiceConfig, spec_to_payload

        if config is None:
            config = ServiceConfig(
                workers=self.workers,
                cache_path=self.cache_path,
                resilient=self.resilient,
                atlas_path=self.atlas_path,
            )
        if replicas > 1:
            from repro.cluster import ClusterHandle

            cluster = ClusterHandle(
                config, replicas=replicas, host=host, port=port
            )
            cluster.start()
            cluster.register_spec(self.spec)
            return cluster
        handle = ServeHandle(
            config, host=host, port=port, unix_path=unix_path
        )
        handle.start()
        handle.service.session_for_spec(spec_to_payload(self.spec))
        return handle

    def recommend(self, constraints: Optional[Dict[str, float]] = None):
        """Answer a constraint query from the design atlas.

        ``constraints`` are extra per-query upper bounds on metrics
        (e.g. ``{"area_mm2": 8.0}``) tightening the specification's
        goal.  A stored frontier design covering the query is returned
        with **zero evaluations**; a library miss falls back to a
        (warm-started) :meth:`search`, whose log is ingested so the
        next nearby query hits.  Requires :attr:`atlas_path`; returns a
        :class:`~repro.atlas.recommend.Recommendation`.
        """
        if not self.atlas_path:
            raise ConfigurationError("recommend requires atlas_path")
        # Imported lazily: repro.atlas dispatches on the spec types.
        from repro.atlas import DesignAtlas, recommend, seeder_for

        engine = IIRMetacoreEvaluator(self.spec)
        with DesignAtlas(self.atlas_path) as atlas:
            seeder = seeder_for(atlas, engine, "iir", self.spec, self.spec.goal())
            recommendation = recommend(
                atlas,
                seeder.fingerprint,
                self.spec.goal(),
                constraints=constraints,
                fallback=self._recommend_fallback(atlas, seeder),
            )
        return recommendation

    def _recommend_fallback(self, atlas, seeder):
        """A warm-started search over the already-open atlas handle."""

        def fallback() -> SearchResult:
            engine = IIRMetacoreEvaluator(self.spec)
            return self._run_search(engine, atlas, seeder)

        return fallback

    def sweep(
        self,
        specs: Sequence[IIRSpec],
        labels: Optional[Sequence[str]] = None,
    ):
        """Search a portfolio of specifications into one atlas.

        Each spec runs through a copy of this facade (same fixed
        parameters, config, workers, cache, atlas); returns a
        :class:`~repro.atlas.sweep.SweepOutcome`.
        """
        from repro.atlas import run_sweep

        metacores = [dataclasses.replace(self, spec=spec) for spec in specs]
        return run_sweep(metacores, labels=labels)

    def build(self, point: Point) -> Realization:
        """The quantized realization a design point describes."""
        evaluator = IIRMetacoreEvaluator(self.spec)
        realization = evaluator._realization(
            str(point["structure"]),
            str(point["family"]),
            float(point["ripple_allocation"]),
        )
        return realization.quantized(int(point["word_length"]))
