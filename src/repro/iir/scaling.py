"""Dynamic-range scaling of cascade realizations.

Fixed-point datapaths overflow when internal nodes swing beyond the
register range.  The classic remedy scales each section of a cascade so
the signal level at every internal node is normalized — under the L2
norm (energy; overflow rare for wide-band signals) or the L-infinity
norm of the frequency response (hard guarantee for sinusoids).  The
overall transfer function is unchanged: each scale factor applied to a
section is undone in the next.

This completes the implementation picture behind the structure
trade-offs of Sec. 3.4: a structure's word length pays for coefficient
sensitivity (fixedpoint.py), round-off noise (noise.py), *and* the
headroom scaling demands (this module).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FilterDesignError
from repro.iir.noise import l2_norm_squared
from repro.iir.structures.cascade import Cascade
from repro.iir.transfer import TransferFunction

SCALING_NORMS = ("l2", "linf")


def linf_norm(tf: TransferFunction, grid_points: int = 1024) -> float:
    """Peak magnitude of the frequency response."""
    omega = np.linspace(0.0, math.pi, grid_points)
    return float(np.max(tf.magnitude(omega)))


def _node_norm(tf: TransferFunction, norm: str) -> float:
    if norm == "l2":
        return math.sqrt(l2_norm_squared(tf))
    if norm == "linf":
        return linf_norm(tf)
    raise FilterDesignError(f"unknown scaling norm {norm!r}")


@dataclass(frozen=True)
class ScalingReport:
    """Node signal levels of a cascade before and after scaling."""

    norm: str
    node_norms_before: Tuple[float, ...]
    node_norms_after: Tuple[float, ...]

    @property
    def worst_before(self) -> float:
        return max(self.node_norms_before, default=0.0)

    @property
    def worst_after(self) -> float:
        return max(self.node_norms_after, default=0.0)

    @property
    def headroom_bits_saved(self) -> float:
        """Integer bits of headroom the scaling saves at the worst node."""
        if self.worst_before <= 0 or self.worst_after <= 0:
            return 0.0
        return math.log2(self.worst_before / self.worst_after)


def _cumulative_sections(cascade: Cascade) -> List[TransferFunction]:
    """Transfer functions from the input to each internal node."""
    nodes = []
    running = TransferFunction([1.0], [1.0])
    for b, a in cascade.sections:
        running = running * TransferFunction(b, a)
        nodes.append(running)
    return nodes


def scale_cascade(
    cascade: Cascade, norm: str = "l2"
) -> Tuple[Cascade, ScalingReport]:
    """Scale a cascade's sections to normalize internal node levels.

    Returns the scaled cascade (same overall transfer function) and a
    report of node norms before/after.  The nodes are the outputs of
    sections 1..k-1; the filter output itself keeps its designed level.
    """
    if norm not in SCALING_NORMS:
        raise FilterDesignError(f"norm must be one of {SCALING_NORMS}")
    sections = [(b.copy(), a.copy()) for b, a in cascade.sections]
    if len(sections) <= 1:
        return Cascade(sections), ScalingReport(norm, (), ())
    before = [
        _node_norm(node, norm)
        for node in _cumulative_sections(cascade)[:-1]
    ]
    scaled: List[Tuple[np.ndarray, np.ndarray]] = []
    previous_factor = 1.0
    for index, (b, a) in enumerate(sections):
        if index < len(sections) - 1:
            target = before[index]
            if target <= 0:
                raise FilterDesignError("degenerate section with zero norm")
            factor = 1.0 / target
        else:
            factor = 1.0  # the output keeps its level
        scaled.append((b * factor / previous_factor, a))
        previous_factor = factor
    result = Cascade(scaled)
    after = [
        _node_norm(node, norm)
        for node in _cumulative_sections(result)[:-1]
    ]
    return result, ScalingReport(
        norm=norm,
        node_norms_before=tuple(before),
        node_norms_after=tuple(after),
    )
