"""Transfer functions, frequency responses, and spec measurements.

The paper measures each IIR candidate's "gain, 3-dB bandwidth, pass
band ripple, and stop band attenuation" by simulation (Sec. 4.5); this
module provides those measurements on top of a small transfer-function
algebra (zpk and polynomial forms, evaluation on the unit circle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import FilterDesignError


@dataclass(frozen=True)
class ZPK:
    """Zeros/poles/gain form of a rational transfer function."""

    zeros: Tuple[complex, ...]
    poles: Tuple[complex, ...]
    gain: float

    def to_tf(self) -> "TransferFunction":
        b = np.atleast_1d(np.poly(np.asarray(self.zeros))) * self.gain
        a = np.atleast_1d(np.poly(np.asarray(self.poles)))
        return TransferFunction(np.real_if_close(b, tol=1e6).real, a.real)


class TransferFunction:
    """A digital filter ``H(z) = B(z^-1) / A(z^-1)``.

    Coefficients are stored highest-order-first numpy arrays with
    ``a[0]`` normalized to 1.
    """

    def __init__(self, b: Sequence[float], a: Sequence[float]) -> None:
        b = np.atleast_1d(np.asarray(b, dtype=float))
        a = np.atleast_1d(np.asarray(a, dtype=float))
        if a.size == 0 or a[0] == 0.0:
            raise FilterDesignError("leading denominator coefficient is zero")
        self.b = b / a[0]
        self.a = a / a[0]

    @property
    def order(self) -> int:
        return max(self.b.size, self.a.size) - 1

    def poles(self) -> np.ndarray:
        if self.a.size <= 1:
            return np.array([], dtype=complex)
        return np.roots(self.a)

    def zeros(self) -> np.ndarray:
        if self.b.size <= 1:
            return np.array([], dtype=complex)
        return np.roots(self.b)

    def to_zpk(self) -> ZPK:
        gain = float(self.b[0]) if self.b.size else 0.0
        return ZPK(
            zeros=tuple(self.zeros()),
            poles=tuple(self.poles()),
            gain=gain,
        )

    def is_stable(self, margin: float = 0.0) -> bool:
        """All poles strictly inside the unit circle (minus ``margin``)."""
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(np.abs(poles) < 1.0 - margin))

    # ------------------------------------------------------------------

    def response(self, omega: np.ndarray) -> np.ndarray:
        """Complex frequency response at radian frequencies ``omega``."""
        omega = np.asarray(omega, dtype=float)
        z_inv = np.exp(-1j * omega)
        num = np.polyval(self.b[::-1], z_inv)
        den = np.polyval(self.a[::-1], z_inv)
        return num / den

    def magnitude(self, omega: np.ndarray) -> np.ndarray:
        return np.abs(self.response(omega))

    def magnitude_db(self, omega: np.ndarray) -> np.ndarray:
        mag = self.magnitude(omega)
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def impulse_response(self, length: int) -> np.ndarray:
        """First ``length`` samples of the impulse response."""
        if length < 1:
            raise FilterDesignError("length must be positive")
        x = np.zeros(length)
        x[0] = 1.0
        return self.filter(x)

    def filter(self, x: np.ndarray, state_hook=None) -> np.ndarray:
        """Direct-form II transposed filtering of a signal.

        ``state_hook(state, i) -> state`` — when given — sees (and may
        corrupt, for fault-injection studies) the delay-line state words
        after every sample update.
        """
        x = np.asarray(x, dtype=float)
        n_state = max(self.b.size, self.a.size) - 1
        b = np.zeros(n_state + 1)
        a = np.zeros(n_state + 1)
        b[: self.b.size] = self.b
        a[: self.a.size] = self.a
        state = np.zeros(n_state)
        y = np.empty_like(x)
        for i, sample in enumerate(x):
            out = b[0] * sample + (state[0] if n_state else 0.0)
            for j in range(n_state - 1):
                state[j] = b[j + 1] * sample + state[j + 1] - a[j + 1] * out
            if n_state:
                state[n_state - 1] = b[n_state] * sample - a[n_state] * out
            if state_hook is not None and n_state:
                state = state_hook(state, i)
            y[i] = out
        return y

    def __mul__(self, other: "TransferFunction") -> "TransferFunction":
        return TransferFunction(
            np.convolve(self.b, other.b), np.convolve(self.a, other.a)
        )


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BandMeasurement:
    """Measured characteristics of a (band-pass or low-pass) filter."""

    passband_ripple: float
    stopband_level: float
    peak_gain: float
    three_db_low: Optional[float]
    three_db_high: Optional[float]

    @property
    def three_db_bandwidth(self) -> Optional[float]:
        if self.three_db_low is None or self.three_db_high is None:
            return None
        return self.three_db_high - self.three_db_low

    @property
    def stopband_attenuation_db(self) -> float:
        return -20.0 * math.log10(max(self.stopband_level, 1e-300))


def measure_bands(
    tf: TransferFunction,
    passbands: Sequence[Tuple[float, float]],
    stopbands: Sequence[Tuple[float, float]],
    grid_points: int = 512,
) -> BandMeasurement:
    """Measure ripple/attenuation/3-dB edges over frequency bands.

    ``passbands``/``stopbands`` are (low, high) radian-frequency pairs.
    Passband ripple is the largest deviation of the magnitude from 1;
    stopband level is the largest magnitude inside any stopband.
    ``grid_points`` controls measurement resolution — the search's
    fidelity knob ("longer run times" = denser grids).
    """
    if grid_points < 16:
        raise FilterDesignError("need at least 16 grid points")
    ripple = 0.0
    peak = 0.0
    for low, high in passbands:
        omega = np.linspace(low, high, grid_points)
        mag = tf.magnitude(omega)
        ripple = max(ripple, float(np.max(np.abs(mag - 1.0))))
        peak = max(peak, float(np.max(mag)))
    level = 0.0
    for low, high in stopbands:
        omega = np.linspace(low, high, grid_points)
        level = max(level, float(np.max(tf.magnitude(omega))))
    low3, high3 = _three_db_edges(tf, passbands, grid_points)
    return BandMeasurement(
        passband_ripple=ripple,
        stopband_level=level,
        peak_gain=peak,
        three_db_low=low3,
        three_db_high=high3,
    )


def _three_db_edges(
    tf: TransferFunction,
    passbands: Sequence[Tuple[float, float]],
    grid_points: int,
) -> Tuple[Optional[float], Optional[float]]:
    """The outermost frequencies where the response crosses -3 dB."""
    if not passbands:
        return None, None
    low = min(band[0] for band in passbands)
    high = max(band[1] for band in passbands)
    center = (low + high) / 2.0
    span = max(high - low, 1e-3)
    omega = np.linspace(
        max(low - 2 * span, 1e-6), min(high + 2 * span, math.pi - 1e-6),
        grid_points * 4,
    )
    mag_db = tf.magnitude_db(omega)
    above = mag_db >= -3.0
    if not np.any(above):
        return None, None
    center_idx = int(np.argmin(np.abs(omega - center)))
    if not above[center_idx]:
        center_idx = int(np.argmax(mag_db))
    lo_idx = center_idx
    while lo_idx > 0 and above[lo_idx - 1]:
        lo_idx -= 1
    hi_idx = center_idx
    while hi_idx < len(omega) - 1 and above[hi_idx + 1]:
        hi_idx += 1
    return float(omega[lo_idx]), float(omega[hi_idx])
