"""Shared utilities: reproducible RNG handling, statistics, fixed point.

These helpers are deliberately small and dependency-free (numpy only) so
that every substrate in :mod:`repro` can rely on them without import
cycles.
"""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import (
    binomial_confidence_interval,
    geometric_mean,
    improvement_percent,
)
from repro.utils.fixed import (
    quantize_real,
    quantize_array,
    to_fixed,
    from_fixed,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "binomial_confidence_interval",
    "geometric_mean",
    "improvement_percent",
    "quantize_real",
    "quantize_array",
    "to_fixed",
    "from_fixed",
]
