"""Small statistics helpers used by the BER simulator and reporting."""

from __future__ import annotations

import math
from typing import Iterable, Tuple


def binomial_confidence_interval(
    errors: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to attach confidence bounds to Monte-Carlo BER estimates.  The
    Wilson interval behaves sensibly for the small error counts that
    occur at high signal-to-noise ratios (where the naive normal
    interval collapses to a zero-width interval at zero errors).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if errors < 0 or errors > trials:
        raise ValueError("errors must lie in [0, trials]")
    p_hat = errors / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if any value is 0).

    BER values span many orders of magnitude across an SNR sweep, so
    averages of ratios are reported geometrically.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("geometric_mean requires non-negative values")
    if any(v == 0 for v in values):
        return 0.0
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    This is the metric behind the paper's "M=4 results in a 64%
    improvement in BER" claim: ``100 * (baseline - improved) /
    baseline``.  Positive means ``improved`` is better (smaller).
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def mean_improvement_percent(
    baseline: Iterable[float], improved: Iterable[float]
) -> float:
    """Average per-point BER improvement across an SNR sweep.

    Points where the baseline itself measured zero errors are skipped:
    no improvement over an exact zero is measurable by simulation.
    """
    pairs = [(b, i) for b, i in zip(baseline, improved) if b > 0]
    if not pairs:
        raise ValueError("no measurable baseline points")
    return sum(improvement_percent(b, i) for b, i in pairs) / len(pairs)
