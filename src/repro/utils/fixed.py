"""Fixed-point quantization helpers.

The IIR substrate quantizes filter coefficients to a given word length
to decide the minimum implementable word length per structure, and the
Viterbi quantizers reduce channel symbols to small integer levels.  Both
use the saturating two's-complement model implemented here.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def to_fixed(value: ArrayLike, word_length: int, frac_bits: int) -> np.ndarray:
    """Quantize to signed fixed point; returns the integer codes.

    ``word_length`` counts all bits including sign; ``frac_bits`` is the
    number of fractional bits.  Values outside the representable range
    saturate (matching hardware behaviour rather than wrapping).
    """
    if word_length < 2:
        raise ValueError("word_length must be at least 2 (sign + 1 bit)")
    if frac_bits < 0 or frac_bits >= word_length:
        raise ValueError("frac_bits must lie in [0, word_length)")
    scale = float(1 << frac_bits)
    lo = -(1 << (word_length - 1))
    hi = (1 << (word_length - 1)) - 1
    codes = np.round(np.asarray(value, dtype=float) * scale)
    return np.clip(codes, lo, hi).astype(np.int64)


def from_fixed(codes: ArrayLike, frac_bits: int) -> np.ndarray:
    """Convert integer fixed-point codes back to real values."""
    if frac_bits < 0:
        raise ValueError("frac_bits must be non-negative")
    return np.asarray(codes, dtype=float) / float(1 << frac_bits)


def quantize_real(value: float, word_length: int, frac_bits: int) -> float:
    """Round-trip a scalar through the fixed-point representation."""
    return float(from_fixed(to_fixed(value, word_length, frac_bits), frac_bits))


def quantize_array(
    values: np.ndarray, word_length: int, frac_bits: int
) -> np.ndarray:
    """Round-trip an array through the fixed-point representation."""
    return from_fixed(to_fixed(values, word_length, frac_bits), frac_bits)


def quantize_mantissa(values: np.ndarray, word_length: int) -> np.ndarray:
    """Quantize each value to a ``word_length``-bit signed mantissa with
    its own power-of-two exponent.

    This models coefficient memories that store (mantissa, shift) pairs
    — the conventional implementation of lattice-ladder taps, whose
    magnitudes span many octaves.  Exact zeros stay zero.
    """
    if word_length < 2:
        raise ValueError("word_length must be at least 2 (sign + 1 bit)")
    values = np.asarray(values, dtype=float)
    out = np.zeros_like(values)
    nonzero = values != 0.0
    if np.any(nonzero):
        magnitudes = np.abs(values[nonzero])
        exponents = np.floor(np.log2(magnitudes)) + 1.0
        scale = 2.0 ** (word_length - 1 - exponents)
        out[nonzero] = np.round(values[nonzero] * scale) / scale
    return out


def needed_integer_bits(values: np.ndarray) -> int:
    """Number of integer (non-fractional, non-sign) bits needed.

    Returns the smallest ``i >= 0`` such that every value fits in
    ``[-2**i, 2**i)``.  Used to split a word length between integer and
    fractional parts when quantizing filter coefficients.
    """
    peak = float(np.max(np.abs(np.asarray(values, dtype=float)), initial=0.0))
    bits = 0
    while peak >= (1 << bits):
        bits += 1
    return bits
