"""Reproducible random-number handling.

All stochastic components in the library (AWGN channel, Monte-Carlo BER
simulation, random search baselines) accept either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the conversion in one
place keeps experiment scripts deterministic and lets tests derive
independent sub-streams from a single master seed.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a nondeterministic generator, an ``int`` a seeded
    one, and an existing generator is passed through unchanged (so that
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(master: int, *labels: object) -> int:
    """Derive a stable child seed from ``master`` and a label tuple.

    The derivation hashes the master seed together with the labels, so
    distinct labels give statistically independent streams while the
    same ``(master, labels)`` pair always maps to the same child seed.
    This is how the BER simulator gives every (design point, SNR point)
    its own reproducible noise stream.
    """
    text = repr((int(master),) + labels).encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(master: int, *labels: object) -> np.random.Generator:
    """Shorthand for ``make_rng(derive_seed(master, *labels))``."""
    return make_rng(derive_seed(master, *labels))


def ensure_seed(seed: Optional[int], default: int) -> int:
    """Return ``seed`` if given, otherwise ``default``."""
    return default if seed is None else int(seed)
