"""Async batched evaluation service (the traffic-serving layer).

The reproduction's entry points were one-shot CLI processes; this
package turns the cost-evaluation engine into a long-running service
with concurrent clients, dynamic micro-batching, shared caches, and
backpressure — the workload shape of design-space exploration at scale
(and of inference serving generally).  See ``docs/serving.md``.

- :mod:`repro.serve.protocol` — newline-delimited JSON wire format and
  spec payload (de)serialization;
- :mod:`repro.serve.batching` — dynamic micro-batcher (linger window,
  bounded batch size, per-key sequencing);
- :mod:`repro.serve.service` — the asyncio service core: sessions,
  admission control, timeouts, search execution, status;
- :mod:`repro.serve.server` — socket front-end plus the background-
  thread :class:`ServeHandle` the facades' ``serve()`` hooks return;
- :mod:`repro.serve.client` — synchronous socket clients.
"""

from repro.serve.batching import MicroBatcher, PendingRequest
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeRequestError,
)
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    spec_from_payload,
    spec_to_payload,
)
from repro.serve.server import ServeHandle, ServeServer, serve_forever
from repro.serve.service import (
    EvaluationService,
    EvaluatorSession,
    EvaluationFailedError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceConfig,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    evaluator_for_payload,
    fingerprint_for_payload,
)

__all__ = [
    "MicroBatcher",
    "PendingRequest",
    "ServeClient",
    "ServeConnectionError",
    "ServeRequestError",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "spec_from_payload",
    "spec_to_payload",
    "ServeHandle",
    "ServeServer",
    "serve_forever",
    "EvaluationService",
    "EvaluatorSession",
    "EvaluationFailedError",
    "RequestTimeoutError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceOverloadedError",
    "evaluator_for_payload",
    "fingerprint_for_payload",
]
