"""Socket front-end of the evaluation service.

Speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over a local TCP socket (default) or a unix
domain socket.  Each connection may pipeline requests: every incoming
message is handled as its own task, so a slow search does not block a
status probe on the same connection, and responses may arrive out of
request order (clients correlate by ``id``).

Two ways to run it:

- :func:`serve_forever` — the CLI entry point; owns the loop, serves
  until a ``shutdown`` request (or cancellation) arrives.
- :class:`ServeHandle` — runs loop + service + server on a background
  thread; the in-process path used by the MetaCore facades' ``serve()``
  hooks, the test suite, and the benchmark harness.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from repro.serve.service import (
    EvaluationService,
    ServiceConfig,
    ServiceError,
)


class ServeServer:
    """Accept connections and dispatch protocol messages to a service."""

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        allow_shutdown: bool = True,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.allow_shutdown = allow_shutdown
        self.shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._connections: Set["asyncio.Task[None]"] = set()
        self._writers: Set[asyncio.StreamWriter] = set()

    @property
    def address(self) -> str:
        """Human-readable bound address (for log lines and clients)."""
        if self.unix_path:
            return self.unix_path
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        if self.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            # Port 0 means OS-assigned: expose the real one.
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        # Close live connection transports so their handlers exit via
        # EOF.  Cancelling the handler tasks instead would trip
        # asyncio's StreamReaderProtocol done-callback (it calls
        # task.exception() on the cancelled task) on 3.9-3.11.
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        pending = list(self._tasks) + list(self._connections)
        if pending:
            _, stragglers = await asyncio.wait(pending, timeout=5.0)
            for task in stragglers:
                task.cancel()
            for task in stragglers:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._tasks.clear()
        self._connections.clear()
        self._writers.clear()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        connection_tasks: Set["asyncio.Task[None]"] = set()
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
            me.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._handle_message(line, writer, write_lock)
                )
                connection_tasks.add(task)
                self._tasks.add(task)
                task.add_done_callback(connection_tasks.discard)
                task.add_done_callback(self._tasks.discard)
        finally:
            # Abandon this connection's in-flight work: nobody is left
            # to read the answers.
            for task in list(connection_tasks):
                task.cancel()
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass  # RuntimeError: loop already closed on shutdown

    async def _handle_message(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            message = decode_message(line)
            request_id = message.get("id")
            response = await self._dispatch(message)
        except ProtocolError as exc:
            response = error_response(request_id, "protocol", str(exc))
        except ConfigurationError as exc:
            response = error_response(request_id, "bad_request", str(exc))
        except ServiceError as exc:
            response = error_response(request_id, exc.code, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # keep the server alive on any bug
            response = error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        async with write_lock:
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the work is already accounted

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        request_id = message.get("id")
        if op == "ping":
            return ok_response(
                request_id, {"pong": True, "protocol": PROTOCOL_VERSION}
            )
        if op == "status":
            return ok_response(request_id, self.service.status())
        if op == "eval":
            session = self.service.resolve_session(
                message.get("spec"), message.get("session")
            )
            timeout = message.get("timeout_s", EvaluationService._UNSET)
            metrics = await self.service.submit_point(
                session,
                dict(message.get("point") or {}),
                int(message.get("fidelity", 0)),
                timeout_s=timeout,
            )
            return ok_response(
                request_id,
                {"metrics": dict(metrics), "session": session.name},
            )
        if op == "search":
            session = self.service.resolve_session(
                message.get("spec"), message.get("session")
            )
            result = await self.service.submit_search(
                session,
                config_fields=message.get("config"),
                fixed=message.get("fixed"),
            )
            return ok_response(request_id, result)
        if op == "recommend":
            session = self.service.resolve_session(
                message.get("spec"), message.get("session")
            )
            result = await self.service.submit_recommend(
                session,
                constraints=message.get("constraints"),
                config_fields=message.get("config"),
                fixed=message.get("fixed"),
            )
            return ok_response(request_id, result)
        if op == "drain":
            if not self.allow_shutdown:
                return error_response(
                    request_id, "forbidden", "remote drain is disabled"
                )
            return ok_response(request_id, self.service.drain())
        if op == "shutdown":
            if not self.allow_shutdown:
                return error_response(
                    request_id, "forbidden", "remote shutdown is disabled"
                )
            self.shutdown_requested.set()
            return ok_response(request_id, {"stopping": True})
        raise ConfigurationError(f"unknown operation {op!r}")


async def serve_forever(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    ready_callback=None,
    service: Optional[EvaluationService] = None,
) -> None:
    """Run service + server until a ``shutdown`` request arrives."""
    service = service or EvaluationService(config)
    server = ServeServer(service, host=host, port=port, unix_path=unix_path)
    await service.start()
    try:
        await server.start()
        if ready_callback is not None:
            ready_callback(server)
        await server.shutdown_requested.wait()
    finally:
        await server.stop()
        await service.stop()


class ServeHandle:
    """Service + socket server on a background thread.

    The blocking-world adapter: ``start()`` returns once the socket is
    bound (with the OS-assigned port resolved), ``stop()`` joins the
    thread after an orderly shutdown.  Usable as a context manager::

        with ViterbiMetaCore(spec).serve() as handle:
            with handle.client() as client:
                client.eval(...)
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        self.service = EvaluationService(config)
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServeServer] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- life cycle ------------------------------------------------------

    def start(self) -> "ServeHandle":
        if self._thread is not None:
            raise RuntimeError("handle already started")
        self._thread = threading.Thread(
            target=self._run, name="metacores-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        def on_ready(server: ServeServer) -> None:
            self._server = server
            self.port = server.port
            self._ready.set()

        try:
            loop.run_until_complete(
                serve_forever(
                    host=self.host,
                    port=self.port,
                    unix_path=self.unix_path,
                    ready_callback=on_ready,
                    service=self.service,
                )
            )
        except BaseException as exc:  # surface bind errors to start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
        finally:
            loop.close()

    def stop(self) -> None:
        """Request shutdown and join the server thread (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(server.shutdown_requested.set)
        thread.join(timeout=30.0)

    def __enter__(self) -> "ServeHandle":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- conveniences ----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def client(self, timeout_s: float = 120.0):
        """A connected synchronous client for this server."""
        from repro.serve.client import ServeClient

        return ServeClient(
            host=self.host,
            port=self.port,
            unix_path=self.unix_path,
            timeout_s=timeout_s,
        )

    def submit_async(self, coroutine):
        """Schedule a service coroutine; returns a concurrent future."""
        assert self._loop is not None, "handle not started"
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def submit(self, coroutine) -> Any:
        """Run a service coroutine from the caller's thread (blocking)."""
        return self.submit_async(coroutine).result()
