"""Wire protocol of the evaluation service.

Newline-delimited JSON: every message is one JSON object on one line,
UTF-8 encoded.  Requests carry a client-chosen ``id`` echoed back in
the response, an ``op``, and op-specific fields; responses are either
``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.

Operations
----------

``ping``
    Liveness probe; answers ``{"pong": true, "protocol": 1}``.
``status``
    Service counters: queue depth, sessions, batch/latency statistics.
``eval``
    Price one design point: ``metacore``/``spec`` (or a pre-registered
    ``session`` name), ``point``, ``fidelity``.
``search``
    Run a full multiresolution search for a spec: ``metacore``/``spec``
    plus optional ``config`` (SearchConfig fields) and ``fixed``
    (pinned design-space parameters).
``recommend``
    Answer a constraint query from the server's design atlas:
    ``metacore``/``spec`` (or ``session``) plus optional
    ``constraints`` (metric -> upper bound), ``config``, ``fixed``.
    A library hit answers with zero evaluations; a miss falls back to
    a warm-started search whose log grows the atlas.
``drain``
    Stop admitting new work while in-flight work finishes; a cluster
    router treats a draining replica as a failover target only.
``shutdown``
    Ask the server to stop accepting work and exit cleanly.

Specifications travel as plain-dict payloads (:func:`spec_to_payload` /
:func:`spec_from_payload`) so the same request can be issued from any
language; metric floats round-trip exactly (JSON ``repr`` shortest
round-trip), which the bit-identical conformance suite relies on.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ConfigurationError

#: Bumped on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded message; guards the server against a
#: runaway (or hostile) peer streaming an unbounded line.
MAX_MESSAGE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or oversized wire message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a UTF-8 JSON line (trailing newline included)."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True)
    encoded = data.encode("utf-8") + b"\n"
    if len(encoded) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(encoded)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return encoded


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds the size limit")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any, code: str, message: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# ---------------------------------------------------------------------------
# Specification payloads
# ---------------------------------------------------------------------------


def spec_to_payload(spec: object) -> Dict[str, Any]:
    """Serialize a ViterbiSpec/IIRSpec into a wire-safe plain dict."""
    from repro.iir.design import BandpassSpec, LowpassSpec
    from repro.iir.metacore import IIRSpec
    from repro.viterbi.metacore import ViterbiSpec

    if isinstance(spec, ViterbiSpec):
        payload = {
            "kind": "viterbi",
            "throughput_bps": spec.throughput_bps,
            "ber_curve": [list(pair) for pair in spec.ber_curve.points],
            "feature_um": spec.feature_um,
            "seed": spec.seed,
        }
        # Only power-enabled specs carry the key: the power-off wire
        # format stays byte-identical to pre-power clients/servers.
        if spec.power is not None:
            payload["power"] = spec.power.to_payload()
        return payload
    if isinstance(spec, IIRSpec):
        filter_spec = spec.filter_spec
        if isinstance(filter_spec, LowpassSpec):
            filter_payload = {
                "type": "lowpass",
                "passband_edge": filter_spec.passband_edge,
                "stopband_edge": filter_spec.stopband_edge,
                "passband_ripple": filter_spec.passband_ripple,
                "stopband_ripple": filter_spec.stopband_ripple,
            }
        elif isinstance(filter_spec, BandpassSpec):
            filter_payload = {
                "type": "bandpass",
                "passband_low": filter_spec.passband_low,
                "passband_high": filter_spec.passband_high,
                "stopband_low": filter_spec.stopband_low,
                "stopband_high": filter_spec.stopband_high,
                "passband_ripple": filter_spec.passband_ripple,
                "stopband_ripple": filter_spec.stopband_ripple,
            }
        else:
            raise ConfigurationError(
                f"unsupported filter spec {type(filter_spec).__name__}"
            )
        payload = {
            "kind": "iir",
            "sample_period_us": spec.sample_period_us,
            "feature_um": spec.feature_um,
            "filter": filter_payload,
        }
        if spec.power is not None:
            payload["power"] = spec.power.to_payload()
        return payload
    raise ConfigurationError(
        f"cannot serialize specification of type {type(spec).__name__}"
    )


def spec_from_payload(payload: Dict[str, Any]) -> object:
    """Reconstruct a ViterbiSpec/IIRSpec from a wire payload."""
    if not isinstance(payload, dict):
        raise ConfigurationError("spec payload must be an object")
    kind = payload.get("kind")
    if kind == "viterbi":
        from repro.core.objectives import BERThresholdCurve
        from repro.power import PowerConfig
        from repro.viterbi.ber import DEFAULT_SEED
        from repro.viterbi.metacore import ViterbiSpec

        curve_points = payload.get("ber_curve")
        if not curve_points:
            raise ConfigurationError("viterbi spec needs ber_curve points")
        curve = BERThresholdCurve(
            points=tuple(
                (float(es), float(thr)) for es, thr in curve_points
            )
        )
        return ViterbiSpec(
            throughput_bps=float(payload["throughput_bps"]),
            ber_curve=curve,
            feature_um=float(payload.get("feature_um", 0.25)),
            seed=int(payload.get("seed", DEFAULT_SEED)),
            power=PowerConfig.from_payload(payload.get("power")),
        )
    if kind == "iir":
        from repro.iir.design import BandpassSpec, LowpassSpec
        from repro.iir.metacore import IIRSpec
        from repro.power import PowerConfig

        filter_payload = payload.get("filter")
        if not isinstance(filter_payload, dict):
            raise ConfigurationError("iir spec needs a filter object")
        filter_type = filter_payload.get("type")
        if filter_type == "lowpass":
            filter_spec = LowpassSpec(
                float(filter_payload["passband_edge"]),
                float(filter_payload["stopband_edge"]),
                float(filter_payload["passband_ripple"]),
                float(filter_payload["stopband_ripple"]),
            )
        elif filter_type == "bandpass":
            filter_spec = BandpassSpec(
                float(filter_payload["passband_low"]),
                float(filter_payload["passband_high"]),
                float(filter_payload["stopband_low"]),
                float(filter_payload["stopband_high"]),
                float(filter_payload["passband_ripple"]),
                float(filter_payload["stopband_ripple"]),
            )
        else:
            raise ConfigurationError(
                f"unknown filter spec type {filter_type!r}"
            )
        return IIRSpec(
            filter_spec=filter_spec,
            sample_period_us=float(payload["sample_period_us"]),
            feature_um=float(payload.get("feature_um", 1.2)),
            power=PowerConfig.from_payload(payload.get("power")),
        )
    raise ConfigurationError(f"unknown spec kind {kind!r}")
