"""Synchronous clients of the evaluation service.

:class:`ServeClient` speaks the newline-delimited JSON protocol over a
TCP or unix socket; one instance serializes its own requests (a lock
around each call), so concurrent load is generated with one client per
thread — which is also how real traffic arrives.

Errors come back typed: a failed request raises
:class:`ServeRequestError` carrying the server's error ``code``
(``overloaded``, ``timeout``, ``bad_request``, ...), so callers can
apply backpressure-aware retry policies.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
)


class ServeRequestError(RuntimeError):
    """The server answered a request with an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServeConnectionError(ConnectionError):
    """The transport failed (server gone, connection dropped)."""


class ServeClient:
    """Blocking client for one server connection (thread-safe, serial)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout_s: float = 120.0,
    ) -> None:
        if unix_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout_s)
            sock.connect(unix_path)
        else:
            if port is None:
                raise ValueError("give a port (or a unix_path)")
            sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- plumbing --------------------------------------------------------

    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        request: Dict[str, Any] = {"id": next(self._ids), "op": op}
        request.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        with self._lock:
            try:
                self._file.write(encode_message(request))
                self._file.flush()
                line = self._file.readline()
            except (OSError, ValueError) as exc:
                raise ServeConnectionError(
                    f"connection to server lost: {exc}"
                ) from exc
        if not line:
            raise ServeConnectionError("server closed the connection")
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            raise ServeConnectionError(str(exc)) from exc
        if response.get("ok"):
            return response.get("result") or {}
        error = response.get("error") or {}
        raise ServeRequestError(
            str(error.get("code", "error")),
            str(error.get("message", "request failed")),
        )

    # -- operations ------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._call("ping")

    def status(self) -> Dict[str, Any]:
        return self._call("status")

    def eval(
        self,
        point: Dict[str, Any],
        fidelity: int = 0,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, float]:
        """Price one design point; returns its metrics record."""
        result = self._call(
            "eval",
            spec=spec,
            session=session,
            point=dict(point),
            fidelity=int(fidelity),
            timeout_s=timeout_s,
        )
        return dict(result.get("metrics") or {})

    def search(
        self,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run a full multiresolution search for a specification."""
        return self._call(
            "search", spec=spec, session=session, config=config, fixed=fixed
        )

    def recommend(
        self,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        constraints: Optional[Dict[str, Any]] = None,
        config: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Query the server's design atlas for a satisfying design.

        A library hit answers with ``n_evaluations == 0``; a miss runs
        a warm-started search server-side and answers from its result.
        """
        return self._call(
            "recommend",
            spec=spec,
            session=session,
            constraints=constraints,
            config=config,
            fixed=fixed,
        )

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to exit cleanly."""
        return self._call("shutdown")

    # -- life cycle ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
