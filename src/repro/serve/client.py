"""Synchronous clients of the evaluation service.

:class:`ServeClient` speaks the newline-delimited JSON protocol over a
TCP or unix socket; one instance serializes its own requests (a lock
around each call), so concurrent load is generated with one client per
thread — which is also how real traffic arrives.

Errors come back typed: a failed request raises
:class:`ServeRequestError` carrying the server's error ``code``
(``overloaded``, ``timeout``, ``bad_request``, ...), so callers can
apply backpressure-aware retry policies.

The client applies one such policy itself: on **connection loss** it
reconnects and resends, and on an **``overloaded`` admission
rejection** it backs off and retries, both with capped exponential
backoff plus jitter (``max_retries`` attempts beyond the first; set it
to 0 to surface every failure immediately, the pre-reconnect
behavior).  Only idempotent operations are resent after a connection
loss — every protocol op except ``shutdown`` is deterministic, so a
duplicate delivery cannot change any result.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
)


class ServeRequestError(RuntimeError):
    """The server answered a request with an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServeConnectionError(ConnectionError):
    """The transport failed (server gone, connection dropped)."""


class ServeClient:
    """Blocking client for one server connection (thread-safe, serial).

    ``max_retries`` bounds the reconnect/backoff policy described in
    the module docstring; ``backoff_s``/``backoff_max_s`` shape the
    capped exponential delay and ``jitter`` adds a uniform random
    fraction on top so a thundering herd of rejected clients does not
    re-arrive in lockstep.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout_s: float = 120.0,
        max_retries: int = 3,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter: float = 0.25,
    ) -> None:
        if not unix_path and port is None:
            raise ValueError("give a port (or a unix_path)")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout_s = timeout_s
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.backoff_max_s = max(self.backoff_s, float(backoff_max_s))
        self.jitter = max(0.0, float(jitter))
        #: Transport reconnects and backed-off request retries performed
        #: over this client's lifetime (observability for tests/tools).
        self.n_reconnects = 0
        self.n_retries = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._rng = random.Random()
        self._connect()

    # -- plumbing --------------------------------------------------------

    def _connect(self) -> None:
        """(Re)open the transport; raises ServeConnectionError."""
        self._teardown()
        try:
            if self.unix_path:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(self.unix_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
        except OSError as exc:
            raise ServeConnectionError(
                f"cannot connect to server: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _delay(self, attempt: int) -> float:
        """Capped exponential backoff with uniform jitter on top."""
        base = min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
        return base * (1.0 + self.jitter * self._rng.random())

    def _exchange(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip on the current transport."""
        if self._file is None:
            self._connect()
        try:
            self._file.write(encode_message(request))
            self._file.flush()
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            raise ServeConnectionError(
                f"connection to server lost: {exc}"
            ) from exc
        if not line:
            raise ServeConnectionError("server closed the connection")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServeConnectionError(str(exc)) from exc

    def _call(
        self, op: str, _retryable: bool = True, **fields: Any
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"id": next(self._ids), "op": op}
        request.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        retries = self.max_retries if _retryable else 0
        with self._lock:
            attempt = 0
            while True:
                try:
                    response = self._exchange(request)
                except ServeConnectionError:
                    self._teardown()
                    if attempt >= retries:
                        raise
                    time.sleep(self._delay(attempt))
                    try:
                        self._connect()
                    except ServeConnectionError:
                        attempt += 1
                        self.n_retries += 1
                        continue
                    self.n_reconnects += 1
                    attempt += 1
                    self.n_retries += 1
                    continue
                if response.get("ok"):
                    return response.get("result") or {}
                error = response.get("error") or {}
                code = str(error.get("code", "error"))
                if code == "overloaded" and attempt < retries:
                    time.sleep(self._delay(attempt))
                    attempt += 1
                    self.n_retries += 1
                    continue
                raise ServeRequestError(
                    code, str(error.get("message", "request failed"))
                )

    # -- operations ------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._call("ping")

    def status(self) -> Dict[str, Any]:
        return self._call("status")

    def eval(
        self,
        point: Dict[str, Any],
        fidelity: int = 0,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, float]:
        """Price one design point; returns its metrics record."""
        result = self._call(
            "eval",
            spec=spec,
            session=session,
            point=dict(point),
            fidelity=int(fidelity),
            timeout_s=timeout_s,
        )
        return dict(result.get("metrics") or {})

    def search(
        self,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run a full multiresolution search for a specification."""
        return self._call(
            "search", spec=spec, session=session, config=config, fixed=fixed
        )

    def recommend(
        self,
        spec: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
        constraints: Optional[Dict[str, Any]] = None,
        config: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Query the server's design atlas for a satisfying design.

        A library hit answers with ``n_evaluations == 0``; a miss runs
        a warm-started search server-side and answers from its result.
        """
        return self._call(
            "recommend",
            spec=spec,
            session=session,
            constraints=constraints,
            config=config,
            fixed=fixed,
        )

    def drain(self) -> Dict[str, Any]:
        """Ask the server to stop admitting new work (keep running)."""
        return self._call("drain")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to exit cleanly.

        Not resent after a connection loss: a duplicate delivery is
        harmless but an ambiguous half-delivered one should surface.
        """
        return self._call("shutdown", _retryable=False)

    # -- life cycle ------------------------------------------------------

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
