"""The asyncio evaluation service.

The MetaCore contract is a query interface — (parameter point,
fidelity) -> (BER, area, throughput) — and exploration workloads issue
many such queries concurrently against a shared simulator.  This module
serves that shape as a long-running process:

- concurrent ``eval``/``search`` requests from any number of clients;
- compatible point requests coalesce into dynamic micro-batches
  (:mod:`repro.serve.batching`) fed to the batch-first evaluation layer,
  where a :class:`~repro.core.parallel.ParallelEvaluator` fans them out
  over worker processes;
- one lock-guarded :class:`~repro.core.evaluation.CachingEvaluator` per
  specification, all sharing one
  :class:`~repro.core.evalcache.PersistentEvalCache`, so every client
  benefits from every other client's paid-for evaluations;
- backpressure: a bounded admission window (``max_pending``), per-
  request timeouts, and cancellation-safe result delivery;
- optional retry/quarantine via the resilience shim, so a poisoned
  point degrades one answer instead of the whole service.

**Bit-identical guarantee.**  Evaluators derive every stochastic stream
from (seed, point, fidelity), never from shared mutable state, so the
metrics a request receives are byte-identical to a serial one-shot
evaluation of the same (point, fidelity) — independent of batching,
arrival order, or which worker priced it.  As with the in-process and
persistent caches, a request may be answered by an *already computed
higher-fidelity* record for the same point (at least as accurate); on a
cold service every request is answered at exactly its requested
fidelity.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.evalcache import PersistentEvalCache, evaluator_fingerprint
from repro.core.evaluation import CachingEvaluator, Evaluator, Metrics
from repro.core.parallel import ParallelEvaluator
from repro.core.parameters import Point
from repro.core.search import MetacoreSearch, SearchConfig
from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.trace import get_tracer
from repro.serve.batching import MicroBatcher, PendingRequest
from repro.serve.protocol import spec_from_payload

#: Batch-size histogram edges (requests per micro-batch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


def evaluator_for_payload(
    payload: Dict[str, Any],
) -> Tuple[str, object, Evaluator]:
    """(kind, spec, evaluator) for a wire spec payload.

    The single construction point shared by the service's session
    factory and the cluster router's routing-key computation, so both
    derive the *same* evaluator fingerprint from the same payload.
    """
    spec = spec_from_payload(payload)
    kind = str(payload.get("kind"))
    if kind == "viterbi":
        from repro.viterbi.metacore import ViterbiMetacoreEvaluator

        evaluator: Evaluator = ViterbiMetacoreEvaluator(spec)
    else:
        from repro.iir.metacore import IIRMetacoreEvaluator

        evaluator = IIRMetacoreEvaluator(spec)
    return kind, spec, evaluator


def fingerprint_for_payload(payload: Dict[str, Any]) -> str:
    """The evaluator fingerprint a spec payload resolves to."""
    _kind, _spec, evaluator = evaluator_for_payload(payload)
    return evaluator_fingerprint(evaluator)


class ServiceError(RuntimeError):
    """Base class of request-level service failures."""

    code = "error"


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request (queue full)."""

    code = "overloaded"


class RequestTimeoutError(ServiceError):
    """The request exceeded its per-request wall-clock budget."""

    code = "timeout"


class ServiceClosedError(ServiceError):
    """The service is shutting down and accepts no new work."""

    code = "closed"


class ServiceDrainingError(ServiceError):
    """The service is draining: in-flight work finishes, new work is
    rejected (a cluster router fails the request over to a peer)."""

    code = "draining"


class EvaluationFailedError(ServiceError):
    """The evaluator raised while pricing the request's batch."""

    code = "evaluation_failed"


@dataclass
class ServiceConfig:
    """Knobs of the evaluation service."""

    #: Largest micro-batch handed to ``evaluate_many`` in one call.
    max_batch: int = 8
    #: How long the first request of a batch waits for company (s).
    linger_s: float = 0.002
    #: Admission window: concurrent in-flight point requests beyond
    #: this are rejected immediately with ``overloaded``.
    max_pending: int = 256
    #: Default per-request wall-clock budget (None = unbounded).
    request_timeout_s: Optional[float] = 60.0
    #: Worker processes per session's evaluator (1 = in-process).
    workers: int = 1
    #: Shared persistent cross-run cache (None = memory only).
    cache_path: Optional[str] = None
    #: Shared design atlas: served searches warm-start from it and
    #: ingest into it, and the ``recommend`` op answers from it.
    atlas_path: Optional[str] = None
    #: Wrap session evaluators in the retry/quarantine shim.
    resilient: bool = False
    #: Retries per failing point when ``resilient`` (see the shim).
    max_retries: int = 2
    #: Threads running ``evaluate_many`` batches.
    eval_threads: int = 2
    #: Threads running whole searches.
    search_threads: int = 2
    #: Stable replica identity reported by ``status`` (cluster routers
    #: show it in health/routing tables); None = anonymous.
    node_id: Optional[str] = None


class EvaluatorSession:
    """One specification's shared evaluation stack inside the service.

    Wraps the spec's cost-evaluation engine with (inside-out): an
    optional :class:`ParallelEvaluator` (process fan-out), an optional
    :class:`~repro.resilience.shim.ResilientEvaluator`, and the
    lock-guarded :class:`CachingEvaluator` every client request goes
    through — all sharing the service's persistent store.
    """

    def __init__(
        self,
        name: str,
        inner: Evaluator,
        config: ServiceConfig,
        store: Optional[PersistentEvalCache],
        kind: str = "custom",
        spec: Optional[object] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.spec = spec
        self.inner = inner
        self.fingerprint = evaluator_fingerprint(inner)
        chain: Evaluator = inner
        self.parallel: Optional[ParallelEvaluator] = None
        if config.workers and config.workers > 1:
            parallel = ParallelEvaluator(inner, workers=config.workers)
            if parallel.parallel_enabled:
                self.parallel = parallel
                chain = parallel
        self.shim = None
        if config.resilient:
            from repro.resilience.shim import ResilientEvaluator

            self.shim = ResilientEvaluator(
                chain, max_retries=config.max_retries
            )
            chain = self.shim
        self.evaluator = CachingEvaluator(chain, store=store)

    def warm_up(self) -> None:
        """Start the worker pool before the first request arrives."""
        if self.parallel is not None:
            self.parallel.ensure_started()

    def close(self) -> None:
        if self.parallel is not None:
            self.parallel.close()

    def stats(self) -> Dict[str, Any]:
        """Plain-dict cache/time accounting for the status endpoint."""
        evaluator = self.evaluator
        requests = evaluator.cache_hits + evaluator.cache_misses
        info: Dict[str, Any] = {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "workers": self.parallel.workers if self.parallel else 1,
            "cache_hits": evaluator.cache_hits,
            "cache_misses": evaluator.cache_misses,
            "cache_upgrades": evaluator.cache_upgrades,
            "persistent_hits": evaluator.persistent_hits,
            "hit_ratio": (
                evaluator.cache_hits / requests if requests else 0.0
            ),
            "computed": evaluator.log.n_evaluations,
            "cpu_s": evaluator.log.cpu_time_s,
            "wall_s": evaluator.log.wall_time_s,
        }
        if self.shim is not None:
            info["resilience"] = self.shim.snapshot()
        return info


class _ServeEvaluatorProxy:
    """Evaluator facade routing a search's batches through the service.

    A search runs in a worker thread; its grid rounds re-enter the
    service's micro-batcher, so search traffic and client ``eval``
    traffic for the same specification coalesce into shared batches and
    shared cache state.  Search-internal requests bypass admission
    control (the search itself was admitted) and carry no per-point
    timeout.
    """

    def __init__(
        self,
        service: "EvaluationService",
        session: EvaluatorSession,
    ) -> None:
        self._service = service
        self._session = session
        self.max_fidelity = session.evaluator.max_fidelity

    def fingerprint(self) -> str:
        return self._session.fingerprint

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self.evaluate_many([point], fidelity)[0]

    def evaluate_many(
        self, points: Sequence[Point], fidelity: int
    ) -> List[Metrics]:
        loop = self._service.loop
        assert loop is not None, "service not started"
        futures = [
            asyncio.run_coroutine_threadsafe(
                self._service.submit_point(
                    self._session,
                    dict(point),
                    fidelity,
                    timeout_s=None,
                    admit=False,
                ),
                loop,
            )
            for point in points
        ]
        return [future.result() for future in futures]


class EvaluationService:
    """Shared-state evaluation service (run inside an asyncio loop).

    Life cycle: construct, :meth:`start` inside a running loop, submit
    work via :meth:`submit_point` / :meth:`submit_search` /
    :meth:`status`, then :meth:`stop`.  The socket front-end lives in
    :mod:`repro.serve.server`; in-process callers can drive the service
    directly.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store: Optional[PersistentEvalCache] = (
            PersistentEvalCache(self.config.cache_path)
            if self.config.cache_path
            else None
        )
        self.atlas = None
        if self.config.atlas_path:
            from repro.atlas.store import DesignAtlas

            self.atlas = DesignAtlas(self.config.atlas_path)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._sessions: Dict[str, EvaluatorSession] = {}
        self._sessions_lock = threading.Lock()
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch=self.config.max_batch,
            linger_s=self.config.linger_s,
        )
        self._eval_executor: Optional[ThreadPoolExecutor] = None
        self._search_executor: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._draining = False
        self._started_s = 0.0
        # Request accounting (mutated on the loop thread only).
        self.n_pending = 0
        self.n_requests = 0
        self.n_rejected = 0
        self.n_timeouts = 0
        self.n_batches = 0
        self.n_searches = 0
        self.n_recommends = 0
        #: Per-service instruments backing the ``status`` endpoint; the
        #: same updates also land in the process-wide registry so the
        #: telemetry exporter sees them.
        self.metrics = MetricsRegistry()

    def _registries(self) -> Tuple[MetricsRegistry, MetricsRegistry]:
        return (self.metrics, get_registry())

    # -- life cycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the worker executors."""
        self.loop = asyncio.get_running_loop()
        self._eval_executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.eval_threads),
            thread_name_prefix="serve-eval",
        )
        self._search_executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.search_threads),
            thread_name_prefix="serve-search",
        )
        self._running = True
        self._started_s = time.monotonic()
        for session in self.sessions():
            session.warm_up()

    def drain(self) -> Dict[str, Any]:
        """Stop admitting new work; in-flight work keeps running.

        The replica-side half of a cluster's graceful hand-off: after
        draining, ``eval``/``search``/``recommend`` submissions answer
        ``draining`` (which a router treats as a failover signal) while
        running batches and searches complete normally.  Idempotent;
        ``status`` reports the flag.
        """
        self._draining = True
        return {"draining": True, "pending": self.n_pending}

    def _check_accepting(self) -> None:
        """Raise unless the service admits new client-facing work."""
        if not self._running:
            raise ServiceClosedError("service is not running")
        if self._draining:
            raise ServiceDrainingError(
                "service is draining and accepts no new work"
            )

    async def stop(self) -> None:
        """Fail queued work, finish in-flight work, release resources.

        New submissions raise :class:`ServiceClosedError` immediately —
        this is what unblocks an in-flight search, whose next grid
        batch fails fast — while already-running batches complete.  The
        executor joins run on the loop's default executor so the loop
        keeps serving those fail-fast submissions meanwhile.
        """
        self._running = False
        await self._batcher.close()
        loop = self.loop
        for executor in (self._eval_executor, self._search_executor):
            if executor is not None and loop is not None:
                await loop.run_in_executor(
                    None, lambda ex=executor: ex.shutdown(wait=True)
                )
        self._eval_executor = None
        self._search_executor = None
        for session in self.sessions():
            session.close()
        if self.store is not None:
            self.store.close()
        if self.atlas is not None:
            self.atlas.close()

    # -- sessions --------------------------------------------------------

    def sessions(self) -> List[EvaluatorSession]:
        with self._sessions_lock:
            return list(self._sessions.values())

    def register_evaluator(
        self,
        name: str,
        evaluator: Evaluator,
        kind: str = "custom",
        spec: Optional[object] = None,
    ) -> EvaluatorSession:
        """Attach a caller-supplied evaluator under an explicit name.

        Requests can then address it with ``"session": name`` instead
        of a spec payload — the in-process path for user-defined
        MetaCores (and the test suite's instrumented evaluators).
        """
        with self._sessions_lock:
            if name in self._sessions:
                raise ConfigurationError(
                    f"session {name!r} already registered"
                )
            session = EvaluatorSession(
                name, evaluator, self.config, self.store, kind, spec
            )
            self._sessions[name] = session
        if self._running:
            session.warm_up()
        return session

    def session_for_spec(self, payload: Dict[str, Any]) -> EvaluatorSession:
        """The session serving a spec payload, created on first use.

        Sessions are keyed by evaluator fingerprint, so two clients
        sending byte-different but equivalent payloads of the same
        specification share one evaluator, one cache, one pool.
        """
        kind, spec, evaluator = evaluator_for_payload(payload)
        name = evaluator_fingerprint(evaluator)
        with self._sessions_lock:
            existing = self._sessions.get(name)
            if existing is not None:
                return existing
            session = EvaluatorSession(
                name, evaluator, self.config, self.store, kind, spec
            )
            self._sessions[name] = session
        if self._running:
            session.warm_up()
        return session

    def resolve_session(
        self,
        spec_payload: Optional[Dict[str, Any]] = None,
        session_name: Optional[str] = None,
    ) -> EvaluatorSession:
        """Find the session a request addresses (payload or name)."""
        if session_name is not None:
            with self._sessions_lock:
                session = self._sessions.get(session_name)
            if session is None:
                raise ConfigurationError(
                    f"no session named {session_name!r}"
                )
            return session
        if spec_payload is None:
            raise ConfigurationError("request needs a spec or session")
        return self.session_for_spec(spec_payload)

    # -- point evaluation ------------------------------------------------

    _UNSET = object()

    async def submit_point(
        self,
        session: EvaluatorSession,
        point: Point,
        fidelity: int,
        timeout_s: Any = _UNSET,
        admit: bool = True,
    ) -> Metrics:
        """Admit, micro-batch, evaluate, and answer one point request.

        Raises :class:`ServiceOverloadedError` when the admission
        window is full, :class:`RequestTimeoutError` when the budget
        (``timeout_s``, defaulting to the service config) expires —
        the underlying evaluation is then abandoned, not interrupted —
        and :class:`EvaluationFailedError` when the evaluator raised.
        """
        if admit:
            # Search-internal resubmissions (admit=False) still run
            # while draining: drain finishes in-flight searches.
            self._check_accepting()
        elif not self._running:
            raise ServiceClosedError("service is not running")
        if admit and self.n_pending >= self.config.max_pending:
            self.n_rejected += 1
            for registry in self._registries():
                registry.counter("serve.rejected").inc()
            raise ServiceOverloadedError(
                f"{self.n_pending} requests pending "
                f"(admission window {self.config.max_pending})"
            )
        if not 0 <= int(fidelity) <= session.evaluator.max_fidelity:
            raise ConfigurationError(
                f"fidelity {fidelity} out of range "
                f"[0, {session.evaluator.max_fidelity}]"
            )
        assert self.loop is not None
        future: "asyncio.Future[Metrics]" = self.loop.create_future()
        request = PendingRequest(
            point=dict(point),
            fidelity=int(fidelity),
            future=future,
            context=session,
        )
        self.n_pending += 1
        self.n_requests += 1
        for registry in self._registries():
            registry.counter("serve.requests").inc()
            registry.gauge("serve.queue_depth").set(self.n_pending)
        self._batcher.submit((session.name, int(fidelity)), request)
        timeout = (
            self.config.request_timeout_s
            if timeout_s is self._UNSET
            else timeout_s
        )
        try:
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            for registry in self._registries():
                registry.counter("serve.timeouts").inc()
            raise RequestTimeoutError(
                f"request exceeded its {timeout:.3g}s budget"
            ) from None
        finally:
            self.n_pending -= 1
            for registry in self._registries():
                registry.gauge("serve.queue_depth").set(self.n_pending)

    async def _run_batch(
        self, key: Any, requests: List[PendingRequest]
    ) -> None:
        """Run one closed micro-batch on the evaluation executor."""
        session: EvaluatorSession = requests[0].context
        fidelity = requests[0].fidelity
        points = [request.point for request in requests]
        self.n_batches += 1
        for registry in self._registries():
            registry.histogram(
                "serve.batch_size", BATCH_SIZE_BUCKETS
            ).observe(len(points))
            registry.counter("serve.batches").inc()
        assert self.loop is not None and self._eval_executor is not None
        with get_tracer().span(
            "serve.batch",
            session=session.kind,
            points=len(points),
            fidelity=fidelity,
        ):
            try:
                metrics_list = await self.loop.run_in_executor(
                    self._eval_executor,
                    session.evaluator.evaluate_many,
                    points,
                    fidelity,
                )
            except asyncio.CancelledError:
                # Shutdown cancelled the collector mid-batch: anybody
                # still waiting must not hang on a dead future.
                error = ServiceClosedError("service shut down mid-batch")
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                raise
            except Exception as exc:  # evaluator bug or poisoned batch
                for registry in self._registries():
                    registry.counter("serve.batch_errors").inc()
                error = EvaluationFailedError(
                    f"{type(exc).__name__}: {exc}"
                )
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                return
        now = time.monotonic()
        latencies = [
            registry.histogram("serve.latency_s")
            for registry in self._registries()
        ]
        for request, metrics in zip(requests, metrics_list):
            for latency in latencies:
                latency.observe(now - request.enqueued_s)
            if not request.future.done():  # timed out / disconnected
                request.future.set_result(metrics)

    # -- searches --------------------------------------------------------

    async def submit_search(
        self,
        session: EvaluatorSession,
        config_fields: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run a full multiresolution search on the search executor.

        The search's grid batches re-enter the micro-batcher through
        :class:`_ServeEvaluatorProxy`, sharing batches and cache state
        with concurrent client traffic for the same specification.
        """
        self._check_accepting()
        if session.spec is None:
            raise ConfigurationError(
                f"session {session.name!r} has no specification; "
                "searches need a spec-backed session"
            )
        self.n_searches += 1
        for registry in self._registries():
            registry.counter("serve.searches").inc()
        assert self.loop is not None and self._search_executor is not None
        return await self.loop.run_in_executor(
            self._search_executor,
            self._run_search_sync,
            session,
            dict(config_fields or {}),
            dict(fixed or {}),
        )

    def _atlas_seeder(self, session: EvaluatorSession):
        """The session's atlas seed source, or None (no atlas / no spec)."""
        if self.atlas is None or session.spec is None:
            return None
        from repro.atlas import seeder_for

        return seeder_for(
            self.atlas,
            session.inner,
            session.kind,
            session.spec,
            session.spec.goal(),
        )

    def _run_search_sync(
        self,
        session: EvaluatorSession,
        config_fields: Dict[str, Any],
        fixed: Dict[str, Any],
    ) -> Dict[str, Any]:
        result = self._search_result(session, config_fields, fixed)
        return {
            "feasible": result.feasible,
            "best_point": result.best_point,
            "best_metrics": result.best_metrics,
            "n_evaluations": result.log.n_evaluations,
            "regions_explored": result.regions_explored,
            "atlas_seeds": result.atlas_seeds,
            "atlas_replayed": result.atlas_replayed,
            "strategy": result.strategy,
            "evals_saved": result.evals_saved,
            "summary": result.summary(),
        }

    def _search_result(
        self,
        session: EvaluatorSession,
        config_fields: Dict[str, Any],
        fixed: Dict[str, Any],
    ):
        if session.kind == "viterbi":
            from repro.viterbi.metacore import (
                normalize_viterbi_point,
                viterbi_design_space,
            )

            space = viterbi_design_space(
                fixed or {"G": "standard", "N": 1}
            )
            normalizer = normalize_viterbi_point
        elif session.kind == "iir":
            from repro.iir.metacore import iir_design_space

            space = iir_design_space(fixed or None)
            normalizer = None
        else:
            raise ConfigurationError(
                f"session kind {session.kind!r} does not support search"
            )
        config = SearchConfig(**config_fields)
        seeder = self._atlas_seeder(session)
        searcher = MetacoreSearch(
            space,
            session.spec.goal(),
            _ServeEvaluatorProxy(self, session),
            config=config,
            normalizer=normalizer,
            atlas=seeder,
        )
        with get_tracer().span("serve.search", session=session.kind):
            result = searcher.run()
        if seeder is not None:
            from repro.atlas import ingest_result

            ingest_result(
                self.atlas,
                seeder,
                result.log.records,
                session.evaluator.max_fidelity,
            )
        return result

    # -- recommendation --------------------------------------------------

    async def submit_recommend(
        self,
        session: EvaluatorSession,
        constraints: Optional[Dict[str, Any]] = None,
        config_fields: Optional[Dict[str, Any]] = None,
        fixed: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Answer a constraint query from the service's design atlas.

        A library hit costs zero evaluations; a miss falls back to a
        warm-started search on the search executor (sharing the
        session's evaluator, cache, and micro-batcher) whose log is
        ingested before the frontier is re-queried.
        """
        self._check_accepting()
        if self.atlas is None:
            raise ConfigurationError(
                "service has no atlas (start it with atlas_path)"
            )
        if session.spec is None:
            raise ConfigurationError(
                f"session {session.name!r} has no specification; "
                "recommendations need a spec-backed session"
            )
        self.n_recommends += 1
        for registry in self._registries():
            registry.counter("serve.recommends").inc()
        assert self.loop is not None and self._search_executor is not None
        return await self.loop.run_in_executor(
            self._search_executor,
            self._run_recommend_sync,
            session,
            dict(constraints or {}),
            dict(config_fields or {}),
            dict(fixed or {}),
        )

    def _run_recommend_sync(
        self,
        session: EvaluatorSession,
        constraints: Dict[str, Any],
        config_fields: Dict[str, Any],
        fixed: Dict[str, Any],
    ) -> Dict[str, Any]:
        from repro.atlas import recommend

        with get_tracer().span("serve.recommend", session=session.kind):
            recommendation = recommend(
                self.atlas,
                session.fingerprint,
                session.spec.goal(),
                constraints=constraints,
                fallback=lambda: self._search_result(
                    session, config_fields, fixed
                ),
            )
        self.metrics.counter(
            "atlas.hits" if recommendation.source == "atlas" else "atlas.misses"
        ).inc()
        return {
            "source": recommendation.source,
            "point": recommendation.point,
            "metrics": recommendation.metrics,
            "n_evaluations": recommendation.n_evaluations,
            "feasible": recommendation.feasible,
            "summary": recommendation.summary(),
        }

    # -- status ----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Counters and per-session cache statistics as a plain dict."""
        batch_hist = self.metrics.histogram(
            "serve.batch_size", BATCH_SIZE_BUCKETS
        )
        latency_hist = self.metrics.histogram("serve.latency_s")
        info: Dict[str, Any] = {
            "protocol": 1,
            "running": self._running,
            "draining": self._draining,
            "node": self.config.node_id,
            "uptime_s": (
                time.monotonic() - self._started_s if self._running else 0.0
            ),
            "queue_depth": self.n_pending,
            "max_pending": self.config.max_pending,
            "max_batch": self.config.max_batch,
            "linger_s": self.config.linger_s,
            "workers": self.config.workers,
            "requests": self.n_requests,
            "rejected": self.n_rejected,
            "timeouts": self.n_timeouts,
            "batches": self.n_batches,
            "searches": self.n_searches,
            "recommends": self.n_recommends,
            "batch_size": {
                "count": batch_hist.count,
                "mean": batch_hist.mean,
                "p50": batch_hist.quantile(0.5),
                "max": batch_hist.snapshot()["max"],
            },
            "latency_s": {
                "count": latency_hist.count,
                "mean": latency_hist.mean,
                "p50": latency_hist.quantile(0.5),
                "p99": latency_hist.quantile(0.99),
            },
            "sessions": {
                session.name: session.stats()
                for session in self.sessions()
            },
        }
        info["persistent_hits"] = sum(
            session.evaluator.persistent_hits for session in self.sessions()
        )
        if self.store is not None:
            info["store"] = self.store.stats()
        if self.atlas is not None:
            atlas_info = self.atlas.stats()
            atlas_info["hits"] = self.metrics.counter("atlas.hits").value
            atlas_info["misses"] = self.metrics.counter("atlas.misses").value
            info["atlas"] = atlas_info
        return info
