"""Dynamic micro-batching of compatible evaluation requests.

Point requests from many concurrent clients are independent, and the
evaluation layer is batch-first (``evaluate_many`` fans a batch out
over the process pool), so the service coalesces *compatible* requests
— same evaluator fingerprint, same fidelity — into micro-batches:

- the first request of a batch opens a *linger window*
  (``linger_s``); requests arriving inside the window join the batch;
- the batch closes when it reaches ``max_batch`` entries or the window
  expires, whichever is first;
- batches of the same key run one at a time (so requests queued behind
  a running batch accumulate into the next, larger batch — classic
  dynamic batching), while batches of different keys run concurrently.

Determinism is unaffected: every evaluator derives its stochastic
streams from (seed, point, fidelity), so how requests are grouped into
batches — or which batch runs first — cannot change any result.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Optional


@dataclass
class PendingRequest:
    """One admitted point request waiting for its micro-batch."""

    point: Dict[str, Any]
    fidelity: int
    future: "asyncio.Future[Dict[str, float]]"
    #: Opaque per-request context (the service stores its session here).
    context: Any = None
    enqueued_s: float = field(default_factory=time.monotonic)


#: Runs one closed batch; must resolve every request's future.
BatchRunner = Callable[[Hashable, List[PendingRequest]], Awaitable[None]]


class MicroBatcher:
    """Group compatible requests into bounded, lingering micro-batches.

    One collector task per batch key, started lazily on the key's first
    request and kept until :meth:`close`.  The collector is the only
    consumer of its key's queue, so batch assembly needs no locking.
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        max_batch: int = 8,
        linger_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.run_batch = run_batch
        self.max_batch = int(max_batch)
        self.linger_s = max(0.0, float(linger_s))
        self._queues: Dict[Hashable, "asyncio.Queue[PendingRequest]"] = {}
        self._collectors: Dict[Hashable, "asyncio.Task[None]"] = {}
        self._closed = False

    @property
    def n_queued(self) -> int:
        """Requests accepted but not yet handed to a batch run."""
        return sum(queue.qsize() for queue in self._queues.values())

    def submit(self, key: Hashable, request: PendingRequest) -> None:
        """Enqueue one request under its compatibility key."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        queue = self._queues.get(key)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[key] = queue
            self._collectors[key] = asyncio.ensure_future(
                self._collect(key, queue)
            )
        queue.put_nowait(request)

    async def _collect(
        self, key: Hashable, queue: "asyncio.Queue[PendingRequest]"
    ) -> None:
        """Assemble and run batches for one key, forever."""
        while True:
            batch: List[PendingRequest] = []
            try:
                batch.append(await queue.get())
                deadline = time.monotonic() + self.linger_s
                while len(batch) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # Window expired: still take whatever is
                        # already queued (no reason to leave ready
                        # work behind).
                        while (
                            len(batch) < self.max_batch
                            and not queue.empty()
                        ):
                            batch.append(queue.get_nowait())
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        continue  # re-check the queue, then close
                # Sequential per key: requests arriving while this
                # batch evaluates pile up for the next (larger) one.
                await self.run_batch(key, batch)
            except asyncio.CancelledError:
                # close() cancelled us mid-assembly: requests already
                # pulled off the queue live only in `batch` — fail
                # them or their waiters hang forever.  (run_batch's
                # own cancel handler may have failed them already;
                # the done-check makes this idempotent.)
                error = RuntimeError("service shut down")
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(error)
                raise

    async def close(self) -> None:
        """Cancel collectors and fail any not-yet-batched request."""
        self._closed = True
        for task in self._collectors.values():
            task.cancel()
        for task in self._collectors.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for queue in self._queues.values():
            while not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.set_exception(
                        RuntimeError("service shut down")
                    )
        self._queues.clear()
        self._collectors.clear()
