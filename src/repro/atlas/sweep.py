"""Portfolio driver: populate the atlas from a batch of scenarios.

A sweep is how a library gets built in one pass — run every scenario
of a portfolio through its facade search (each ingests its log into
the shared atlas), then report the per-spec winners alongside the
library growth.  Later scenarios in the same sweep already warm-start
from the earlier ones when their specs are near.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.batch import SpecificationSweep, SweepRow


@dataclass
class SweepOutcome:
    """The rows of a portfolio sweep plus the resulting library state."""

    rows: List[SweepRow]
    sweep: SpecificationSweep
    atlas_stats: Dict[str, object]

    def format_table(self) -> str:
        table = self.sweep.format_table(
            extra_columns={
                "evals": lambda row: str(row.result.log.n_evaluations),
                "atlas-warm": lambda row: (
                    f"{row.result.atlas_seeds}s/{row.result.atlas_replayed}r"
                ),
            }
        )
        stats = self.atlas_stats
        footer = (
            f"atlas: {stats['scenarios']} scenarios, "
            f"{stats['records']} records, "
            f"{stats['frontier']} frontier designs -> {stats['path']}"
        )
        return table + "\n" + footer


def run_sweep(
    metacores: Sequence[object],
    labels: Optional[Sequence[str]] = None,
) -> SweepOutcome:
    """Search every facade in order, ingesting each log into its atlas.

    ``metacores`` are configured facade instances (``ViterbiMetaCore``
    / ``IIRMetaCore``), typically sharing one ``atlas_path``; ingestion
    happens inside each facade's ``search()``.  The feasibility metric
    for the "average case" column follows the first facade's goal
    (``ber_violation`` for BER-curve goals, ``spec_violation``
    otherwise).
    """
    metacores = list(metacores)
    if not metacores:
        raise ValueError("nothing to sweep")
    first_goal = metacores[0].spec.goal()
    feasibility_metric = (
        "ber_violation" if first_goal.ber_curve is not None else "spec_violation"
    )
    sweep = SpecificationSweep(
        runner=lambda metacore: metacore.search(),
        objective_metric=first_goal.primary.metric,
        feasibility_metric=feasibility_metric,
    )
    if labels is None:
        labels = [str(metacore.spec) for metacore in metacores]
    rows = sweep.run(metacores, labels=labels)
    atlas_stats: Dict[str, object] = {
        "path": None,
        "scenarios": 0,
        "records": 0,
        "frontier": 0,
        "skipped": 0,
    }
    atlas_path = getattr(metacores[0], "atlas_path", None)
    if atlas_path is not None:
        from repro.atlas.store import DesignAtlas

        with DesignAtlas(atlas_path) as atlas:
            atlas_stats = atlas.stats()
    return SweepOutcome(rows=rows, sweep=sweep, atlas_stats=atlas_stats)
