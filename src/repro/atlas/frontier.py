"""Incrementally maintained Pareto frontiers per atlas scenario.

Each scenario of the design atlas keeps the non-dominated subset of
its exact-fidelity evaluations.  The frontier spans the scenario
goal's objectives *plus* every constrained metric pushed away from its
bound — a design that trades a little area for a lot of constraint
margin is dominated under the goal alone, yet it is exactly the stored
answer a *tighter* future constraint query needs.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import DesignGoal, Direction, Objective
from repro.core.pareto import dominates, front_sort_key


def frontier_objectives(goal: DesignGoal) -> List[Objective]:
    """The axes a scenario's frontier spans.

    Goal objectives first (primary order preserved), then one derived
    objective per constrained metric: an upper bound minimizes, a
    lower bound maximizes.  Metrics already covered by an objective are
    not duplicated.
    """
    axes = list(goal.objectives)
    covered = {objective.metric for objective in axes}
    for constraint in goal.all_constraints():
        if constraint.metric in covered:
            continue
        covered.add(constraint.metric)
        direction = (
            Direction.MINIMIZE
            if constraint.upper is not None
            else Direction.MAXIMIZE
        )
        axes.append(Objective(constraint.metric, direction))
    return axes


class ParetoFrontier:
    """A non-dominated record set updated one evaluation at a time.

    ``add`` is O(frontier) per record; the members are kept in the
    deterministic order of :func:`repro.core.pareto.front_sort_key`,
    so a frontier rebuilt from the same records in any insertion order
    holds the same designs.
    """

    def __init__(self, objectives: Sequence[Objective]) -> None:
        self.objectives = list(objectives)
        self._records: List[EvaluationRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EvaluationRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[EvaluationRecord, ...]:
        return tuple(self._records)

    def add(self, record: EvaluationRecord) -> bool:
        """Offer one record; returns True when the frontier changed.

        A record of a point already on the frontier replaces it when
        its fidelity is at least as high (re-confirmation); dominated
        offers are rejected, and an accepted offer evicts every member
        it dominates.
        """
        for index, existing in enumerate(self._records):
            if existing.point == record.point:
                if record.fidelity < existing.fidelity:
                    return False
                self._records.pop(index)
                break
        if any(
            dominates(existing.metrics, record.metrics, self.objectives)
            for existing in self._records
        ):
            return False
        self._records = [
            existing
            for existing in self._records
            if not dominates(record.metrics, existing.metrics, self.objectives)
        ]
        self._records.append(record)
        self._records.sort(key=lambda r: front_sort_key(r, self.objectives))
        return True
