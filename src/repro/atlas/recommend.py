"""Constraint-query recommendation over the atlas frontier.

``recommend`` is the zero-evaluation fast path of the library: when a
stored exact-fidelity frontier design already satisfies the query, it
is returned straight from memory in O(frontier) — no evaluator touch,
no simulation, no synthesis estimate.  Only on a miss does the query
fall back to a (warm-started) search, whose log then grows the library
so the *next* nearby query hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import Constraint, DesignGoal, Metrics
from repro.core.parameters import Point
from repro.observability.metrics import get_registry


@dataclass
class Recommendation:
    """The answer to one constraint query."""

    point: Optional[Point]
    metrics: Optional[Metrics]
    #: ``"atlas"`` — answered from the stored frontier with zero
    #: evaluations; ``"search"`` — a fallback search had to run.
    source: str
    #: Evaluations spent answering (0 on a library hit).
    n_evaluations: int = 0
    feasible: bool = False
    extra_constraints: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"source: {self.source}",
            f"evaluations: {self.n_evaluations}",
            f"feasible: {self.feasible}",
        ]
        if self.point is not None:
            point = ", ".join(f"{k}={v}" for k, v in sorted(self.point.items()))
            lines.append(f"design: {{{point}}}")
        if self.metrics is not None:
            metrics = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.metrics.items())
            )
            lines.append(f"metrics: {{{metrics}}}")
        return "\n".join(lines)


def _tightened_goal(
    goal: DesignGoal, constraints: Optional[Mapping[str, float]]
) -> DesignGoal:
    """The scenario goal plus per-query upper bounds."""
    if not constraints:
        return goal
    extra = [
        Constraint(metric=str(metric), upper=float(bound))
        for metric, bound in sorted(constraints.items())
    ]
    return DesignGoal(
        objectives=list(goal.objectives),
        constraints=list(goal.constraints) + extra,
        ber_curve=goal.ber_curve,
    )


def query_frontier(
    frontier: Iterable[EvaluationRecord],
    goal: DesignGoal,
    constraints: Optional[Mapping[str, float]] = None,
) -> Optional[EvaluationRecord]:
    """Best stored design satisfying the query, or None.

    One O(frontier) pass: every frontier record is checked against the
    scenario goal plus the per-query upper bounds; feasible records
    compete on the goal's comparison (primary objective).  Touches no
    evaluator.
    """
    tightened = _tightened_goal(goal, constraints)
    best: Optional[EvaluationRecord] = None
    for record in frontier:
        if not tightened.is_feasible(record.metrics):
            continue
        if best is None or tightened.compare(record.metrics, best.metrics) < 0:
            best = record
    return best


def recommend(
    atlas,
    fingerprint: str,
    goal: DesignGoal,
    constraints: Optional[Mapping[str, float]] = None,
    fallback: Optional[Callable[[], object]] = None,
) -> Recommendation:
    """Answer a constraint query from the library, searching on a miss.

    Hit: a stored frontier design satisfies the (tightened) goal —
    returned with ``n_evaluations == 0`` and the ``atlas.hits`` counter
    bumped.  Miss: ``atlas.misses`` is bumped and ``fallback`` (a
    zero-argument callable running a search whose log is ingested into
    the atlas, e.g. a warm-started facade search) provides the design;
    the refreshed frontier is re-queried so the recommendation reflects
    the now-stored answer.
    """
    registry = get_registry()
    extra = {str(k): float(v) for k, v in (constraints or {}).items()}
    hit = query_frontier(atlas.frontier(fingerprint), goal, extra)
    if hit is not None:
        registry.counter("atlas.hits").inc()
        return Recommendation(
            point=hit.as_point(),
            metrics=dict(hit.metrics),
            source="atlas",
            n_evaluations=0,
            feasible=True,
            extra_constraints=extra,
        )
    registry.counter("atlas.misses").inc()
    if fallback is None:
        return Recommendation(
            point=None,
            metrics=None,
            source="atlas",
            n_evaluations=0,
            feasible=False,
            extra_constraints=extra,
        )
    result = fallback()
    n_evaluations = result.log.n_evaluations if result is not None else 0
    refreshed = query_frontier(atlas.frontier(fingerprint), goal, extra)
    if refreshed is not None:
        return Recommendation(
            point=refreshed.as_point(),
            metrics=dict(refreshed.metrics),
            source="search",
            n_evaluations=n_evaluations,
            feasible=True,
            extra_constraints=extra,
        )
    tightened = _tightened_goal(goal, extra)
    best_metrics = result.best_metrics if result is not None else None
    return Recommendation(
        point=result.best_point if result is not None else None,
        metrics=dict(best_metrics) if best_metrics is not None else None,
        source="search",
        n_evaluations=n_evaluations,
        feasible=(
            best_metrics is not None and tightened.is_feasible(best_metrics)
        ),
        extra_constraints=extra,
    )
