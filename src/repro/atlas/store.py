"""The persistent design atlas: a cross-run Pareto library.

Where :class:`~repro.core.evalcache.PersistentEvalCache` remembers
*point prices*, the atlas remembers *answers*: for every scenario
(evaluator fingerprint) it keeps all priced design points plus the
Pareto frontier of the exact-fidelity ones, and alongside each
fingerprint a descriptor — driver kind, normalized spec features, goal
signature, frontier axes — so future scenarios can find their nearest
stored neighbors without ever reconstructing the original spec.

The on-disk format is append-only JSONL (one ``scenario`` descriptor
line per fingerprint, one ``record`` line per priced point, eagerly
flushed) with an atomic JSON index sidecar (``<path>.index.json``,
written via tmp-file + ``os.replace``) summarizing per-scenario counts
for cheap inspection; the JSONL file remains the source of truth.
Corrupt lines are skipped and counted (``n_skipped``) with a single
warning per load, mirroring the evaluation cache.

**Shared across processes.**  A cluster's replicas point at one atlas
file, so the store is multi-writer safe: every append takes an
exclusive advisory lock (``flock``; no-op where unavailable) for the
open-merge-write-close cycle, and every read first merges the *tail* —
lines other writers appended since this process last looked — tracked
by byte offset.  Appends are therefore serialized whole lines; readers
take a shared lock and never observe a torn record.  Merging is
idempotent (max-fidelity-wins dedup, first scenario descriptor wins),
so two nodes ingesting the same search converge to one state.  A file
*rewrite* (``atlas-compact``) is detected by inode/size change and
triggers a from-scratch re-merge rather than a misaligned tail read.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

try:  # advisory locking is POSIX-only; elsewhere appends are best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.atlas.frontier import ParetoFrontier, frontier_objectives
from repro.atlas.similarity import goal_signature, scenario_distance
from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import DesignGoal, Direction, Objective

PointKey = Tuple[Tuple[str, Any], ...]

#: Bump to orphan every existing atlas file (schema migrations).
ATLAS_SCHEMA_VERSION = 1


class _Scenario:
    """In-memory state of one stored scenario."""

    def __init__(
        self,
        kind: str,
        features: Optional[Dict[str, float]],
        signature: str,
        axes: List[Objective],
    ) -> None:
        self.kind = kind
        self.features = features
        self.signature = signature
        self.axes = axes
        #: point key -> (fidelity, metrics, exact)
        self.records: Dict[PointKey, Tuple[int, Dict[str, float], bool]] = {}
        self.frontier = ParetoFrontier(axes)

    def offer(self, key: PointKey, fidelity: int, metrics: Dict[str, float], exact: bool) -> bool:
        """Max-fidelity-wins dedup; returns True when state improved."""
        existing = self.records.get(key)
        if existing is not None and existing[0] >= fidelity:
            return False
        self.records[key] = (fidelity, metrics, exact)
        if exact:
            self.frontier.add(
                EvaluationRecord(point=key, fidelity=fidelity, metrics=metrics)
            )
        return True


class DesignAtlas:
    """Append-only JSONL library of scenarios, records, and frontiers.

    Thread-safe.  Use as a context manager (or call :meth:`close`) so
    the index sidecar reflects the final state; crash-interrupted runs
    lose only the index freshness, never the JSONL records.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._scenarios: Dict[str, _Scenario] = {}
        self.n_loaded = 0
        #: Raw record lines consumed from the log, including entries a
        #: later higher-fidelity append superseded — the on-disk count
        #: compaction reports against the deduped in-memory view.
        self.n_record_lines = 0
        #: Corrupt (undecodable / malformed) lines skipped at load time.
        #: Schema-version mismatches are *not* corruption and stay silent.
        self.n_skipped = 0
        self._warned = False
        #: How far into the JSONL file this process has merged (bytes),
        #: plus the inode it belongs to — a changed inode or a shrunken
        #: file means the atlas was rewritten underneath us.
        self._read_offset = 0
        self._read_ino: Optional[int] = None
        self._line_no = 0
        with self._lock:
            self._refresh_locked()

    # -- file locking ----------------------------------------------------

    @staticmethod
    def _lock_file(handle, exclusive: bool) -> None:
        if fcntl is not None:
            fcntl.flock(
                handle.fileno(),
                fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH,
            )

    @staticmethod
    def _unlock_file(handle) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _open_locked(self, mode: str, exclusive: bool):
        """Open + lock the atlas file, retrying across rewrites.

        A compaction replaces the file while a writer waits on the
        lock; appending to the now-orphaned inode would lose records,
        so after acquiring the lock we verify the fd still names the
        path and reopen if not.
        """
        while True:
            handle = self.path.open(mode)
            try:
                self._lock_file(handle, exclusive)
                try:
                    if (
                        os.fstat(handle.fileno()).st_ino
                        == os.stat(self.path).st_ino
                    ):
                        return handle
                except OSError:
                    pass  # path vanished mid-swap; reopen recreates it
                self._unlock_file(handle)
            except BaseException:
                handle.close()
                raise
            handle.close()

    # -- loading ---------------------------------------------------------

    def _refresh_locked(self) -> int:
        """Merge lines appended (by anyone) since the last read.

        Returns the number of lines consumed.  Caller holds ``_lock``.
        """
        try:
            handle = self._open_locked("rb", exclusive=False)
        except FileNotFoundError:
            return 0
        try:
            stat = os.fstat(handle.fileno())
            if stat.st_ino != self._read_ino or stat.st_size < self._read_offset:
                # Rewritten (compacted) underneath us: re-merge it all.
                # Idempotent, so existing in-memory state is kept.
                self._read_offset = 0
                self._line_no = 0
                self._read_ino = stat.st_ino
                self.n_record_lines = 0
            if stat.st_size <= self._read_offset:
                return 0
            return self._consume(handle)
        finally:
            self._unlock_file(handle)
            handle.close()

    def _consume(self, handle) -> int:
        """Parse lines from ``_read_offset`` to EOF; advance the offset.

        A final line without a newline is a torn concurrent append (or
        a crashed writer's remnant): it is left unconsumed so the next
        refresh re-reads it once complete.
        """
        handle.seek(self._read_offset)
        consumed = 0
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # torn tail; re-read once whole
            self._read_offset += len(raw)
            self._line_no += 1
            consumed += 1
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self._skip(self._line_no, "undecodable JSON")
                continue
            if not isinstance(entry, dict):
                self._skip(self._line_no, "not a JSON object")
                continue
            if entry.get("schema") != ATLAS_SCHEMA_VERSION:
                continue  # orphaned by a schema bump, by design
            kind = entry.get("type")
            try:
                if kind == "scenario":
                    self._load_scenario(entry)
                elif kind == "record":
                    self._load_record(entry)
                    self.n_record_lines += 1
                else:
                    self._skip(self._line_no, f"unknown line type {kind!r}")
            except (KeyError, TypeError, ValueError):
                self._skip(self._line_no, "malformed record")
        self.n_loaded = sum(
            len(scenario.records) for scenario in self._scenarios.values()
        )
        return consumed

    def refresh(self) -> int:
        """Pull in other writers' appends; returns lines merged."""
        with self._lock:
            return self._refresh_locked()

    def _load_scenario(self, entry: Mapping[str, Any]) -> None:
        fingerprint = str(entry["fp"])
        if fingerprint in self._scenarios:
            # A concurrent writer registered the same fingerprint; the
            # fingerprint covers everything behavior-relevant, so keep
            # the existing scenario (and its already-merged records).
            return
        raw_features = entry["features"]
        features = (
            {str(k): float(v) for k, v in raw_features.items()}
            if raw_features is not None
            else None
        )
        axes = [
            Objective(str(metric), Direction(str(direction)))
            for metric, direction in entry["axes"]
        ]
        if not axes:
            raise ValueError("scenario without frontier axes")
        self._scenarios[fingerprint] = _Scenario(
            kind=str(entry["kind"]),
            features=features,
            signature=str(entry["goal"]),
            axes=axes,
        )

    def _load_record(self, entry: Mapping[str, Any]) -> None:
        fingerprint = str(entry["fp"])
        scenario = self._scenarios.get(fingerprint)
        if scenario is None:
            raise ValueError("record before its scenario descriptor")
        key = tuple((str(k), v) for k, v in entry["point"])
        fidelity = int(entry["fid"])
        metrics = {str(k): float(v) for k, v in entry["metrics"].items()}
        scenario.offer(key, fidelity, metrics, bool(entry["exact"]))

    def _skip(self, line_no: int, reason: str) -> None:
        self.n_skipped += 1
        if self._warned:
            return
        self._warned = True
        warnings.warn(
            f"design atlas {self.path}: skipping corrupt line {line_no} "
            f"({reason}); further corrupt lines counted silently",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- writing ---------------------------------------------------------

    def _append_entries(self, entries: List[Dict[str, Any]]) -> None:
        """Append whole lines under an exclusive advisory lock.

        Merges the foreign tail first so this process's view includes
        everything already on disk, then writes and advances the read
        offset past its own lines (they are already in memory).
        Caller holds ``_lock``.
        """
        if not entries:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = self._open_locked("a+b", exclusive=True)
        try:
            stat = os.fstat(handle.fileno())
            if (
                stat.st_ino != self._read_ino
                or stat.st_size < self._read_offset
            ):
                self._read_offset = 0
                self._line_no = 0
                self._read_ino = stat.st_ino
                self.n_record_lines = 0
            self._consume(handle)
            handle.seek(0, os.SEEK_END)
            payload = b"".join(
                json.dumps(entry, separators=(",", ":")).encode("utf-8")
                + b"\n"
                for entry in entries
            )
            handle.write(payload)
            handle.flush()
            self._read_offset = handle.tell()
            self._line_no += len(entries)
        finally:
            self._unlock_file(handle)
            handle.close()

    def _append(self, entry: Dict[str, Any]) -> None:
        self._append_entries([entry])

    def register_scenario(
        self,
        fingerprint: str,
        kind: str,
        features: Optional[Mapping[str, float]],
        goal: DesignGoal,
    ) -> None:
        """Record (once) what a fingerprint *means*.

        Idempotent: a fingerprint seen before keeps its stored
        descriptor — the fingerprint covers everything that could
        change behavior, so a matching fingerprint implies a matching
        scenario.
        """
        with self._lock:
            if fingerprint in self._scenarios:
                return
            axes = frontier_objectives(goal)
            scenario = _Scenario(
                kind=str(kind),
                features=dict(features) if features is not None else None,
                signature=goal_signature(goal),
                axes=axes,
            )
            self._scenarios[fingerprint] = scenario
            self._append(
                {
                    "schema": ATLAS_SCHEMA_VERSION,
                    "type": "scenario",
                    "fp": fingerprint,
                    "kind": scenario.kind,
                    "features": scenario.features,
                    "goal": scenario.signature,
                    "axes": [
                        [objective.metric, objective.direction.value]
                        for objective in axes
                    ],
                }
            )

    def ingest(
        self,
        fingerprint: str,
        kind: str,
        features: Optional[Mapping[str, float]],
        goal: DesignGoal,
        records: Iterable[EvaluationRecord],
        max_fidelity: int,
    ) -> Dict[str, int]:
        """Fold one search's evaluation log into the library.

        Every record is kept for exact-scenario replay; only records at
        ``max_fidelity`` (exact) feed the Pareto frontier.  Returns
        ``{"ingested": new-or-improved records, "frontier": size}``.
        """
        self.register_scenario(fingerprint, kind, features, goal)
        ingested = 0
        with self._lock:
            scenario = self._scenarios[fingerprint]
            entries: List[Dict[str, Any]] = []
            for record in records:
                key = tuple((str(k), v) for k, v in record.point)
                metrics = {
                    str(k): float(v) for k, v in record.metrics.items()
                }
                exact = record.fidelity >= max_fidelity
                if not scenario.offer(key, record.fidelity, metrics, exact):
                    continue
                ingested += 1
                entries.append(
                    {
                        "schema": ATLAS_SCHEMA_VERSION,
                        "type": "record",
                        "fp": fingerprint,
                        "point": [[k, v] for k, v in key],
                        "fid": record.fidelity,
                        "metrics": metrics,
                        "exact": exact,
                    }
                )
            self._append_entries(entries)
            frontier_size = len(scenario.frontier)
        return {"ingested": ingested, "frontier": frontier_size}

    # -- queries ---------------------------------------------------------

    def replay(self, fingerprint: str) -> List[EvaluationRecord]:
        """Every stored record of one scenario (all fidelities)."""
        with self._lock:
            self._refresh_locked()
            scenario = self._scenarios.get(fingerprint)
            if scenario is None:
                return []
            return [
                EvaluationRecord(point=key, fidelity=fidelity, metrics=dict(metrics))
                for key, (fidelity, metrics, _exact) in scenario.records.items()
            ]

    def frontier(self, fingerprint: str) -> Tuple[EvaluationRecord, ...]:
        """The exact-fidelity Pareto frontier of one scenario."""
        with self._lock:
            self._refresh_locked()
            scenario = self._scenarios.get(fingerprint)
            if scenario is None:
                return ()
            return scenario.frontier.records

    def scenario_info(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            self._refresh_locked()
            scenario = self._scenarios.get(fingerprint)
            if scenario is None:
                return None
            return {
                "kind": scenario.kind,
                "features": dict(scenario.features)
                if scenario.features is not None
                else None,
                "goal": scenario.signature,
                "records": len(scenario.records),
                "frontier": len(scenario.frontier),
            }

    def neighbors(
        self,
        kind: str,
        features: Mapping[str, float],
        signature: str,
        threshold: float,
    ) -> List[Tuple[str, float]]:
        """Stored scenarios near a query, sorted by (distance, fp).

        Only scenarios of the same driver kind and goal signature are
        comparable; the deterministic fingerprint tie-break keeps seed
        order — and therefore warm-started searches — reproducible.
        """
        out: List[Tuple[str, float]] = []
        with self._lock:
            self._refresh_locked()
            for fingerprint, scenario in self._scenarios.items():
                if scenario.kind != kind or scenario.signature != signature:
                    continue
                if scenario.features is None:
                    continue
                distance = scenario_distance(dict(features), scenario.features)
                if distance <= threshold:
                    out.append((fingerprint, distance))
        out.sort(key=lambda item: (item[1], item[0]))
        return out

    def fingerprints(self) -> List[str]:
        with self._lock:
            self._refresh_locked()
            return sorted(self._scenarios)

    def stats(self) -> Dict[str, Any]:
        """Plain-dict accounting (for status endpoints/reports)."""
        with self._lock:
            self._refresh_locked()
            return {
                "path": str(self.path),
                "scenarios": len(self._scenarios),
                "records": sum(
                    len(s.records) for s in self._scenarios.values()
                ),
                "frontier": sum(
                    len(s.frontier) for s in self._scenarios.values()
                ),
                "loaded": self.n_loaded,
                "skipped": self.n_skipped,
            }

    # -- index sidecar / lifecycle ---------------------------------------

    @property
    def index_path(self) -> Path:
        return Path(str(self.path) + ".index.json")

    def _write_index(self) -> None:
        index = {
            "schema": ATLAS_SCHEMA_VERSION,
            "scenarios": {
                fingerprint: {
                    "kind": scenario.kind,
                    "goal": scenario.signature,
                    "records": len(scenario.records),
                    "frontier": len(scenario.frontier),
                }
                for fingerprint, scenario in self._scenarios.items()
            },
        }
        tmp = Path(str(self.index_path) + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(index, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.index_path)

    def dump_entries(
        self, frontier_only: bool = False, refresh: bool = True
    ) -> List[Dict[str, Any]]:
        """The canonical deduped entry stream (for ``atlas-compact``).

        One scenario line per fingerprint followed by its records —
        max-fidelity survivors only, in a deterministic order.  With
        ``frontier_only``, only the exact-fidelity Pareto frontier of
        each scenario is kept (replay history is dropped).  Pass
        ``refresh=False`` when the caller already holds the file lock
        (a shared-lock refresh would self-deadlock against it).
        """
        with self._lock:
            if refresh:
                self._refresh_locked()
            entries: List[Dict[str, Any]] = []
            for fingerprint in sorted(self._scenarios):
                scenario = self._scenarios[fingerprint]
                entries.append(
                    {
                        "schema": ATLAS_SCHEMA_VERSION,
                        "type": "scenario",
                        "fp": fingerprint,
                        "kind": scenario.kind,
                        "features": scenario.features,
                        "goal": scenario.signature,
                        "axes": [
                            [objective.metric, objective.direction.value]
                            for objective in scenario.axes
                        ],
                    }
                )
                if frontier_only:
                    rows = [
                        (
                            tuple((str(k), v) for k, v in record.point),
                            (record.fidelity, dict(record.metrics), True),
                        )
                        for record in scenario.frontier.records
                    ]
                else:
                    rows = list(scenario.records.items())
                rows.sort(key=lambda item: json.dumps(list(item[0])))
                for key, (fidelity, metrics, exact) in rows:
                    entries.append(
                        {
                            "schema": ATLAS_SCHEMA_VERSION,
                            "type": "record",
                            "fp": fingerprint,
                            "point": [[k, v] for k, v in key],
                            "fid": fidelity,
                            "metrics": metrics,
                            "exact": exact,
                        }
                    )
            return entries

    def close(self) -> None:
        with self._lock:
            if self._scenarios:
                self._write_index()

    def __enter__(self) -> "DesignAtlas":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def format_atlas_report(atlas: DesignAtlas) -> str:
    """Human-readable library summary (``repro atlas-report``)."""
    stats = atlas.stats()
    lines = [
        f"design atlas: {stats['path']}",
        f"  scenarios: {stats['scenarios']}  records: {stats['records']}"
        f"  frontier designs: {stats['frontier']}",
    ]
    if stats["skipped"]:
        lines.append(f"  corrupt lines skipped: {stats['skipped']}")
    for fingerprint in atlas.fingerprints():
        info = atlas.scenario_info(fingerprint)
        label = fingerprint if len(fingerprint) <= 60 else fingerprint[:57] + "..."
        lines.append(
            f"  [{info['kind']}] {label}\n"
            f"    goal: {info['goal']}\n"
            f"    records: {info['records']}  frontier: {info['frontier']}"
        )
        for record in atlas.frontier(fingerprint):
            lines.append(f"      {record}")
    return "\n".join(lines)
