"""The design atlas: a persistent Pareto library over MetaCore runs.

Turns one-shot searches into an accumulating service: every search's
evaluation log is ingested into a JSONL-backed store
(:class:`~repro.atlas.store.DesignAtlas`), Pareto frontiers are kept
per scenario (:mod:`repro.atlas.frontier`), nearby scenarios seed each
other's searches (:mod:`repro.atlas.similarity`), constraint queries
are answered without evaluation when the library covers them
(:mod:`repro.atlas.recommend`), and scenario portfolios populate the
library in one pass (:mod:`repro.atlas.sweep`).
"""

from repro.atlas.compact import compact_atlas, format_compact_report
from repro.atlas.frontier import ParetoFrontier, frontier_objectives
from repro.atlas.recommend import Recommendation, query_frontier, recommend
from repro.atlas.similarity import (
    DEFAULT_SIMILARITY_THRESHOLD,
    AtlasSeeder,
    goal_signature,
    ingest_result,
    scenario_distance,
    seeder_for,
    spec_features,
)
from repro.atlas.store import ATLAS_SCHEMA_VERSION, DesignAtlas, format_atlas_report
from repro.atlas.sweep import SweepOutcome, run_sweep

__all__ = [
    "ATLAS_SCHEMA_VERSION",
    "AtlasSeeder",
    "DEFAULT_SIMILARITY_THRESHOLD",
    "DesignAtlas",
    "ParetoFrontier",
    "Recommendation",
    "SweepOutcome",
    "compact_atlas",
    "format_atlas_report",
    "format_compact_report",
    "frontier_objectives",
    "goal_signature",
    "ingest_result",
    "query_frontier",
    "seeder_for",
    "recommend",
    "run_sweep",
    "scenario_distance",
    "spec_features",
]
