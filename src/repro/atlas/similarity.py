"""Scenario similarity for atlas warm-starts.

A scenario is one (specification, goal) pair, identified exactly by
its evaluator fingerprint.  Warm-starting a *new* scenario from the
library means finding stored scenarios whose specification is nearby —
"nearby" measured over a normalized numeric feature vector extracted
from the spec (throughput and BER curve for Viterbi; sample period and
filter edges/ripples for IIR).  Rates and BERs span decades, so they
enter the vector in log10.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.evalcache import evaluator_fingerprint
from repro.core.objectives import DesignGoal
from repro.core.parameters import Point, frozen_point

#: Scenarios farther apart than this (RMS relative feature distance)
#: are not used to seed each other.  0.25 roughly means "specs agree
#: to within ~25% per feature" — e.g. a BER bound of 4e-2 vs 5e-2 at
#: the same SNR is well inside; a different SNR grid is not.
DEFAULT_SIMILARITY_THRESHOLD = 0.25


def spec_features(spec: object) -> Dict[str, float]:
    """Normalized numeric feature vector of a facade specification.

    Dispatches on the concrete spec type (imported lazily so the atlas
    package never drags in a driver it is not serving).  Raises
    ``TypeError`` for unknown spec types — the caller should then fall
    back to exact-fingerprint matching only.
    """
    from repro.viterbi.metacore import ViterbiSpec

    if isinstance(spec, ViterbiSpec):
        features = {
            "log10_throughput": math.log10(spec.throughput_bps),
            "feature_um": float(spec.feature_um),
        }
        for index, (es_n0_db, ber) in enumerate(spec.ber_curve.points):
            features[f"es_n0_db_{index}"] = float(es_n0_db)
            features[f"log10_ber_{index}"] = math.log10(ber)
        return features

    from repro.iir.metacore import IIRSpec

    if isinstance(spec, IIRSpec):
        from repro.iir.design import BandpassSpec, LowpassSpec

        features = {
            "log10_period_us": math.log10(spec.sample_period_us),
            "feature_um": float(spec.feature_um),
        }
        filter_spec = spec.filter_spec
        if isinstance(filter_spec, LowpassSpec):
            features.update(
                passband_edge=filter_spec.passband_edge,
                stopband_edge=filter_spec.stopband_edge,
                log10_passband_ripple=math.log10(filter_spec.passband_ripple),
                log10_stopband_ripple=math.log10(filter_spec.stopband_ripple),
            )
        elif isinstance(filter_spec, BandpassSpec):
            features.update(
                passband_low=filter_spec.passband_low,
                passband_high=filter_spec.passband_high,
                stopband_low=filter_spec.stopband_low,
                stopband_high=filter_spec.stopband_high,
                log10_passband_ripple=math.log10(filter_spec.passband_ripple),
                log10_stopband_ripple=math.log10(filter_spec.stopband_ripple),
            )
        else:
            raise TypeError(
                f"no feature extractor for filter spec {type(filter_spec).__name__}"
            )
        return features

    raise TypeError(f"no feature extractor for spec {type(spec).__name__}")


def goal_signature(goal: DesignGoal) -> str:
    """A stable string identifying the *shape* of a goal.

    Two scenarios can only seed each other when they optimize the same
    metrics under the same kinds of constraints; the bound *values*
    live in the feature vector, not here.
    """
    objectives = ",".join(
        f"{objective.metric}:{objective.direction.value}"
        for objective in goal.objectives
    )
    constraints = ",".join(
        sorted(
            f"{constraint.metric}:{'u' if constraint.upper is not None else 'l'}"
            for constraint in goal.all_constraints()
        )
    )
    return f"obj[{objectives}] con[{constraints}]"


def scenario_distance(
    a: Mapping[str, float], b: Mapping[str, float]
) -> float:
    """RMS relative distance between two feature vectors.

    Each feature contributes ``(va - vb) / max(1, |va|, |vb|)`` so
    large-magnitude features (SNRs in dB) and unit-scale ones (log
    ratios) weigh comparably.  Vectors over different feature sets are
    incomparable: distance is +inf.
    """
    if set(a) != set(b):
        return math.inf
    if not a:
        return math.inf
    total = 0.0
    for key, va in a.items():
        vb = b[key]
        scale = max(1.0, abs(va), abs(vb))
        total += ((va - vb) / scale) ** 2
    return math.sqrt(total / len(a))


class AtlasSeeder:
    """Adapts a :class:`~repro.atlas.store.DesignAtlas` to the seed-source
    duck type ``MetacoreSearch`` consumes.

    ``replay()`` yields ``(frozen_point, fidelity, metrics)`` for every
    stored record of the *exact* scenario (same evaluator fingerprint),
    letting the search answer its grid walk from the library.
    ``seeds()`` yields ``(point_dict, exact)`` frontier designs: the
    exact scenario's own frontier plus the frontiers of neighboring
    scenarios within the similarity threshold.
    """

    def __init__(
        self,
        atlas,
        fingerprint: str,
        kind: str,
        features: Optional[Mapping[str, float]],
        goal: DesignGoal,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    ) -> None:
        self.atlas = atlas
        self.fingerprint = fingerprint
        self.kind = kind
        self.features = dict(features) if features is not None else None
        self.goal = goal
        self.threshold = threshold

    def replay(self) -> Iterable[Tuple[Tuple, int, Dict[str, float]]]:
        for record in self.atlas.replay(self.fingerprint):
            yield (
                frozen_point(dict(record.point)),
                record.fidelity,
                dict(record.metrics),
            )

    def seeds(self) -> List[Tuple[Point, bool]]:
        seeds: List[Tuple[Point, bool]] = []
        for record in self.atlas.frontier(self.fingerprint):
            seeds.append((dict(record.point), True))
        if self.features is None:
            return seeds
        signature = goal_signature(self.goal)
        for neighbor_fp, _distance in self.atlas.neighbors(
            self.kind, self.features, signature, self.threshold
        ):
            if neighbor_fp == self.fingerprint:
                continue
            for record in self.atlas.frontier(neighbor_fp):
                seeds.append((dict(record.point), False))
        return seeds


def seeder_for(
    atlas,
    evaluator,
    kind: str,
    spec: object,
    goal: DesignGoal,
    threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
) -> AtlasSeeder:
    """The seed source for one scenario (facade / serve wiring).

    ``evaluator`` is the *base* engine (not a parallel or resilient
    wrapper) so the fingerprint matches the persistent-cache key.
    Specs without a feature extractor degrade gracefully to
    exact-fingerprint matching only.
    """
    try:
        features: Optional[Dict[str, float]] = spec_features(spec)
    except TypeError:
        features = None
    return AtlasSeeder(
        atlas, evaluator_fingerprint(evaluator), kind, features, goal, threshold
    )


def ingest_result(atlas, seeder: AtlasSeeder, records, max_fidelity: int):
    """Fold a finished search's log into the seeder's scenario."""
    return atlas.ingest(
        seeder.fingerprint,
        seeder.kind,
        seeder.features,
        seeder.goal,
        records,
        max_fidelity,
    )
