"""Atlas compaction: rewrite the append-only JSONL without its history.

An atlas file only ever grows — repeated searches of the same scenario
append every improved record, cluster replicas append their own copies
of shared work, and superseded low-fidelity prices stay on disk
forever.  Compaction (``metacores atlas-compact``) rewrites the file
to the canonical deduped stream: one scenario descriptor per
fingerprint plus its max-fidelity surviving records, optionally
trimmed further to just each scenario's Pareto frontier
(``--frontier-only``, which drops exact-scenario replay history but
keeps everything ``recommend`` and warm-starting use).

The rewrite is atomic (tmp file + ``os.replace``) and holds the same
exclusive advisory lock writers use, so a live cluster loses nothing:
a replica appending concurrently blocks until the swap is done, then
detects the new inode and re-merges before writing (see
``DesignAtlas._open_locked``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Union

from repro.atlas.store import DesignAtlas
from repro.errors import ConfigurationError


def compact_atlas(
    path: Union[str, Path], frontier_only: bool = False
) -> Dict[str, Any]:
    """Rewrite an atlas file in place; returns a size/count report."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no atlas file at {path}")
    bytes_before = path.stat().st_size
    atlas = DesignAtlas(path)
    stats_before = atlas.stats()

    tmp = Path(str(path) + ".compact.tmp")
    # Exclusive lock on the *current* file for the whole dump+swap, so
    # concurrent writers serialize against the compaction instead of
    # appending to a file about to be discarded.  The tail is merged on
    # the locked handle itself (a refreshing query here would request a
    # shared lock against our own exclusive one and self-deadlock).
    handle = atlas._open_locked("a+b", exclusive=True)
    try:
        with atlas._lock:
            stat = os.fstat(handle.fileno())
            if (
                stat.st_ino != atlas._read_ino
                or stat.st_size < atlas._read_offset
            ):
                atlas._read_offset = 0
                atlas._line_no = 0
                atlas._read_ino = stat.st_ino
                atlas.n_record_lines = 0
            atlas._consume(handle)
        records_before = atlas.n_record_lines
        entries = atlas.dump_entries(
            frontier_only=frontier_only, refresh=False
        )
        with tmp.open("w", encoding="utf-8") as out:
            for entry in entries:
                out.write(json.dumps(entry, separators=(",", ":")) + "\n")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    finally:
        DesignAtlas._unlock_file(handle)
        handle.close()
        if tmp.exists():
            tmp.unlink()

    # Reload the rewritten file so the index sidecar matches what is
    # actually on disk (frontier_only drops records the old in-memory
    # view still holds).
    compacted = DesignAtlas(path)
    stats_after = compacted.stats()
    compacted.close()
    bytes_after = path.stat().st_size
    return {
        "path": str(path),
        "frontier_only": bool(frontier_only),
        "scenarios": stats_after["scenarios"],
        "records_before": records_before,
        "records_after": stats_after["records"],
        "frontier": stats_after["frontier"],
        "corrupt_dropped": stats_before["skipped"],
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
        "bytes_reclaimed": bytes_before - bytes_after,
    }


def format_compact_report(report: Dict[str, Any]) -> str:
    """Human-readable compaction summary (``atlas-compact`` output)."""
    lines = [
        f"compacted design atlas: {report['path']}",
        f"  scenarios: {report['scenarios']}"
        f"  records: {report['records_before']} -> {report['records_after']}"
        f"  frontier designs: {report['frontier']}",
        f"  bytes: {report['bytes_before']} -> {report['bytes_after']}"
        f"  (reclaimed {report['bytes_reclaimed']})",
    ]
    if report["frontier_only"]:
        lines.append("  retention: frontier designs only (replay history dropped)")
    if report["corrupt_dropped"]:
        lines.append(f"  corrupt lines dropped: {report['corrupt_dropped']}")
    return "\n".join(lines)
