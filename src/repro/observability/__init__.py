"""Observability: span tracing, metrics, and run-telemetry export.

The paper's search budget is dominated by evaluation time ("simulation
times kept short", Sec. 4.4); this subsystem makes that budget visible.
Three zero-dependency layers:

- :mod:`repro.observability.trace` — lightweight spans with monotonic
  timing, thread-local nesting, and a pluggable sink.  With no sink
  installed every span is a shared no-op object, so instrumented hot
  paths cost nothing when tracing is off.
- :mod:`repro.observability.metrics` — counters, gauges, and
  fixed-bucket histograms in a process-wide default registry.
- :mod:`repro.observability.export` — a JSONL sink that persists
  spans/events/metrics plus a summary reducer aggregating a trace file
  into per-stage totals.
"""

from repro.observability.trace import (
    Span,
    Tracer,
    get_tracer,
    set_sink,
    span,
    trace_event,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.observability.export import (
    JsonlSink,
    TraceSummary,
    format_trace_report,
    install_tracing,
    read_trace,
    shutdown_tracing,
    summarize_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_sink",
    "span",
    "trace_event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "JsonlSink",
    "TraceSummary",
    "format_trace_report",
    "install_tracing",
    "read_trace",
    "shutdown_tracing",
    "summarize_trace",
]
