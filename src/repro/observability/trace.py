"""Span-based tracing with a pluggable sink.

A *span* is one timed stage of a run (a refinement round, one cost
evaluation, one Monte-Carlo measurement).  Spans nest: each thread
keeps its own stack, so a span records its parent and depth without any
coordination between threads.  Timing uses the monotonic clock.

The tracer is deliberately minimal.  When no sink is installed —
the default — ``span()`` returns a shared no-op object and ``event()``
returns immediately, so instrumentation in hot paths is free.  Install
a sink (any callable-bearing object with ``emit(record)``) to start
recording; :class:`repro.observability.export.JsonlSink` persists
records to a JSONL file.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Protocol


class Sink(Protocol):
    """Destination for trace records (plain dicts)."""

    def emit(self, record: Dict[str, Any]) -> None:
        """Persist one record; must be safe to call from any thread."""
        ...


class Span:
    """One timed, attributed stage of a run.

    Use as a context manager (normally via :meth:`Tracer.span`)::

        with tracer.span("search.region", level=2) as sp:
            ...
            sp.set(survivors=3)

    Exceptions propagate; the span still closes, flagged
    ``status="error"`` with the exception type attached.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "status", "_tracer", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.status = "ok"
        self._tracer = tracer
        self._parent: Optional[str] = None
        self._depth = 0

    @property
    def duration_s(self) -> float:
        """Wall-clock span length (0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            parent = stack[-1]
            self._parent = parent.name
            self._depth = parent._depth + 1
        stack.append(self)
        self.start_s = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.monotonic()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit (generator teardown etc.)
            stack.remove(self)
        self._tracer._emit_span(self)
        return False  # never swallow the exception


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, Any] = {}
    duration_s = 0.0
    status = "ok"

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Factory for spans and events, writing to one optional sink."""

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self._sink = sink
        self._local = threading.local()

    # -- sink management ------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True while a sink is installed."""
        return self._sink is not None

    @property
    def sink(self) -> Optional[Sink]:
        return self._sink

    def set_sink(self, sink: Optional[Sink]) -> Optional[Sink]:
        """Install (or with ``None`` remove) the sink; returns the old one."""
        old, self._sink = self._sink, sink
        return old

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span context; a shared no-op when tracing is off."""
        if self._sink is None:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time occurrence (no duration)."""
        sink = self._sink
        if sink is None:
            return
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "t_s": time.monotonic(),
        }
        if attrs:
            record["attrs"] = attrs
        stack = self._stack()
        if stack:
            record["span"] = stack[-1].name
        sink.emit(record)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- internals ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit_span(self, span: Span) -> None:
        sink = self._sink
        if sink is None:  # sink removed while the span was open
            return
        record: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "t0_s": span.start_s,
            "dur_s": span.duration_s,
            "depth": span._depth,
            "status": span.status,
            "thread": threading.get_ident(),
        }
        if span._parent is not None:
            record["parent"] = span._parent
        if span.attrs:
            record["attrs"] = span.attrs
        sink.emit(record)


#: Process-wide default tracer all library instrumentation uses.
_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _DEFAULT_TRACER


def set_sink(sink: Optional[Sink]) -> Optional[Sink]:
    """Install a sink on the default tracer; returns the previous one."""
    return _DEFAULT_TRACER.set_sink(sink)


def span(name: str, **attrs: Any):
    """Open a span on the default tracer (no-op while disabled)."""
    return _DEFAULT_TRACER.span(name, **attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Record an event on the default tracer (no-op while disabled)."""
    _DEFAULT_TRACER.event(name, **attrs)
