"""JSONL export of traces/metrics and the trace-summary reducer.

One run, one file: every span and event streams to a JSONL file as it
closes, and a final ``metrics`` record snapshots the registry when the
sink shuts down.  The reducer (:func:`summarize_trace`) folds such a
file into per-stage totals — span count, total/mean/max wall-clock per
span name, event counts, and cache hit/miss counters — which
:func:`format_trace_report` renders as the ``trace-report`` CLI output.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.trace import get_tracer


def _jsonable(value: Any) -> Any:
    """Best-effort conversion so exotic attrs never kill a run."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return str(value)


class JsonlSink:
    """Append-only JSONL writer usable as a tracer sink.

    Thread-safe: records from concurrent spans interleave but each line
    is written atomically under a lock.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self.n_records = 0

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as a JSON line (dropped after close)."""
        line = json.dumps(_jsonable(record), separators=(",", ":"))
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            # Keep the buffer empty so a forked worker never inherits
            # (and re-flushes at exit) half-written parent records.
            self._file.flush()
            self.n_records += 1

    def write_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Snapshot a registry into the file as one ``metrics`` record."""
        registry = registry if registry is not None else get_registry()
        self.emit({"type": "metrics", "metrics": registry.snapshot()})

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def install_tracing(path: Union[str, Path]) -> JsonlSink:
    """Start recording the default tracer to a JSONL file.

    Returns the sink; pass it to :func:`shutdown_tracing` when the run
    finishes to flush the metrics snapshot and close the file.
    """
    sink = JsonlSink(path)
    get_tracer().set_sink(sink)
    return sink


def shutdown_tracing(
    sink: JsonlSink, registry: Optional[MetricsRegistry] = None
) -> None:
    """Flush metrics, detach the sink from the default tracer, close."""
    sink.write_metrics(registry)
    if get_tracer().sink is sink:
        get_tracer().set_sink(None)
    sink.close()


def read_trace(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield the records of a trace file, skipping malformed lines."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


# ---------------------------------------------------------------------------
# Summary reducer
# ---------------------------------------------------------------------------


@dataclass
class StageSummary:
    """Aggregated wall-clock of one span name across a run."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float, status: str) -> None:
        self.count += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)
        if status != "ok":
            self.errors += 1


@dataclass
class TraceSummary:
    """Per-stage totals of one trace file."""

    stages: Dict[str, StageSummary] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    #: Last metrics snapshot seen in the file (name -> snapshot dict).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    n_spans: int = 0
    n_events: int = 0

    @property
    def wall_clock_s(self) -> float:
        """Total time inside top-level stages (depth-0 spans only)."""
        return self._depth0_total

    _depth0_total: float = 0.0

    def counter_value(self, name: str) -> float:
        """Value of a counter from the metrics snapshot (0 if absent)."""
        snap = self.metrics.get(name)
        if snap and snap.get("type") == "counter":
            return float(snap.get("value", 0.0))
        return 0.0


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Reduce a JSONL trace file into per-stage totals."""
    summary = TraceSummary()
    for record in read_trace(path):
        kind = record.get("type")
        if kind == "span":
            name = str(record.get("name", "?"))
            duration = float(record.get("dur_s", 0.0))
            stage = summary.stages.get(name)
            if stage is None:
                stage = summary.stages[name] = StageSummary(name)
            stage.add(duration, str(record.get("status", "ok")))
            summary.n_spans += 1
            if int(record.get("depth", 0)) == 0:
                summary._depth0_total += duration
        elif kind == "event":
            name = str(record.get("name", "?"))
            summary.events[name] = summary.events.get(name, 0) + 1
            summary.n_events += 1
        elif kind == "metrics":
            metrics = record.get("metrics")
            if isinstance(metrics, dict):
                summary.metrics = metrics
    return summary


def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:8.1f}s"
    if seconds >= 0.1:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def format_trace_report(summary: TraceSummary) -> str:
    """Human-readable per-stage breakdown of a trace summary."""
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append("trace report")
    lines.append("=" * 72)
    lines.append(
        f"spans: {summary.n_spans}, events: {summary.n_events}, "
        f"top-level wall clock: {summary.wall_clock_s:.3f} s"
    )
    if summary.stages:
        lines.append("")
        lines.append(
            f"{'stage':<32s} {'count':>7s} {'total':>10s} "
            f"{'mean':>10s} {'max':>10s}"
        )
        ordered = sorted(
            summary.stages.values(), key=lambda s: s.total_s, reverse=True
        )
        for stage in ordered:
            suffix = f"  ({stage.errors} errors)" if stage.errors else ""
            lines.append(
                f"{stage.name:<32s} {stage.count:>7d} "
                f"{_format_seconds(stage.total_s):>10s} "
                f"{_format_seconds(stage.mean_s):>10s} "
                f"{_format_seconds(stage.max_s):>10s}{suffix}"
            )
    if summary.events:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary.events):
            lines.append(f"  {name:<30s} {summary.events[name]:>7d}")
    hits = summary.counter_value("evaluator.cache_hits")
    misses = summary.counter_value("evaluator.cache_misses")
    persistent = summary.counter_value("evaluator.persistent_hits")
    if hits or misses or persistent:
        total = hits + misses + persistent
        rate = 100.0 * hits / total if total else 0.0
        lines.append("")
        lines.append(
            f"evaluator cache: {int(hits)} hits / {int(misses)} misses / "
            f"{int(persistent)} persistent-hits ({rate:.1f}% hit rate)"
        )
    atlas_hits = summary.counter_value("atlas.hits")
    atlas_misses = summary.counter_value("atlas.misses")
    atlas_replayed = summary.counter_value("atlas.replayed")
    atlas_seeds = summary.counter_value("atlas.warm_seeds")
    atlas_skipped = summary.counter_value("atlas.levels_skipped")
    if atlas_hits or atlas_misses or atlas_replayed or atlas_seeds:
        lines.append(
            f"design atlas: {int(atlas_hits)} hits / "
            f"{int(atlas_misses)} misses / "
            f"{int(atlas_replayed)} replayed / "
            f"{int(atlas_seeds)} warm-seeds "
            f"({int(atlas_skipped)} levels skipped)"
        )
    routed = summary.counter_value("cluster.requests")
    hedges = summary.counter_value("cluster.hedges")
    hedge_wins = summary.counter_value("cluster.hedge_wins")
    failovers = summary.counter_value("cluster.failovers")
    if routed or hedges or failovers:
        lines.append(
            f"cluster: {int(routed)} routed / "
            f"{int(hedges)} hedged ({int(hedge_wins)} hedge wins) / "
            f"{int(failovers)} failovers"
        )
    cpu_s = summary.counter_value("evaluator.cpu_s")
    wall_s = summary.counter_value("evaluator.wall_s")
    if cpu_s or wall_s:
        speedup = cpu_s / wall_s if wall_s > 0 else 1.0
        lines.append(
            f"evaluator time: cpu {cpu_s:.3f}s / wall {wall_s:.3f}s "
            f"({speedup:.2f}x parallel speedup)"
        )
    kernel_names = sorted(
        name[len("ber.kernel."):-len(".frames")]
        for name in summary.metrics
        if name.startswith("ber.kernel.") and name.endswith(".frames")
    )
    for kernel in kernel_names:
        frames = summary.counter_value(f"ber.kernel.{kernel}.frames")
        steps = summary.counter_value(f"ber.kernel.{kernel}.steps")
        decode_s = summary.counter_value(f"ber.kernel.{kernel}.decode_s")
        steps_per_s = steps / decode_s if decode_s > 0 else 0.0
        lines.append(
            f"kernel: {kernel} — {int(frames)} frames decoded in "
            f"{decode_s:.3f}s ({steps_per_s / 1e3:.1f}k trellis steps/s)"
        )
    power_priced = summary.counter_value("power.priced")
    if power_priced:
        shares = []
        for name in sorted(summary.metrics):
            if name.startswith("power.priced.f"):
                count = summary.counter_value(name)
                pct = 100.0 * count / power_priced if power_priced else 0.0
                shares.append(f"{name[len('power.priced.'):]}={pct:.0f}%")
        detail = f" ({', '.join(shares)})" if shares else ""
        lines.append(
            f"power: {int(power_priced)} evaluations energy-priced{detail}"
        )
    counters = {
        name: snap
        for name, snap in sorted(summary.metrics.items())
        if snap.get("type") == "counter"
        and name
        not in (
            "evaluator.cache_hits",
            "evaluator.cache_misses",
            "evaluator.persistent_hits",
            "evaluator.cpu_s",
            "evaluator.wall_s",
            "atlas.hits",
            "atlas.misses",
            "atlas.replayed",
            "atlas.warm_seeds",
            "atlas.levels_skipped",
        )
        and not name.startswith("ber.kernel.")
        and not name.startswith("cluster.")
        and not name.startswith("power.")
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, snap in counters.items():
            lines.append(f"  {name:<30s} {snap.get('value', 0):>12g}")
    histograms = {
        name: snap
        for name, snap in sorted(summary.metrics.items())
        if snap.get("type") == "histogram" and snap.get("count")
    }
    if histograms:
        lines.append("")
        lines.append("latency histograms:")
        for name, snap in histograms.items():
            count = int(snap.get("count", 0))
            total_s = float(snap.get("sum", 0.0))
            mean = total_s / count if count else 0.0
            lines.append(
                f"  {name:<30s} n={count:<7d} total={total_s:.3f}s "
                f"mean={mean * 1e3:.2f}ms max={float(snap.get('max') or 0.0) * 1e3:.2f}ms"
            )
    return "\n".join(lines)
