"""Counters, gauges, and fixed-bucket histograms.

A thin, zero-dependency metrics layer in the spirit of the Prometheus
client: named instruments live in a :class:`MetricsRegistry`, and a
process-wide default registry (:func:`get_registry`) collects the
library's own instrumentation — cache hit/miss counts, per-fidelity
evaluation latencies, frames simulated, schedules computed.

Instruments are cheap (one lock acquisition per update) so they stay on
even when tracing is off; ``snapshot()`` turns the registry into plain
dicts for export or assertions, and ``reset()`` clears it between runs.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can move both ways (e.g. current region depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


#: Default latency buckets (seconds): 100 us .. 30 s, roughly 1-3-10.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0
)


class Histogram:
    """Fixed-bucket histogram with cumulative-style bucket semantics.

    ``buckets`` are the *upper* edges; an observation lands in the first
    bucket whose edge is >= the value (edges are inclusive, matching
    Prometheus ``le`` semantics).  Values above the last edge land in
    the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if len(set(edges)) != len(edges):
            raise ValueError("histogram bucket edges must be distinct")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1 overflow
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[Optional[float], int]]:
        """(upper_edge, count) pairs; the ``None`` edge is overflow."""
        edges: List[Optional[float]] = list(self.buckets) + [None]
        return list(zip(edges, self._counts))

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Returns the upper edge of the bucket containing the quantile
        rank — an upper bound, like Prometheus ``histogram_quantile``
        without interpolation.  Observations in the overflow bucket
        answer with the exact observed maximum; an empty histogram
        answers 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for edge, count in zip(self.buckets, self._counts):
                cumulative += count
                if cumulative >= rank:
                    return edge
            return self._max if self._max is not None else self.buckets[-1]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "min": self._min,
            "max": self._max,
        }


class MetricsRegistry:
    """Named instruments, created on first use and process-visible."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if absent."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if absent."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created with ``buckets`` if absent."""
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def _get_or_create(self, name: str, cls) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def get(self, name: str) -> Optional[Any]:
        """The instrument called ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts, keyed by name."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self) -> None:
        """Drop every instrument (fresh counts on the next run)."""
        with self._lock:
            self._instruments.clear()


#: Process-wide default registry all library instrumentation uses.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _DEFAULT_REGISTRY
