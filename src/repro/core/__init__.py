"""The MetaCore methodology — the paper's primary contribution.

Four components (Sec. 1): problem formulation / optimization degrees of
freedom (:mod:`~repro.core.parameters`), objective functions and
constraints (:mod:`~repro.core.objectives`), the cost-evaluation engine
(:mod:`~repro.core.evaluation`), and the multiresolution design-space
search (:mod:`~repro.core.search`) with its supporting grid machinery,
interpolation, and Bayesian BER prediction.
"""

from repro.core.parameters import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Point,
    frozen_point,
)
from repro.core.objectives import (
    BERThresholdCurve,
    Constraint,
    DesignGoal,
    Direction,
    Objective,
)
from repro.core.evalcache import PersistentEvalCache, evaluator_fingerprint
from repro.core.evaluation import (
    CachingEvaluator,
    EvaluationLog,
    EvaluationRecord,
    Evaluator,
    FunctionEvaluator,
    TimedEvaluation,
)
from repro.core.parallel import ParallelEvaluator
from repro.core.grid import GridSample, Region
from repro.core.interpolate import (
    MetricInterpolator,
    idw_interpolate,
    point_coordinates,
)
from repro.core.bayes import (
    BayesianBERPredictor,
    Gaussian,
    observation_from_counts,
)
from repro.core.search import MetacoreSearch, SearchConfig, SearchResult
from repro.core.strategies import (
    STRATEGIES,
    EvolutionaryStrategy,
    SurrogateModel,
    SurrogateStrategy,
    select_lexicographic,
    select_weighted_sum,
    validate_strategy,
)
from repro.core.baselines import (
    ExhaustiveSearch,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core.pareto import dominates, pareto_front
from repro.core.sensitivity import (
    ParameterSensitivity,
    analyze_sensitivity,
    format_sensitivity_table,
)
from repro.core.batch import SpecificationSweep, SweepRow
from repro.core.report import (
    format_pareto_report,
    format_point,
    format_search_report,
    ranked_candidates,
)

__all__ = [
    "ContinuousParameter",
    "Correlation",
    "DesignSpace",
    "DiscreteParameter",
    "Point",
    "frozen_point",
    "BERThresholdCurve",
    "Constraint",
    "DesignGoal",
    "Direction",
    "Objective",
    "CachingEvaluator",
    "EvaluationLog",
    "EvaluationRecord",
    "Evaluator",
    "FunctionEvaluator",
    "ParallelEvaluator",
    "PersistentEvalCache",
    "TimedEvaluation",
    "evaluator_fingerprint",
    "GridSample",
    "Region",
    "MetricInterpolator",
    "idw_interpolate",
    "point_coordinates",
    "BayesianBERPredictor",
    "Gaussian",
    "observation_from_counts",
    "MetacoreSearch",
    "SearchConfig",
    "SearchResult",
    "STRATEGIES",
    "EvolutionaryStrategy",
    "SurrogateModel",
    "SurrogateStrategy",
    "select_lexicographic",
    "select_weighted_sum",
    "validate_strategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealing",
    "dominates",
    "pareto_front",
    "ParameterSensitivity",
    "analyze_sensitivity",
    "format_sensitivity_table",
    "SpecificationSweep",
    "SweepRow",
    "format_pareto_report",
    "format_point",
    "format_search_report",
    "ranked_candidates",
]
