"""Batch runs over specification sweeps.

The paper's result tables are sweeps: Table 3 runs the Viterbi search
over five (BER, throughput) specifications, Table 4 the IIR search over
seven sample periods.  This module packages that pattern — run a search
per specification, collect winners, averages over feasible candidates,
and reductions — as reusable library code with a text renderer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.search import SearchResult


@dataclass(frozen=True)
class SweepRow:
    """Outcome of one specification in a sweep."""

    label: str
    result: SearchResult
    #: Mean objective over all *feasible* candidates the search priced
    #: (the paper's "average case solution").
    average_objective: Optional[float]

    @property
    def feasible(self) -> bool:
        return self.result.feasible

    def best_objective(self, metric: str) -> Optional[float]:
        if self.result.best_metrics is None:
            return None
        value = self.result.best_metrics.get(metric)
        return None if value is None or math.isinf(value) else value

    def reduction_percent(self, metric: str) -> Optional[float]:
        """Best-vs-average improvement (Table 4's "Reduction %")."""
        best = self.best_objective(metric)
        if best is None or not self.average_objective:
            return None
        return 100.0 * (1.0 - best / self.average_objective)


@dataclass
class SpecificationSweep:
    """Run one search per specification and aggregate the outcomes.

    Parameters
    ----------
    runner:
        Maps a specification to a finished :class:`SearchResult` (e.g.
        ``lambda period: IIRMetaCore(IIRSpec.paper(period)).search()``).
    objective_metric:
        The metric averaged and reported (usually ``area_mm2``).
    feasibility_metric:
        The constraint metric identifying feasible log records
        (``spec_violation`` / ``ber_violation``); records with value 0
        and a finite objective count toward the average.
    """

    runner: Callable[[object], SearchResult]
    objective_metric: str = "area_mm2"
    feasibility_metric: str = "spec_violation"
    rows: List[SweepRow] = field(default_factory=list)

    def run(
        self,
        specifications: Sequence[object],
        labels: Optional[Sequence[str]] = None,
    ) -> List[SweepRow]:
        """Execute the sweep; rows accumulate on the instance too."""
        labels = list(labels) if labels else [str(s) for s in specifications]
        if len(labels) != len(specifications):
            raise ValueError("labels and specifications lengths differ")
        for label, specification in zip(labels, specifications):
            result = self.runner(specification)
            self.rows.append(
                SweepRow(
                    label=label,
                    result=result,
                    average_objective=self._average(result),
                )
            )
        return self.rows

    def _average(self, result: SearchResult) -> Optional[float]:
        values = [
            record.metrics[self.objective_metric]
            for record in result.log.records
            if record.metrics.get(self.feasibility_metric, math.inf) == 0.0
            and math.isfinite(record.metrics.get(self.objective_metric, math.inf))
        ]
        if not values:
            return None
        return sum(values) / len(values)

    # ------------------------------------------------------------------

    def format_table(
        self, extra_columns: Optional[Dict[str, Callable[[SweepRow], str]]] = None
    ) -> str:
        """Render the sweep as a Table-3/4 style text table."""
        extra_columns = extra_columns or {}
        header = (
            f"{'spec':>16s} {'feasible':>9s} {'best':>9s} {'avg':>9s} "
            f"{'red %':>6s}"
        )
        for name in extra_columns:
            header += f" {name:>14s}"
        lines = [header]
        for row in self.rows:
            best = row.best_objective(self.objective_metric)
            reduction = row.reduction_percent(self.objective_metric)
            line = (
                f"{row.label:>16s} "
                f"{('yes' if row.feasible else 'NO'):>9s} "
                f"{(f'{best:.2f}' if best is not None else '-'):>9s} "
                f"{(f'{row.average_objective:.2f}' if row.average_objective else '-'):>9s} "
                f"{(f'{reduction:.1f}' if reduction is not None else '-'):>6s}"
            )
            for renderer in extra_columns.values():
                line += f" {renderer(row):>14s}"
            lines.append(line)
        return "\n".join(lines)
