"""Cost-evaluation engine plumbing (paper component *iii*).

Evaluators map a design point to a metrics record at a chosen
*fidelity*: the multiresolution search evaluates coarse grids with
cheap, low-accuracy estimates ("simulation times kept short", Sec. 4.4)
and re-evaluates surviving candidates at higher fidelity on finer
grids.  This module defines the evaluator protocol (including the
``evaluate_many`` batch entry point the parallel layer accelerates), a
cache that never pays twice for the same (point, fidelity) pair —
in-memory within a run and, with a
:class:`~repro.core.evalcache.PersistentEvalCache` attached, on disk
across runs — and an evaluation log the search and the experiment
reports both read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.evalcache import PersistentEvalCache, evaluator_fingerprint
from repro.core.parameters import Point, frozen_point
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer

Metrics = Dict[str, float]


class Evaluator(Protocol):
    """Anything that can price a design point at a given fidelity.

    Evaluators *may* additionally provide:

    - ``evaluate_many(points, fidelity) -> List[Metrics]`` (and the
      richer ``evaluate_many_timed``) to price a batch at once — the
      :class:`~repro.core.parallel.ParallelEvaluator` implements these
      over a process pool; anything without them is batched serially.
    - ``fingerprint() -> str`` identifying the exact evaluation
      behavior (seed, budgets, specification, code version) for the
      persistent cross-run cache.
    """

    #: Highest meaningful fidelity level (0 = cheapest estimate).
    max_fidelity: int

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        """Return the metrics of ``point`` at the given fidelity."""
        ...


@dataclass(frozen=True)
class TimedEvaluation:
    """One computed evaluation with its cost attribution."""

    metrics: Metrics
    #: CPU seconds spent inside the evaluator (in whatever process ran it).
    elapsed_s: float
    #: PID of the worker process that priced the point; None = in-process.
    worker: Optional[int] = None


def evaluate_serially_timed(
    evaluator: Evaluator, points: Sequence[Point], fidelity: int
) -> List[TimedEvaluation]:
    """Price a batch one point at a time in this process, with timing."""
    results: List[TimedEvaluation] = []
    for point in points:
        with get_tracer().span("evaluate", fidelity=fidelity):
            start = time.perf_counter()
            metrics = evaluator.evaluate(point, fidelity)
            elapsed = time.perf_counter() - start
        results.append(TimedEvaluation(metrics=dict(metrics), elapsed_s=elapsed))
    return results


def evaluate_many_timed(
    evaluator: Evaluator, points: Sequence[Point], fidelity: int
) -> List[TimedEvaluation]:
    """Batch entry point: use the evaluator's own batching if it has one."""
    hook = getattr(evaluator, "evaluate_many_timed", None)
    if callable(hook):
        return hook(points, fidelity)
    return evaluate_serially_timed(evaluator, points, fidelity)


@dataclass(frozen=True)
class EvaluationRecord:
    """One priced design point."""

    point: Tuple[Tuple[str, object], ...]
    fidelity: int
    metrics: Mapping[str, float]
    elapsed_s: float = 0.0

    def as_point(self) -> Point:
        return dict(self.point)

    def __str__(self) -> str:
        point = ", ".join(f"{k}={v}" for k, v in self.point)
        metrics = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.metrics.items()))
        return f"[fid {self.fidelity}] {{{point}}} -> {{{metrics}}}"


@dataclass
class EvaluationLog:
    """Every evaluation a search performed, in order.

    ``total_time_s`` sums per-evaluation CPU seconds; with parallel
    workers those overlap, so ``wall_time_s`` separately accumulates
    the caller-observed wall-clock per evaluation batch.  Their ratio
    is the realized parallel speedup.
    """

    records: List[EvaluationRecord] = field(default_factory=list)
    #: Wall-clock seconds the caller spent waiting on evaluations.
    wall_time_s: float = 0.0

    def append(self, record: EvaluationRecord) -> None:
        self.records.append(record)

    def add_wall_time(self, seconds: float) -> None:
        self.wall_time_s += max(0.0, seconds)

    @property
    def n_evaluations(self) -> int:
        return len(self.records)

    @property
    def total_time_s(self) -> float:
        """Summed per-evaluation CPU seconds (exceeds wall when parallel)."""
        return sum(r.elapsed_s for r in self.records)

    @property
    def cpu_time_s(self) -> float:
        """Alias of :attr:`total_time_s`, named for what it measures."""
        return self.total_time_s

    def by_fidelity(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.fidelity] = counts.get(record.fidelity, 0) + 1
        return counts

    def time_by_fidelity(self) -> Dict[int, float]:
        """Evaluator CPU seconds spent per fidelity level."""
        totals: Dict[int, float] = {}
        for record in self.records:
            totals[record.fidelity] = (
                totals.get(record.fidelity, 0.0) + record.elapsed_s
            )
        return totals

    def unique_points(self) -> int:
        return len({record.point for record in self.records})


class CachingEvaluator:
    """Memoizing wrapper around an evaluator.

    A point evaluated at fidelity ``f`` is never recomputed at any
    fidelity ``<= f`` — a lower-fidelity request is answered from the
    higher-fidelity result, which is at least as accurate.  With a
    :class:`~repro.core.evalcache.PersistentEvalCache` attached the
    same rule extends across process runs, keyed by the inner
    evaluator's fingerprint.

    Hits and misses are observable: the :class:`EvaluationLog` records
    only *computed* evaluations, while ``cache_hits``/``cache_misses``/
    ``persistent_hits`` count every *request*, so ``log.n_evaluations``
    no longer silently conflates the two.  The same counts feed the
    process-wide metrics registry (``evaluator.cache_hits`` /
    ``evaluator.cache_misses`` / ``evaluator.cache_upgrades`` /
    ``evaluator.persistent_hits``) along with per-fidelity latency
    histograms ``evaluator.latency_s.fid<level>`` and the
    ``evaluator.cpu_s`` / ``evaluator.wall_s`` time counters.

    All bookkeeping is lock-guarded: batch results may arrive from
    executor callbacks on other threads when this wrapper fronts the
    parallel evaluation path.
    """

    def __init__(
        self,
        inner: Evaluator,
        log: Optional[EvaluationLog] = None,
        store: Optional[PersistentEvalCache] = None,
    ) -> None:
        self.inner = inner
        self.log = log if log is not None else EvaluationLog()
        self.store = store
        self._fingerprint = (
            evaluator_fingerprint(inner) if store is not None else None
        )
        self._cache: Dict[Tuple, Tuple[int, Metrics]] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._upgrades = 0
        self._persistent_hits = 0

    @property
    def max_fidelity(self) -> int:
        return self.inner.max_fidelity

    @property
    def cache_hits(self) -> int:
        """Requests answered from the in-memory cache (no computation)."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Requests that ran the inner evaluator (includes upgrades)."""
        return self._misses

    @property
    def cache_upgrades(self) -> int:
        """Misses that recomputed a cached point at a higher fidelity."""
        return self._upgrades

    @property
    def persistent_hits(self) -> int:
        """Requests answered from the on-disk cross-run cache."""
        return self._persistent_hits

    def preload(
        self, key: Tuple, fidelity: int, metrics: Mapping[str, float]
    ) -> bool:
        """Seed the in-memory cache with an externally stored evaluation.

        The warm-start path of the design atlas replays a previous
        run's records through here before the search begins.  Preloaded
        entries answer requests like any cached result but touch
        neither the log (nothing was computed) nor the hit/miss
        counters (nothing was requested yet).  Returns True when the
        entry was installed, False when an equal-or-higher-fidelity
        record is already cached.
        """
        with self._lock:
            existing = self._cache.get(key)
            if existing is not None and existing[0] >= int(fidelity):
                return False
            self._cache[key] = (int(fidelity), dict(metrics))
            return True

    def cached_records(self) -> List[Tuple[Tuple, int, Metrics]]:
        """Snapshot of the in-memory cache as (key, fidelity, metrics).

        Insertion-ordered (preloads first, then computed batches), so
        consumers — the surrogate strategy harvests these as training
        samples — see a deterministic sequence.
        """
        with self._lock:
            return [
                (key, fidelity, dict(metrics))
                for key, (fidelity, metrics) in self._cache.items()
            ]

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self.evaluate_many([point], fidelity)[0]

    def evaluate_many(
        self, points: Sequence[Point], fidelity: int
    ) -> List[Metrics]:
        """Price a batch of points; results align with ``points`` order.

        Cached points (in-memory or persistent) are answered without
        computation; the remaining misses go to the inner evaluator in
        one batch, which the parallel layer may fan out over worker
        processes.
        """
        registry = get_registry()
        results: List[Optional[Metrics]] = [None] * len(points)
        # key -> indices still waiting on the computed result.
        pending: Dict[Tuple, List[int]] = {}
        pending_points: List[Point] = []
        with self._lock:
            for index, point in enumerate(points):
                key = frozen_point(point)
                cached = self._cache.get(key)
                if cached is not None and cached[0] >= fidelity:
                    self._hits += 1
                    registry.counter("evaluator.cache_hits").inc()
                    results[index] = cached[1]
                    continue
                if key in pending:  # duplicate miss within this batch
                    self._hits += 1
                    registry.counter("evaluator.cache_hits").inc()
                    pending[key].append(index)
                    continue
                stored = self._store_lookup(key, fidelity)
                if stored is not None:
                    stored_fidelity, metrics = stored
                    self._persistent_hits += 1
                    registry.counter("evaluator.persistent_hits").inc()
                    self._cache[key] = (stored_fidelity, metrics)
                    results[index] = metrics
                    continue
                self._misses += 1
                registry.counter("evaluator.cache_misses").inc()
                if cached is not None:
                    self._upgrades += 1
                    registry.counter("evaluator.cache_upgrades").inc()
                pending[key] = [index]
                pending_points.append(dict(point))
        if pending_points:
            self._compute_batch(pending_points, pending, fidelity, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _store_lookup(
        self, key: Tuple, fidelity: int
    ) -> Optional[Tuple[int, Metrics]]:
        if self.store is None:
            return None
        return self.store.get(self._fingerprint, key, fidelity)

    def _compute_batch(
        self,
        points: List[Point],
        pending: Dict[Tuple, List[int]],
        fidelity: int,
        results: List[Optional[Metrics]],
    ) -> None:
        """Run the inner evaluator on the cache misses and record them."""
        registry = get_registry()
        tracer = get_tracer()
        span_ctx = (
            tracer.span("evaluate.batch", points=len(points), fidelity=fidelity)
            if len(points) > 1
            else None
        )
        wall_start = time.perf_counter()
        if span_ctx is not None:
            with span_ctx as batch_span:
                timed = evaluate_many_timed(self.inner, points, fidelity)
                wall_s = time.perf_counter() - wall_start
                cpu_s = sum(t.elapsed_s for t in timed)
                by_worker: Dict[str, float] = {}
                for t in timed:
                    if t.worker is not None:
                        label = f"pid{t.worker}"
                        by_worker[label] = by_worker.get(label, 0.0) + t.elapsed_s
                batch_span.set(
                    wall_s=round(wall_s, 6),
                    cpu_s=round(cpu_s, 6),
                    workers=len(by_worker),
                    **{f"worker.{k}.cpu_s": round(v, 6) for k, v in by_worker.items()},
                )
                if by_worker:
                    registry.counter("evaluator.parallel_points").inc(len(timed))
        else:
            timed = evaluate_many_timed(self.inner, points, fidelity)
            wall_s = time.perf_counter() - wall_start
            cpu_s = sum(t.elapsed_s for t in timed)
        with self._lock:
            self.log.add_wall_time(wall_s)
            registry.counter("evaluator.wall_s").inc(wall_s)
            registry.counter("evaluator.cpu_s").inc(cpu_s)
            histogram = registry.histogram(f"evaluator.latency_s.fid{fidelity}")
            for point, evaluation in zip(points, timed):
                key = frozen_point(point)
                metrics = dict(evaluation.metrics)
                histogram.observe(evaluation.elapsed_s)
                self._cache[key] = (fidelity, metrics)
                if self.store is not None:
                    self.store.put(
                        self._fingerprint,
                        key,
                        fidelity,
                        metrics,
                        evaluation.elapsed_s,
                    )
                self.log.append(
                    EvaluationRecord(
                        point=key,
                        fidelity=fidelity,
                        metrics=dict(metrics),
                        elapsed_s=evaluation.elapsed_s,
                    )
                )
                for index in pending[key]:
                    results[index] = metrics


class FunctionEvaluator:
    """Adapter turning a plain callable into an :class:`Evaluator`.

    Handy for tests and for user-defined MetaCores whose cost model is
    a single function of the design point.
    """

    def __init__(
        self,
        func: Callable[[Point, int], Metrics],
        max_fidelity: int = 0,
    ) -> None:
        self._func = func
        self.max_fidelity = max_fidelity

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self._func(point, fidelity)
