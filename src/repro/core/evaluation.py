"""Cost-evaluation engine plumbing (paper component *iii*).

Evaluators map a design point to a metrics record at a chosen
*fidelity*: the multiresolution search evaluates coarse grids with
cheap, low-accuracy estimates ("simulation times kept short", Sec. 4.4)
and re-evaluates surviving candidates at higher fidelity on finer
grids.  This module defines the evaluator protocol, a cache that never
pays twice for the same (point, fidelity) pair, and an evaluation log
the search and the experiment reports both read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Tuple

from repro.core.parameters import Point, frozen_point
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer

Metrics = Dict[str, float]


class Evaluator(Protocol):
    """Anything that can price a design point at a given fidelity."""

    #: Highest meaningful fidelity level (0 = cheapest estimate).
    max_fidelity: int

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        """Return the metrics of ``point`` at the given fidelity."""
        ...


@dataclass(frozen=True)
class EvaluationRecord:
    """One priced design point."""

    point: Tuple[Tuple[str, object], ...]
    fidelity: int
    metrics: Mapping[str, float]
    elapsed_s: float = 0.0

    def as_point(self) -> Point:
        return dict(self.point)

    def __str__(self) -> str:
        point = ", ".join(f"{k}={v}" for k, v in self.point)
        metrics = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.metrics.items()))
        return f"[fid {self.fidelity}] {{{point}}} -> {{{metrics}}}"


@dataclass
class EvaluationLog:
    """Every evaluation a search performed, in order."""

    records: List[EvaluationRecord] = field(default_factory=list)

    def append(self, record: EvaluationRecord) -> None:
        self.records.append(record)

    @property
    def n_evaluations(self) -> int:
        return len(self.records)

    @property
    def total_time_s(self) -> float:
        return sum(r.elapsed_s for r in self.records)

    def by_fidelity(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.fidelity] = counts.get(record.fidelity, 0) + 1
        return counts

    def time_by_fidelity(self) -> Dict[int, float]:
        """Evaluator wall-clock seconds spent per fidelity level."""
        totals: Dict[int, float] = {}
        for record in self.records:
            totals[record.fidelity] = (
                totals.get(record.fidelity, 0.0) + record.elapsed_s
            )
        return totals

    def unique_points(self) -> int:
        return len({record.point for record in self.records})


class CachingEvaluator:
    """Memoizing wrapper around an evaluator.

    A point evaluated at fidelity ``f`` is never recomputed at any
    fidelity ``<= f`` — a lower-fidelity request is answered from the
    higher-fidelity result, which is at least as accurate.

    Hits and misses are observable: the :class:`EvaluationLog` records
    only *computed* evaluations, while ``cache_hits``/``cache_misses``
    count every *request*, so ``log.n_evaluations`` no longer silently
    conflates the two.  The same counts feed the process-wide metrics
    registry (``evaluator.cache_hits`` / ``evaluator.cache_misses`` /
    ``evaluator.cache_upgrades``) along with a per-fidelity latency
    histogram ``evaluator.latency_s.fid<level>``.
    """

    def __init__(self, inner: Evaluator, log: Optional[EvaluationLog] = None) -> None:
        self.inner = inner
        self.log = log if log is not None else EvaluationLog()
        self._cache: Dict[Tuple, Tuple[int, Metrics]] = {}
        self._hits = 0
        self._misses = 0
        self._upgrades = 0

    @property
    def max_fidelity(self) -> int:
        return self.inner.max_fidelity

    @property
    def cache_hits(self) -> int:
        """Requests answered from the cache (no computation)."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Requests that ran the inner evaluator (includes upgrades)."""
        return self._misses

    @property
    def cache_upgrades(self) -> int:
        """Misses that recomputed a cached point at a higher fidelity."""
        return self._upgrades

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        registry = get_registry()
        key = frozen_point(point)
        cached = self._cache.get(key)
        if cached is not None and cached[0] >= fidelity:
            self._hits += 1
            registry.counter("evaluator.cache_hits").inc()
            return cached[1]
        self._misses += 1
        registry.counter("evaluator.cache_misses").inc()
        if cached is not None:
            self._upgrades += 1
            registry.counter("evaluator.cache_upgrades").inc()
        with get_tracer().span("evaluate", fidelity=fidelity):
            start = time.perf_counter()
            metrics = self.inner.evaluate(point, fidelity)
            elapsed = time.perf_counter() - start
        registry.histogram(f"evaluator.latency_s.fid{fidelity}").observe(elapsed)
        self._cache[key] = (fidelity, metrics)
        self.log.append(
            EvaluationRecord(
                point=key,
                fidelity=fidelity,
                metrics=dict(metrics),
                elapsed_s=elapsed,
            )
        )
        return metrics


class FunctionEvaluator:
    """Adapter turning a plain callable into an :class:`Evaluator`.

    Handy for tests and for user-defined MetaCores whose cost model is
    a single function of the design point.
    """

    def __init__(
        self,
        func: Callable[[Point, int], Metrics],
        max_fidelity: int = 0,
    ) -> None:
        self._func = func
        self.max_fidelity = max_fidelity

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self._func(point, fidelity)
