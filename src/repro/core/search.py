"""Multiresolution design-space search (paper Sec. 4.4, Fig. 6).

The algorithm follows the paper's pseudo code:

1. evaluate every point of a sparse grid over the current region
   (cheap, low-fidelity cost evaluations — short simulations);
2. rank the points (feasibility first, then the primary objective;
   probabilistic BER measurements are regularized through the Bayesian
   neighbor predictor before ranking);
3. extract the sub-regions enclosed by the most promising points'
   grid neighbors (``Refine_Grid``);
4. recurse into each sub-region with a finer grid and more accurate,
   longer-running evaluations, until the maximum search resolution.

The search is greedy by design — the paper justifies this with speed
and simplicity, and notes result quality can be traded for run time by
relaxing the pruning; the ``refine_top_k`` and fidelity schedule knobs
expose exactly that trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cmp_to_key
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.bayes import BayesianBERPredictor
from repro.core.evalcache import PersistentEvalCache
from repro.core.evaluation import (
    CachingEvaluator,
    EvaluationLog,
    EvaluationRecord,
    Evaluator,
    Metrics,
)
from repro.core.grid import DEFAULT_MAX_GRID_POINTS, GridSample, Region
from repro.core.objectives import DesignGoal
from repro.core.parameters import DesignSpace, Point, frozen_point
from repro.errors import InfeasibleSpecError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer


@dataclass
class SearchConfig:
    """Knobs of the multiresolution search."""

    #: Recursion depth: resolution levels 0 .. max_resolution.
    max_resolution: int = 2
    #: Resolution added per recursion (Fig. 6's Resolution_Increment).
    resolution_increment: int = 1
    #: Evaluation budget per grid (the paper's "up to 256 instances").
    max_grid_points: int = DEFAULT_MAX_GRID_POINTS
    #: Number of promising points whose regions are refined per level.
    refine_top_k: int = 3
    #: Use the Bayesian neighbor predictor for probabilistic metrics.
    use_bayesian_ber: bool = True
    #: Re-evaluate the winner at the evaluator's top fidelity.
    confirm_best: bool = True
    #: How many top-ranked candidates the confirmation pass re-prices;
    #: with noisy cheap evaluations the cheapest *apparent* winner is
    #: not always the true one.
    confirm_top_k: int = 3
    #: Exploration strategy: "grid" (the paper's multiresolution
    #: funnel), "evolve" (seeded tournament selection + mutation), or
    #: "surrogate" (model-ranked pruning of grid rounds).  See
    #: :mod:`repro.core.strategies` and ``docs/search-strategies.md``.
    strategy: str = "grid"
    #: Master seed for strategy-internal randomness (the evolutionary
    #: mode); every draw derives from it deterministically.
    strategy_seed: int = 20010618
    #: Offspring bred (and priced) per evolutionary generation.
    evolve_population: int = 12
    #: Evolutionary generations after the coarse-grid seeding round.
    evolve_generations: int = 5
    #: Fraction of each refined grid the surrogate strategy evaluates
    #: (model-ranked best first; anchors are always kept).  Lower
    #: fractions save more evaluations but may prune the winning basin
    #: on rugged landscapes — raise toward 0.5 (or warm-start from an
    #: atlas) when exact grid parity matters more than evaluations.
    surrogate_keep: float = 0.35


@dataclass
class SearchResult:
    """Outcome of a search run."""

    best: Optional[EvaluationRecord]
    feasible: bool
    log: EvaluationLog
    regions_explored: int = 0
    method: str = "multiresolution"
    #: Evaluator-cache accounting (filled by :class:`MetacoreSearch`).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Requests answered by the on-disk cross-run cache (warm starts).
    persistent_hits: int = 0
    #: Frontier designs injected from the design atlas as fine-level
    #: candidates (0 when no atlas was attached or nothing matched).
    atlas_seeds: int = 0
    #: Prior-run evaluations replayed from the atlas into the cache.
    atlas_replayed: int = 0
    #: Coarse levels the injected seeds bypassed (seeds enter directly
    #: at the deepest resolution level instead of surviving the funnel).
    atlas_levels_skipped: int = 0
    #: Which exploration strategy produced this result.
    strategy: str = "grid"
    #: Candidate evaluations the strategy avoided paying for (pruned by
    #: the surrogate model, or answered from cache for evolve; 0 for
    #: the plain grid funnel).
    evals_saved: int = 0

    @property
    def best_point(self) -> Optional[Point]:
        """The winning design point (None if nothing was evaluated)."""
        return self.best.as_point() if self.best else None

    @property
    def best_metrics(self) -> Optional[Metrics]:
        """The winner's (confirmed) metrics record."""
        return self.best.metrics if self.best else None

    def require_feasible(self) -> EvaluationRecord:
        """The winning record, or :class:`InfeasibleSpecError`."""
        if self.best is None or not self.feasible:
            raise InfeasibleSpecError(
                "no design point satisfies the specification"
            )
        return self.best

    def summary(self) -> str:
        """Human-readable one-paragraph run summary."""
        lines = [
            f"method: {self.method}",
            f"evaluations: {self.log.n_evaluations} "
            f"(by fidelity {self.log.by_fidelity()})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            f" / {self.persistent_hits} persistent-hits",
            f"time: cpu {self.log.cpu_time_s:.3f}s"
            f" / wall {self.log.wall_time_s:.3f}s",
            f"regions explored: {self.regions_explored}",
            f"feasible: {self.feasible}",
        ]
        if self.strategy != "grid":
            lines.insert(
                1,
                f"strategy: {self.strategy} "
                f"({self.evals_saved} evaluations saved)",
            )
        if self.atlas_seeds or self.atlas_replayed or self.atlas_levels_skipped:
            lines.insert(
                3,
                f"atlas: {self.atlas_seeds} seeds"
                f" / {self.atlas_replayed} replayed"
                f" / {self.atlas_levels_skipped} levels-skipped",
            )
        if self.best is not None:
            lines.append(f"best: {self.best}")
        return "\n".join(lines)


#: Optional point repair hook: canonicalizes dependent parameters (e.g.
#: clamps M to 2**(K-1)) so every grid point is evaluable.
PointNormalizer = Callable[[Point], Point]


class MetacoreSearch:
    """The recursive multiresolution search of Fig. 6.

    ``atlas`` optionally attaches a design-atlas seed source (any
    object with ``replay()`` and ``seeds()``, see
    :class:`repro.atlas.similarity.AtlasSeeder`).  Replayed records
    from an identical prior scenario answer grid rounds for free;
    frontier designs of *similar* scenarios are injected as fine-level
    candidates after the cold recursion, and the confirmation pass
    takes the better of the cold-only and the seeded walk — so a
    warm-started search is never worse than the cold search at the
    same budget.
    """

    def __init__(
        self,
        space: DesignSpace,
        goal: DesignGoal,
        evaluator: Evaluator,
        config: Optional[SearchConfig] = None,
        normalizer: Optional[PointNormalizer] = None,
        store: Optional[PersistentEvalCache] = None,
        atlas: Optional[object] = None,
    ) -> None:
        self.space = space
        self.goal = goal
        self.config = config or SearchConfig()
        self.normalizer = normalizer
        self.log = EvaluationLog()
        self.evaluator = CachingEvaluator(evaluator, self.log, store=store)
        self.predictor = BayesianBERPredictor(space)
        self.atlas = atlas
        self._ranked: Dict[Tuple, Metrics] = {}
        self._regions_seen: Set[Tuple] = set()

    # ------------------------------------------------------------------

    #: Strategy name -> SearchResult.method label.
    _METHOD_LABELS = {
        "grid": "multiresolution",
        "evolve": "evolutionary",
        "surrogate": "surrogate",
    }

    def run(self) -> SearchResult:
        """Execute the full search and return the best design found."""
        from repro.core.strategies import (
            EvolutionaryStrategy,
            SurrogateStrategy,
            validate_strategy,
        )

        strategy = validate_strategy(self.config.strategy)
        self._ranked.clear()
        self._regions_seen.clear()
        registry = get_registry()
        evals_saved = 0
        with get_tracer().span("search.run", strategy=strategy) as run_span:
            atlas_replayed = self._replay_atlas()
            if strategy == "evolve":
                evals_saved = EvolutionaryStrategy(self).explore()
            elif strategy == "surrogate":
                evals_saved = SurrogateStrategy(self).explore()
            else:
                self._search_region(Region.full(self.space), level=0)
            # Seeds are injected *after* the cold recursion: the
            # Bayesian predictor's state is insertion-order dependent,
            # so evaluating seeds first would perturb the cold
            # candidates' regularized metrics and void the differential
            # guarantee below.
            cold_ranked = dict(self._ranked)
            atlas_seeds = levels_skipped = 0
            if self.atlas is not None:
                atlas_seeds, levels_skipped = self._inject_seeds()
                registry.counter("atlas.warm_seeds").inc(atlas_seeds)
                registry.counter("atlas.levels_skipped").inc(levels_skipped)
            with get_tracer().span("search.confirm") as confirm_span:
                before = self.log.n_evaluations
                best_key, metrics = self._confirm_winner()
                if atlas_seeds:
                    # Differential guarantee: re-run the walk over the
                    # cold candidates alone (their ranked metrics are
                    # bit-identical to a cold run's) and keep the
                    # better confirmed winner.  Shared max-fidelity
                    # cache entries make the second walk cheap.
                    cold_key, cold_metrics = self._confirm_winner(
                        ranked=cold_ranked
                    )
                    if cold_key is not None and (
                        metrics is None
                        or self.goal.compare(cold_metrics, metrics) < 0
                    ):
                        best_key, metrics = cold_key, cold_metrics
                confirm_span.set(evaluations=self.log.n_evaluations - before)
            best: Optional[EvaluationRecord] = None
            feasible = False
            if best_key is not None and metrics is not None:
                best = EvaluationRecord(
                    point=best_key,
                    fidelity=self.evaluator.max_fidelity
                    if self.config.confirm_best
                    else 0,
                    metrics=dict(metrics),
                )
                feasible = self.goal.is_feasible(metrics)
            run_span.set(
                evaluations=self.log.n_evaluations,
                regions=len(self._regions_seen),
                cache_hits=self.evaluator.cache_hits,
                cache_misses=self.evaluator.cache_misses,
                persistent_hits=self.evaluator.persistent_hits,
                atlas_seeds=atlas_seeds,
                atlas_replayed=atlas_replayed,
                feasible=feasible,
                evals_saved=evals_saved,
            )
        return SearchResult(
            best=best,
            feasible=feasible,
            log=self.log,
            regions_explored=len(self._regions_seen),
            method=self._METHOD_LABELS[strategy],
            cache_hits=self.evaluator.cache_hits,
            cache_misses=self.evaluator.cache_misses,
            persistent_hits=self.evaluator.persistent_hits,
            atlas_seeds=atlas_seeds,
            atlas_replayed=atlas_replayed,
            atlas_levels_skipped=levels_skipped,
            strategy=strategy,
            evals_saved=evals_saved,
        )

    # -- atlas warm start ------------------------------------------------

    def _replay_atlas(self) -> int:
        """Preload the exact scenario's stored records into the cache."""
        if self.atlas is None:
            return 0
        replayed = 0
        for key, fidelity, metrics in self.atlas.replay():
            if self.evaluator.preload(key, fidelity, metrics):
                replayed += 1
        if replayed:
            get_registry().counter("atlas.replayed").inc(replayed)
        return replayed

    def _inject_seeds(self) -> Tuple[int, int]:
        """Price near-neighbor frontier designs as fine-level candidates.

        Each seed skips the coarse funnel entirely: it is evaluated at
        the deepest level's fidelity and competes directly in the
        confirmation pass.  Seeds from a *different* (but similar)
        scenario additionally refine the region around their nearest
        coarse grid point at the deepest level — the atlas neighbor
        already paid for the coarse exploration that would have located
        that region.
        """
        deep_level = max(0, self.config.max_resolution)
        fidelity = self._fidelity_for_level(deep_level)
        points: List[Point] = []
        exact_flags: List[bool] = []
        seen: Set[Tuple] = set()
        for raw_point, exact in self.atlas.seeds():
            try:
                point = self._normalize(dict(raw_point))
                self.space.validate_point(point)
            except Exception:
                continue  # seed from an incompatible space slice
            key = frozen_point(point)
            if key in seen:
                continue
            seen.add(key)
            points.append(point)
            exact_flags.append(bool(exact))
        if not points:
            return 0, 0
        with get_tracer().span(
            "search.seed", seeds=len(points), fidelity=fidelity
        ):
            evaluated = self.evaluator.evaluate_many(points, fidelity)
            for point, raw_metrics in zip(points, evaluated):
                metrics = self._apply_bayes(point, dict(raw_metrics))
                self._record_ranked(frozen_point(point), metrics)
            full = Region.full(self.space)
            grid = full.grid(0, self.config.max_grid_points)
            for point, exact in zip(points, exact_flags):
                if exact:
                    continue  # its own frontier is already refined
                anchor = self._closest_grid_point(point, grid)
                if anchor is None:
                    continue
                try:
                    region = full.refine_around(anchor, grid.samples)
                except Exception:
                    continue
                self._search_region(region, deep_level)
        return len(points), len(points) * deep_level

    def _confirm_winner(
        self, ranked: Optional[Dict[Tuple, Metrics]] = None
    ) -> Tuple[Optional[Tuple], Optional[Metrics]]:
        """Re-price the top-ranked candidates at full fidelity.

        Cheap evaluations rank; expensive ones decide.  The top
        ``confirm_top_k`` candidates by the search's (possibly noisy)
        ranking are re-evaluated at the evaluator's highest fidelity
        and compared on the confirmed numbers.  ``ranked`` restricts
        the walk to an alternative candidate pool (the atlas warm
        start's cold-only differential pass).
        """
        if ranked is None:
            ranked = self._ranked
        if not ranked:
            return None, None
        ranked_keys = sorted(
            ranked,
            key=cmp_to_key(
                lambda a, b: self.goal.compare(ranked[a], ranked[b])
            ),
        )
        if not self.config.confirm_best:
            key = ranked_keys[0]
            return key, ranked[key]
        best_key: Optional[Tuple] = None
        best_metrics: Optional[Metrics] = None
        top_k = max(1, self.config.confirm_top_k)
        # The first top_k confirmations always happen — batch them so a
        # parallel evaluator overlaps the expensive full-fidelity runs.
        # The loop below then answers them from the cache; running this
        # prefetch unconditionally keeps the cache counters (and thus
        # the SearchResult) identical between serial and parallel modes.
        self.evaluator.evaluate_many(
            [dict(key) for key in ranked_keys[:top_k]],
            self.evaluator.max_fidelity,
        )
        # When the apparent winners turn out infeasible on confirmation
        # (noisy cheap estimates near a constraint boundary), keep
        # walking the ranked list a while before giving up — but only
        # while the misses are *near* misses; grossly infeasible
        # confirmations mean the spec is out of reach and further
        # expensive confirmations are wasted.
        extended_cap = max(top_k, 4 * top_k)
        near_miss_violation = 0.5
        for index, key in enumerate(ranked_keys):
            if index >= top_k:
                if best_metrics is not None and self.goal.is_feasible(
                    best_metrics
                ):
                    break
                if index >= extended_cap:
                    break
                if (
                    best_metrics is not None
                    and self.goal.total_violation(best_metrics)
                    > near_miss_violation
                ):
                    break
            metrics = self.evaluator.evaluate(
                dict(key), self.evaluator.max_fidelity
            )
            if best_metrics is None or self.goal.compare(metrics, best_metrics) < 0:
                best_key, best_metrics = key, metrics
        return best_key, best_metrics

    # ------------------------------------------------------------------

    def _fidelity_for_level(self, level: int) -> int:
        return min(level, self.evaluator.max_fidelity)

    def _normalize(self, point: Point) -> Point:
        return self.normalizer(point) if self.normalizer else point

    def _evaluate_grid(
        self, grid: GridSample, fidelity: int
    ) -> List[Tuple[Point, Metrics]]:
        """Evaluate a grid, applying the Bayesian BER regularization.

        The whole grid round is handed to the evaluator as one batch —
        grid evaluations are independent (Sec. 4.4), so a parallel
        evaluator can fan them out over worker processes.  Bayesian
        regularization then runs in grid order, which keeps the
        predictor's state (and therefore the search) identical between
        serial and parallel runs.
        """
        points: List[Point] = []
        seen: Set[Tuple] = set()
        for raw_point in grid.points:
            point = self._normalize(dict(raw_point))
            key = frozen_point(point)
            if key in seen:
                continue  # normalization may collapse grid points
            seen.add(key)
            points.append(point)
        evaluated = self.evaluator.evaluate_many(points, fidelity)
        results: List[Tuple[Point, Metrics]] = []
        for point, raw_metrics in zip(points, evaluated):
            metrics = self._apply_bayes(point, dict(raw_metrics))
            self._record_ranked(frozen_point(point), metrics)
            results.append((point, metrics))
        return results

    def _apply_bayes(self, point: Point, metrics: Dict[str, float]) -> Dict[str, float]:
        """Replace a noisy short-simulation BER with its posterior.

        Evaluators publish Monte-Carlo counts (``ber_errors`` /
        ``ber_bits``) and the binding threshold (``ber_threshold``);
        analytic estimates publish ``ber`` only.  The posterior mean
        recomputes ``ber_violation`` so that ranking (and therefore
        pruning) is driven by the regularized value.
        """
        if not self.config.use_bayesian_ber or self.goal.ber_curve is None:
            return metrics
        threshold = metrics.get("ber_threshold")
        errors = metrics.get("ber_errors")
        bits = metrics.get("ber_bits")
        if errors is not None and bits:
            belief = self.predictor.add_measurement(
                point, int(errors), int(bits)
            )
        elif "ber" in metrics and math.isfinite(metrics["ber"]):
            belief = self.predictor.add_estimate(point, metrics["ber"])
        else:
            return metrics
        if threshold:
            posterior_ber = belief.ber
            metrics["ber_posterior"] = posterior_ber
            metrics["ber_violation"] = max(
                0.0, math.log10(max(posterior_ber, 1e-300) / threshold)
            )
        return metrics

    def _record_ranked(self, key: Tuple, metrics: Metrics) -> None:
        existing = self._ranked.get(key)
        if existing is None or self.goal.compare(metrics, existing) < 0:
            self._ranked[key] = metrics

    def _current_best_key(self) -> Optional[Tuple]:
        best_key = None
        best_metrics: Optional[Metrics] = None
        for key, metrics in self._ranked.items():
            if best_metrics is None or self.goal.compare(metrics, best_metrics) < 0:
                best_key, best_metrics = key, metrics
        return best_key

    # ------------------------------------------------------------------

    def _search_region(self, region: Region, level: int) -> None:
        """One recursion of Fig. 6: evaluate grid, refine, descend."""
        # A coarse grid with two samples per axis can refine to its own
        # bounds, so identical bounds at a *finer* resolution are still
        # a new grid — key by (bounds, level).
        region_key = (region.bounds, level)
        if region_key in self._regions_seen:
            return
        self._regions_seen.add(region_key)
        registry = get_registry()
        registry.counter("search.regions").inc()
        with get_tracer().span("search.region", level=level) as region_span:
            resolution = level * self.config.resolution_increment
            grid = region.grid(resolution, self.config.max_grid_points)
            fidelity = self._fidelity_for_level(level)
            evaluated = self._evaluate_grid(grid, fidelity)
            registry.counter("search.grid_points").inc(len(grid.points))
            region_span.set(
                grid_points=len(grid.points),
                evaluated=len(evaluated),
                fidelity=fidelity,
            )
            if level >= self.config.max_resolution:
                region_span.set(survivors=0)
                return
            ranked = sorted(
                evaluated,
                key=cmp_to_key(lambda a, b: self.goal.compare(a[1], b[1])),
            )
            survivors: List[Tuple[Point, Region]] = []
            for point, metrics in ranked[: self.config.refine_top_k]:
                if not math.isfinite(self.goal.primary.score(metrics)) and not math.isfinite(
                    self.goal.total_violation(metrics)
                ):
                    continue  # nothing to learn from a dead region
                # Refinement needs the *grid* point (pre-normalization) to
                # locate neighbors; reconstruct it if normalization moved it.
                grid_point = self._closest_grid_point(point, grid)
                if grid_point is None:
                    continue
                survivors.append(
                    (point, region.refine_around(grid_point, grid.samples))
                )
            region_span.set(survivors=len(survivors))
            registry.counter("search.survivors").inc(len(survivors))
        for _point, sub_region in survivors:
            self._search_region(sub_region, level + 1)

    @staticmethod
    def _closest_grid_point(point: Point, grid: GridSample) -> Optional[Point]:
        """The raw grid point matching a (possibly normalized) point."""
        for candidate in grid.points:
            if all(
                candidate[name] == value
                for name, value in point.items()
                if name in candidate
            ):
                return dict(candidate)
        # Normalization moved some coordinate off-grid: fall back to the
        # grid point agreeing on the most coordinates.
        best, best_score = None, -1
        for candidate in grid.points:
            score = sum(
                1 for name, value in point.items() if candidate.get(name) == value
            )
            if score > best_score:
                best, best_score = dict(candidate), score
        return best
