"""Process-parallel batch evaluation of design points.

Grid evaluations are independent — the paper notes run time is the knob
traded for result quality (Sec. 4.4), and every point of a grid round
can be priced concurrently without changing any result.  This module
fans a batch of points out over a :class:`ProcessPoolExecutor`: each
worker process unpickles the evaluator once (at pool start-up) and then
prices points with warm per-worker state (simulator caches, memoized
trellises, filter realizations).

Determinism is preserved because the library's evaluators derive every
stochastic stream from ``(seed, point, SNR, batch)`` rather than from
shared mutable RNG state, so a point's metrics do not depend on which
process prices it or in what order.  Results are returned in request
order.

Evaluators that cannot be pickled (e.g. closures over test state) fall
back to in-process serial evaluation, as does ``workers <= 1``; the
wrapper is then a transparent pass-through.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from repro.core.evalcache import evaluator_fingerprint
from repro.core.evaluation import (
    Evaluator,
    Metrics,
    TimedEvaluation,
    evaluate_serially_timed,
)
from repro.core.parameters import Point

#: The evaluator each worker process reconstructs at pool start-up.
_WORKER_EVALUATOR: Optional[Evaluator] = None

#: Every evaluator that has actually started a pool, so entry points
#: can guarantee worker shutdown on exit even when an error path skips
#: a ``close()`` call.
_LIVE_POOLS: "weakref.WeakSet[ParallelEvaluator]" = weakref.WeakSet()


def shutdown_all_pools() -> None:
    """Close every live worker pool (idempotent, exit-safe)."""
    for evaluator in list(_LIVE_POOLS):
        try:
            evaluator.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


atexit.register(shutdown_all_pools)


def _init_worker(payload: bytes) -> None:
    global _WORKER_EVALUATOR
    # Under the fork start method the worker inherits the parent's
    # tracer sink (same file descriptor, no cross-process lock).
    # Detach it: worker-side spans are no-ops, and the parent emits one
    # `evaluate.batch` span with per-worker attribution instead.
    from repro.observability.trace import get_tracer

    get_tracer().set_sink(None)
    _WORKER_EVALUATOR = pickle.loads(payload)


def _evaluate_in_worker(task):
    point, fidelity = task
    start = time.perf_counter()
    metrics = _WORKER_EVALUATOR.evaluate(point, fidelity)
    return dict(metrics), time.perf_counter() - start, os.getpid()


def _pool_context():
    """Prefer fork (cheap start-up, no import round-trip) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelEvaluator:
    """Fan batch evaluations out over a process pool.

    Parameters
    ----------
    inner:
        The evaluator to parallelize.  It is pickled once at pool
        creation and reconstructed in every worker; if pickling fails
        the wrapper silently degrades to serial in-process evaluation.
    workers:
        Pool size.  ``None`` uses the CPU count; ``<= 1`` disables the
        pool entirely.

    The pool is created lazily on the first batch and reused across
    rounds (so per-worker caches stay warm).  Call :meth:`close` (or
    use as a context manager) to release the worker processes.
    """

    def __init__(self, inner: Evaluator, workers: Optional[int] = None) -> None:
        self.inner = inner
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._payload: Optional[bytes]
        try:
            self._payload = pickle.dumps(inner)
        except Exception:
            self._payload = None

    # -- evaluator protocol ---------------------------------------------

    @property
    def max_fidelity(self) -> int:
        return self.inner.max_fidelity

    def fingerprint(self) -> str:
        """Delegate, so parallelism never changes the cache key."""
        return evaluator_fingerprint(self.inner)

    @property
    def parallel_enabled(self) -> bool:
        """True when batches will actually use worker processes."""
        return self.workers > 1 and self._payload is not None

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        """Single points are priced in-process (no pickling round-trip)."""
        return self.inner.evaluate(point, fidelity)

    def evaluate_many(self, points: Sequence[Point], fidelity: int) -> List[Metrics]:
        return [t.metrics for t in self.evaluate_many_timed(points, fidelity)]

    def evaluate_many_timed(
        self, points: Sequence[Point], fidelity: int
    ) -> List[TimedEvaluation]:
        """Price a batch; results align with ``points`` order."""
        if not points:
            return []
        if not self.parallel_enabled or len(points) < 2:
            return evaluate_serially_timed(self.inner, points, fidelity)
        tasks = [(dict(point), fidelity) for point in points]
        chunksize = max(1, len(tasks) // (self.workers * 4))
        try:
            results = list(
                self._ensure_executor().map(
                    _evaluate_in_worker, tasks, chunksize=chunksize
                )
            )
        except BrokenProcessPool:
            # A worker died (OOM, signal); finish the batch in-process
            # and stop using the pool for the rest of this run.
            self.close()
            self._payload = None
            return evaluate_serially_timed(self.inner, points, fidelity)
        return [
            TimedEvaluation(metrics=metrics, elapsed_s=elapsed, worker=pid)
            for metrics, elapsed, pid in results
        ]

    # -- pool lifecycle --------------------------------------------------

    def ensure_started(self) -> bool:
        """Start the worker pool now instead of on the first batch.

        Long-running services call this once at start-up so the first
        client request is not taxed with pool spin-up; returns True when
        a pool is (now) live, False when parallelism is disabled.
        """
        if not self.parallel_enabled:
            return False
        self._ensure_executor()
        return True

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(self._payload,),
            )
            _LIVE_POOLS.add(self)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
