"""Baseline search strategies.

The paper motivates multiresolution search by the infeasibility of
exhaustive enumeration over ~10**8 points.  These baselines make that
comparison measurable: exhaustive search (on spaces small enough),
uniform random sampling, and simulated annealing — all returning the
same :class:`~repro.core.search.SearchResult` so the ablation
benchmarks can compare evaluation counts and result quality directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.evaluation import (
    CachingEvaluator,
    EvaluationLog,
    EvaluationRecord,
    Evaluator,
    Metrics,
)
from repro.core.objectives import DesignGoal
from repro.core.parameters import (
    ContinuousParameter,
    DesignSpace,
    DiscreteParameter,
    Point,
    frozen_point,
)
from repro.core.search import PointNormalizer, SearchResult
from repro.errors import DesignSpaceError
from repro.utils.rng import make_rng


class _BaselineBase:
    """Shared evaluation/bookkeeping for baseline searches."""

    method = "baseline"

    def __init__(
        self,
        space: DesignSpace,
        goal: DesignGoal,
        evaluator: Evaluator,
        fidelity: Optional[int] = None,
        normalizer: Optional[PointNormalizer] = None,
    ) -> None:
        self.space = space
        self.goal = goal
        self.log = EvaluationLog()
        self.evaluator = CachingEvaluator(evaluator, self.log)
        self.fidelity = (
            self.evaluator.max_fidelity if fidelity is None else fidelity
        )
        self.normalizer = normalizer
        self._best_key: Optional[Tuple] = None
        self._best_metrics: Optional[Metrics] = None

    def _consider(self, point: Point) -> Metrics:
        if self.normalizer:
            point = self.normalizer(dict(point))
        metrics = self.evaluator.evaluate(point, self.fidelity)
        if self._best_metrics is None or self.goal.compare(
            metrics, self._best_metrics
        ) < 0:
            self._best_key = frozen_point(point)
            self._best_metrics = metrics
        return metrics

    def _result(self) -> SearchResult:
        best = None
        feasible = False
        if self._best_key is not None and self._best_metrics is not None:
            best = EvaluationRecord(
                point=self._best_key,
                fidelity=self.fidelity,
                metrics=dict(self._best_metrics),
            )
            feasible = self.goal.is_feasible(self._best_metrics)
        return SearchResult(
            best=best, feasible=feasible, log=self.log, method=self.method
        )


class ExhaustiveSearch(_BaselineBase):
    """Enumerate every point of a (discrete) design space.

    Refuses spaces larger than ``max_points`` — which is the paper's
    point: the full Viterbi space is ~10**8 and cannot be enumerated.
    """

    method = "exhaustive"

    def run(self, max_points: int = 100_000) -> SearchResult:
        size = self.space.size()
        if size > max_points:
            raise DesignSpaceError(
                f"space has {size:.3g} points; exhaustive search capped "
                f"at {max_points}"
            )
        for point in self.space.iter_points():
            self._consider(point)
        return self._result()


class RandomSearch(_BaselineBase):
    """Uniform random sampling of the design space."""

    method = "random"

    def run(self, n_samples: int = 100, seed: int = 0) -> SearchResult:
        rng = make_rng(seed)
        for _ in range(n_samples):
            self._consider(_random_point(self.space, rng))
        return self._result()


class SimulatedAnnealing(_BaselineBase):
    """Simulated annealing in grid-index space.

    Moves perturb one randomly chosen free parameter to a neighboring
    value; the acceptance temperature anneals geometrically.  Scores
    are the goal's feasibility-first ordering collapsed to a scalar
    (violation-dominated when infeasible).
    """

    method = "annealing"

    #: Penalty weight turning constraint violation into score units.
    VIOLATION_WEIGHT = 1.0e6

    def _score(self, metrics: Metrics) -> float:
        violation = self.goal.total_violation(metrics)
        if violation > 0:
            return self.VIOLATION_WEIGHT * (1.0 + violation)
        return self.goal.primary.score(metrics)

    def run(
        self,
        n_steps: int = 200,
        initial_temperature: float = 1.0,
        cooling: float = 0.97,
        seed: int = 0,
    ) -> SearchResult:
        rng = make_rng(seed)
        current = _random_point(self.space, rng)
        current_score = self._score(self._consider(current))
        temperature = initial_temperature
        for _ in range(n_steps):
            candidate = _neighbor_point(self.space, current, rng)
            score = self._score(self._consider(candidate))
            delta = score - current_score
            scale = max(abs(current_score), 1e-12)
            if delta <= 0 or rng.random() < np.exp(
                -delta / (scale * max(temperature, 1e-9))
            ):
                current, current_score = candidate, score
            temperature *= cooling
        return self._result()


def _random_point(space: DesignSpace, rng: np.random.Generator) -> Point:
    point: Point = {}
    for parameter in space.parameters:
        if isinstance(parameter, DiscreteParameter):
            point[parameter.name] = parameter.values[
                int(rng.integers(parameter.size))
            ]
        elif isinstance(parameter, ContinuousParameter):
            point[parameter.name] = float(
                rng.uniform(parameter.lower, parameter.upper)
            )
    return point


def _neighbor_point(
    space: DesignSpace, point: Point, rng: np.random.Generator
) -> Point:
    """Perturb one free parameter to an adjacent value."""
    free = [p for p in space.parameters if not p.is_fixed]
    if not free:
        return dict(point)
    parameter = free[int(rng.integers(len(free)))]
    neighbor = dict(point)
    if isinstance(parameter, DiscreteParameter):
        index = parameter.index_of(point[parameter.name])
        step = 1 if rng.random() < 0.5 else -1
        index = min(max(index + step, 0), parameter.size - 1)
        neighbor[parameter.name] = parameter.values[index]
    else:
        span = parameter.upper - parameter.lower
        value = float(point[parameter.name]) + float(
            rng.normal(0.0, 0.1 * span)
        )
        neighbor[parameter.name] = min(max(value, parameter.lower), parameter.upper)
    return neighbor
