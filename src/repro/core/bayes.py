"""Bayesian BER prediction from grid neighbors (paper Sec. 4.4).

"BER is probabilistic by nature and interpolation can lead to
inaccurate conclusions especially if simulation times are kept short.
We use Bayesian probabilistic techniques to assign a BER probability to
each point, based on the BER values of its neighbors."

The model works in log10-BER space, where Monte-Carlo noise is
approximately Gaussian:

- the *prior* at a point is an inverse-distance-weighted Gaussian built
  from already-evaluated neighbors (mean = weighted neighbor mean,
  variance = weighted spread plus a base uncertainty that grows with
  distance to the nearest neighbor);
- a short simulation contributes a Gaussian *likelihood* whose variance
  follows from the binomial error count (few observed errors = wide);
- the posterior combines both by precision weighting.

The search uses the posterior mean to rank sparse-grid points whose
simulations were short, and the posterior variance to decide which
points deserve a longer run — [Stu91]'s Bayesian global search adapted
to the BER metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.interpolate import point_coordinates
from repro.core.parameters import DesignSpace, Point
from repro.errors import ConfigurationError

#: log10 conversion constant for binomial error-count variance.
_LOG10_E = 1.0 / math.log(10.0)

#: Base prior standard deviation (decades) at zero neighbor distance,
#: and its growth per unit of normalized distance.
PRIOR_BASE_STD = 0.3
PRIOR_DISTANCE_STD = 2.0


@dataclass(frozen=True)
class Gaussian:
    """A Gaussian belief over log10(BER)."""

    mean: float
    std: float

    def combined_with(self, other: "Gaussian") -> "Gaussian":
        """Precision-weighted posterior of two Gaussian beliefs."""
        pa = 1.0 / (self.std**2)
        pb = 1.0 / (other.std**2)
        mean = (self.mean * pa + other.mean * pb) / (pa + pb)
        return Gaussian(mean=mean, std=math.sqrt(1.0 / (pa + pb)))

    @property
    def ber(self) -> float:
        """The belief's point estimate back on the BER scale."""
        return min(10.0**self.mean, 0.5)


def observation_from_counts(errors: int, bits: int) -> Gaussian:
    """Gaussian log10-BER likelihood of a Monte-Carlo measurement.

    Zero observed errors are handled with half a pseudo-error (the BER
    is *at most* around 1/bits); the standard deviation shrinks with
    the square root of the error count, so short simulations are
    automatically down-weighted in the posterior.
    """
    if bits <= 0:
        raise ConfigurationError("bits must be positive")
    if errors < 0 or errors > bits:
        raise ConfigurationError("errors outside [0, bits]")
    effective = max(errors, 0.5)
    mean = math.log10(effective / bits)
    std = _LOG10_E / math.sqrt(effective)
    if errors == 0:
        std = max(std, 1.0)  # an upper bound, not a measurement
    return Gaussian(mean=mean, std=std)


class BayesianBERPredictor:
    """Neighbor-based prior + measurement posterior over log10(BER)."""

    def __init__(self, space: DesignSpace, power: float = 2.0) -> None:
        self.space = space
        self.power = power
        self._coords: List[np.ndarray] = []
        self._beliefs: List[Gaussian] = []

    # ------------------------------------------------------------------

    def add_measurement(
        self, point: Point, errors: int, bits: int
    ) -> Gaussian:
        """Record a Monte-Carlo measurement at a point.

        The stored belief is the posterior of the measurement with the
        neighbor prior available at insertion time, so early noisy
        measurements are already regularized by their neighborhood.
        """
        observation = observation_from_counts(errors, bits)
        prior = self.prior(point) if self._beliefs else None
        belief = observation if prior is None else prior.combined_with(observation)
        self._coords.append(point_coordinates(self.space, point))
        self._beliefs.append(belief)
        return belief

    def add_estimate(self, point: Point, ber: float, std: float = 0.5) -> Gaussian:
        """Record an analytic estimate (e.g. a union bound) directly."""
        if not 0.0 < ber <= 0.5:
            ber = min(max(ber, 1e-300), 0.5)
        belief = Gaussian(mean=math.log10(ber), std=std)
        self._coords.append(point_coordinates(self.space, point))
        self._beliefs.append(belief)
        return belief

    @property
    def n_points(self) -> int:
        return len(self._beliefs)

    # ------------------------------------------------------------------

    def prior(self, point: Point) -> Optional[Gaussian]:
        """Neighbor-based prior at a point (None with no data)."""
        if not self._beliefs:
            return None
        query = point_coordinates(self.space, point)
        coords = np.vstack(self._coords)
        distances = np.linalg.norm(coords - query[np.newaxis, :], axis=1)
        nearest = float(distances.min())
        weights = (distances + 1e-9) ** (-self.power)
        weights /= weights.sum()
        means = np.array([b.mean for b in self._beliefs])
        mean = float(np.dot(weights, means))
        spread = float(np.sqrt(np.dot(weights, (means - mean) ** 2)))
        std = math.sqrt(
            PRIOR_BASE_STD**2
            + spread**2
            + (PRIOR_DISTANCE_STD * nearest) ** 2
        )
        return Gaussian(mean=mean, std=std)

    def predict(
        self,
        point: Point,
        errors: Optional[int] = None,
        bits: Optional[int] = None,
    ) -> Gaussian:
        """Posterior belief at a point, optionally folding in counts.

        With no measurement this is just the neighbor prior; with one,
        the precision-weighted posterior.
        """
        prior = self.prior(point)
        if errors is None or bits is None:
            if prior is None:
                raise ConfigurationError("no data to predict from")
            return prior
        observation = observation_from_counts(errors, bits)
        return observation if prior is None else prior.combined_with(observation)

    def needs_longer_run(self, point: Point, decades: float = 0.5) -> bool:
        """Whether the belief at ``point`` is too vague to rank on.

        True when the posterior standard deviation exceeds ``decades``
        — the search's trigger for promoting a point to a higher
        simulation fidelity.
        """
        belief = self.predict(point)
        return belief.std > decades
