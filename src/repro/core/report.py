"""Textual reporting of search results.

Formats the artifacts a MetaCore user reads after a run: the winner, a
ranked table of the best candidates, the evaluation-effort breakdown,
and Pareto fronts — the textual equivalents of the result views the
paper's GUI (Fig. 7) offered.
"""

from __future__ import annotations

import math
from functools import cmp_to_key
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import DesignGoal, Objective
from repro.core.pareto import pareto_front
from repro.core.search import SearchResult


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or 1e-3 <= abs(value) < 1e5:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def format_point(point: Dict[str, object]) -> str:
    """One-line rendering of a design point."""
    return ", ".join(f"{k}={_format_value(v)}" for k, v in sorted(point.items()))


def ranked_candidates(
    result: SearchResult, goal: DesignGoal, top: int = 10
) -> List[EvaluationRecord]:
    """The best distinct candidates of a run, best first.

    Each point appears once with its highest-fidelity record.
    """
    latest: Dict[tuple, EvaluationRecord] = {}
    for record in result.log.records:
        existing = latest.get(record.point)
        if existing is None or record.fidelity >= existing.fidelity:
            latest[record.point] = record
    records = sorted(
        latest.values(),
        key=cmp_to_key(lambda a, b: goal.compare(a.metrics, b.metrics)),
    )
    return records[:top]


def format_search_report(
    result: SearchResult,
    goal: DesignGoal,
    top: int = 10,
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """A full text report of one search run."""
    lines: List[str] = []
    lines.append("=" * 64)
    lines.append(f"search report ({result.method})")
    lines.append("=" * 64)
    lines.append(
        f"evaluations: {result.log.n_evaluations} "
        f"(by fidelity {result.log.by_fidelity()}), "
        f"unique points: {result.log.unique_points()}, "
        f"evaluator cpu time: {result.log.cpu_time_s:.1f} s, "
        f"wall time: {result.log.wall_time_s:.1f} s"
    )
    time_by_fidelity = result.log.time_by_fidelity()
    if time_by_fidelity:
        breakdown = ", ".join(
            f"fid {fidelity}: {seconds:.2f} s"
            for fidelity, seconds in sorted(time_by_fidelity.items())
        )
        lines.append(
            f"evaluator time breakdown: total {result.log.total_time_s:.2f} s "
            f"({breakdown})"
        )
    if result.cache_hits or result.cache_misses or result.persistent_hits:
        requests = (
            result.cache_hits + result.cache_misses + result.persistent_hits
        )
        rate = 100.0 * result.cache_hits / requests if requests else 0.0
        lines.append(
            f"evaluator cache: {result.cache_hits} hits / "
            f"{result.cache_misses} misses / "
            f"{result.persistent_hits} persistent-hits ({rate:.1f}% hit rate)"
        )
    lines.append(f"regions explored: {result.regions_explored}")
    lines.append(f"specification feasible: {result.feasible}")
    lines.append("")
    if result.best is not None:
        lines.append("winner:")
        lines.append(f"  {format_point(result.best.as_point())}")
        for name, value in sorted(result.best.metrics.items()):
            lines.append(f"    {name:28s} {_format_value(value)}")
        lines.append("")
    candidates = ranked_candidates(result, goal, top)
    if candidates:
        metric_names = list(metrics) if metrics else _default_metrics(goal)
        header = f"{'rank':>4s}  " + "  ".join(
            f"{name:>14s}" for name in metric_names
        ) + "  point"
        lines.append(f"top {len(candidates)} candidates:")
        lines.append(header)
        for rank, record in enumerate(candidates, start=1):
            row = f"{rank:>4d}  " + "  ".join(
                f"{_format_value(record.metrics.get(name, math.nan)):>14s}"
                for name in metric_names
            )
            lines.append(row + f"  {format_point(record.as_point())}")
    return "\n".join(lines)


def _default_metrics(goal: DesignGoal) -> List[str]:
    names = [objective.metric for objective in goal.objectives]
    for constraint in goal.all_constraints():
        if constraint.metric not in names:
            names.append(constraint.metric)
    return names


def format_pareto_report(
    result: SearchResult, objectives: Sequence[Objective]
) -> str:
    """The non-dominated trade-off frontier of a run's evaluations."""
    front = pareto_front(result.log.records, objectives)
    lines = [
        f"Pareto front over ({', '.join(o.metric for o in objectives)}): "
        f"{len(front)} points"
    ]
    for record in front:
        values = "  ".join(
            f"{o.metric}={_format_value(record.metrics.get(o.metric, math.nan))}"
            for o in objectives
        )
        lines.append(f"  {values}  | {format_point(record.as_point())}")
    return "\n".join(lines)
