"""Pareto-front utilities for multi-metric trade-off reporting.

A MetaCore search optimizes one primary objective under constraints,
but the *reporting* of trade-offs (area vs. BER vs. throughput, as in
the paper's Table 1 discussion) needs Pareto fronts over evaluation
logs.  Everything here is objective-count agnostic: the same
``dominates`` / ``pareto_front`` / ``front_sort_key`` trio that served
the 2-metric goals carries the 3-objective power-aware goals
(area, energy, feasibility margins — see :mod:`repro.power`) without
special cases.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.core.evaluation import EvaluationRecord
from repro.core.objectives import Objective
from repro.errors import ConfigurationError


def dominates(
    a: Mapping[str, float],
    b: Mapping[str, float],
    objectives: Sequence[Objective],
) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective
    and strictly better on at least one."""
    if not objectives:
        raise ConfigurationError("need at least one objective")
    at_least_as_good = True
    strictly_better = False
    for objective in objectives:
        sa, sb = objective.score(a), objective.score(b)
        if sa > sb:
            at_least_as_good = False
            break
        if sa < sb:
            strictly_better = True
    return at_least_as_good and strictly_better


def front_sort_key(
    record: EvaluationRecord, objectives: Sequence[Objective]
) -> Tuple:
    """Deterministic total order over front members.

    Primary sort is the full objective-score vector; equal-metric
    records fall back to the (stringified) design point, so the front's
    order never depends on dict/iteration order of the input.
    """
    return (
        tuple(objective.score(record.metrics) for objective in objectives),
        tuple((str(name), repr(value)) for name, value in record.point),
    )


def pareto_front(
    records: Iterable[EvaluationRecord],
    objectives: Sequence[Objective],
) -> List[EvaluationRecord]:
    """Non-dominated subset of an evaluation log.

    Later records shadow earlier ones with the same design point (the
    later one was evaluated at equal or higher fidelity).
    """
    latest = {}
    for record in records:
        latest[record.point] = record
    candidates = list(latest.values())
    front: List[EvaluationRecord] = []
    for record in candidates:
        if any(
            dominates(other.metrics, record.metrics, objectives)
            for other in candidates
            if other is not record
        ):
            continue
        front.append(record)
    front.sort(key=lambda r: front_sort_key(r, objectives))
    return front
