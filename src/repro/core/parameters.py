"""Design-space parameterization (paper Sec. 4.1 and 4.4).

A MetaCore's optimization degrees of freedom form a multi-dimensional
design space.  The paper classifies parameters as (i) discrete or
continuous and (ii) correlated or non-correlated, further tagging
correlated parameters with their structure (monotonic, linear,
quadratic, probabilistic).  The search exploits this classification:
smooth correlated metrics may be interpolated between grid points,
probabilistic ones go through the Bayesian predictor, and
non-correlated parameters are enumerated rather than refined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.errors import DesignSpaceError

ParameterValue = Union[int, float, str]
Point = Dict[str, ParameterValue]


class Correlation(Enum):
    """How a parameter relates to the design metrics (Sec. 4.4)."""

    NONE = "non-correlated"
    MONOTONIC = "monotonic"
    LINEAR = "linear"
    QUADRATIC = "quadratic"
    PROBABILISTIC = "probabilistic"

    @property
    def is_correlated(self) -> bool:
        return self is not Correlation.NONE


@dataclass(frozen=True)
class DiscreteParameter:
    """An ordered finite set of values (e.g. K in {3,...,9}).

    Categorical parameters (e.g. the quantization method Q) are
    discrete parameters whose order carries no meaning; mark them
    ``Correlation.NONE`` so the search enumerates instead of refining.
    """

    name: str
    values: Tuple[ParameterValue, ...]
    correlation: Correlation = Correlation.MONOTONIC
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise DesignSpaceError(f"parameter {self.name}: no values")
        if len(set(self.values)) != len(self.values):
            raise DesignSpaceError(f"parameter {self.name}: duplicate values")

    @property
    def size(self) -> int:
        return len(self.values)

    @property
    def is_fixed(self) -> bool:
        return self.size == 1

    def index_of(self, value: ParameterValue) -> int:
        try:
            return self.values.index(value)
        except ValueError as exc:
            raise DesignSpaceError(
                f"parameter {self.name}: {value!r} not among {self.values}"
            ) from exc

    def sample_indices(self, lo: int, hi: int, count: int) -> List[int]:
        """Up to ``count`` evenly spaced indices within [lo, hi]."""
        if not 0 <= lo <= hi < self.size:
            raise DesignSpaceError(
                f"parameter {self.name}: bad index range [{lo}, {hi}]"
            )
        span = hi - lo
        count = min(count, span + 1)
        if count == 1:
            return [(lo + hi) // 2]
        return sorted({lo + round(i * span / (count - 1)) for i in range(count)})


@dataclass(frozen=True)
class ContinuousParameter:
    """A real interval (e.g. a ripple allocation).

    The search samples it at its grid resolution; refinement shrinks the
    interval around promising samples.
    """

    name: str
    lower: float
    upper: float
    correlation: Correlation = Correlation.MONOTONIC
    description: str = ""

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise DesignSpaceError(f"parameter {self.name}: non-finite bounds")
        if self.lower > self.upper:
            raise DesignSpaceError(f"parameter {self.name}: lower > upper")

    @property
    def is_fixed(self) -> bool:
        return self.lower == self.upper

    def sample(self, lo: float, hi: float, count: int) -> List[float]:
        """``count`` evenly spaced values within [lo, hi]."""
        lo = max(lo, self.lower)
        hi = min(hi, self.upper)
        if lo > hi:
            raise DesignSpaceError(f"parameter {self.name}: empty range")
        if count == 1 or lo == hi:
            return [(lo + hi) / 2.0]
        step = (hi - lo) / (count - 1)
        return [lo + i * step for i in range(count)]


Parameter = Union[DiscreteParameter, ContinuousParameter]


@dataclass
class DesignSpace:
    """The full solution space of a MetaCore (e.g. Table 2's 8 axes)."""

    parameters: List[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise DesignSpaceError("duplicate parameter names")

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.parameters]

    @property
    def dimensions(self) -> int:
        return len(self.parameters)

    @property
    def free_dimensions(self) -> int:
        """Dimensions that actually vary (paper: fixed G and N shrink
        the initial grid well below the 256-point budget)."""
        return sum(1 for p in self.parameters if not p.is_fixed)

    def __getitem__(self, name: str) -> Parameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise DesignSpaceError(f"no parameter named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(p.name == name for p in self.parameters)

    def validate_point(self, point: Mapping[str, ParameterValue]) -> Point:
        """Check a point names every parameter with an in-range value."""
        missing = set(self.names) - set(point)
        extra = set(point) - set(self.names)
        if missing or extra:
            raise DesignSpaceError(
                f"point keys mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        validated: Point = {}
        for parameter in self.parameters:
            value = point[parameter.name]
            if isinstance(parameter, DiscreteParameter):
                parameter.index_of(value)  # raises if absent
            else:
                value = float(value)
                if not parameter.lower <= value <= parameter.upper:
                    raise DesignSpaceError(
                        f"parameter {parameter.name}: {value} outside "
                        f"[{parameter.lower}, {parameter.upper}]"
                    )
            validated[parameter.name] = value
        return validated

    def size(self) -> float:
        """Number of distinct points (inf with continuous parameters).

        For the paper's Viterbi space this is the "roughly 10**8
        distinct points" that motivates multiresolution search.
        """
        total = 1.0
        for parameter in self.parameters:
            if isinstance(parameter, DiscreteParameter):
                total *= parameter.size
            elif not parameter.is_fixed:
                return math.inf
        return total

    def iter_points(self) -> Iterator[Point]:
        """Exhaustive enumeration (discrete parameters only)."""
        for parameter in self.parameters:
            if isinstance(parameter, ContinuousParameter) and not parameter.is_fixed:
                raise DesignSpaceError(
                    "cannot enumerate a space with free continuous parameters"
                )

        def recurse(index: int, partial: Point) -> Iterator[Point]:
            if index == len(self.parameters):
                yield dict(partial)
                return
            parameter = self.parameters[index]
            if isinstance(parameter, DiscreteParameter):
                values: Sequence[ParameterValue] = parameter.values
            else:
                values = [parameter.lower]
            for value in values:
                partial[parameter.name] = value
                yield from recurse(index + 1, partial)

        yield from recurse(0, {})

    def describe(self) -> str:
        """A Table-2 style listing of the space."""
        lines = [f"Design space: {self.dimensions} dimensions"]
        for parameter in self.parameters:
            if isinstance(parameter, DiscreteParameter):
                domain = "{" + ", ".join(str(v) for v in parameter.values) + "}"
            else:
                domain = f"[{parameter.lower}, {parameter.upper}]"
            tag = parameter.correlation.value
            fixed = " (fixed)" if parameter.is_fixed else ""
            desc = f" — {parameter.description}" if parameter.description else ""
            lines.append(f"  {parameter.name}: {domain} [{tag}]{fixed}{desc}")
        return "\n".join(lines)


def frozen_point(point: Mapping[str, ParameterValue]) -> Tuple[Tuple[str, ParameterValue], ...]:
    """A hashable form of a point, used as cache key."""
    return tuple(sorted(point.items()))
