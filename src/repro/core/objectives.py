"""Objective functions and constraints (paper Sec. 4.2).

A MetaCore search is steered by a :class:`DesignGoal`: one or more
objectives (metrics to minimize or maximize, area being the usual
primary) under constraints (bounds on other metrics, or a BER threshold
curve over signal-to-noise ratios as the paper's users specify).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

Metrics = Mapping[str, float]


class Direction(Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class Objective:
    """A metric to optimize, e.g. minimize ``area_mm2``."""

    metric: str
    direction: Direction = Direction.MINIMIZE

    def score(self, metrics: Metrics) -> float:
        """Lower-is-better score of a metrics record."""
        value = metrics.get(self.metric)
        if value is None or math.isnan(value):
            return math.inf
        return value if self.direction is Direction.MINIMIZE else -value


@dataclass(frozen=True)
class Constraint:
    """An inequality constraint on one metric.

    Exactly one of ``upper`` / ``lower`` must be given.  ``violation``
    returns 0 when satisfied and a positive *relative* magnitude when
    not, so violations of metrics with different units are comparable
    when the search ranks infeasible points.
    """

    metric: str
    upper: Optional[float] = None
    lower: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.upper is None) == (self.lower is None):
            raise ConfigurationError(
                f"constraint on {self.metric}: give exactly one bound"
            )

    def violation(self, metrics: Metrics) -> float:
        value = metrics.get(self.metric)
        if value is None or math.isnan(value):
            return math.inf
        if self.upper is not None:
            if value <= self.upper:
                return 0.0
            scale = abs(self.upper) if self.upper else 1.0
            return (value - self.upper) / scale
        if value >= self.lower:
            return 0.0
        scale = abs(self.lower) if self.lower else 1.0
        return (self.lower - value) / scale

    def satisfied(self, metrics: Metrics) -> bool:
        return self.violation(metrics) == 0.0


@dataclass(frozen=True)
class BERThresholdCurve:
    """A user-supplied BER-vs-SNR threshold (paper Sec. 4.2).

    ``points`` maps Es/N0 (dB) to the largest acceptable BER at that
    ratio.  A design satisfies the curve when its measured BER is at or
    below the threshold at every specified ratio; violations are
    measured in decades (log10 ratio), the natural scale for BER.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("threshold curve needs at least one point")
        for _, ber in self.points:
            if not 0.0 < ber <= 0.5:
                raise ConfigurationError("threshold BER must lie in (0, 0.5]")

    @classmethod
    def single(cls, es_n0_db: float, max_ber: float) -> "BERThresholdCurve":
        """The Table-3 style spec: one BER bound at one Es/N0."""
        return cls(points=((es_n0_db, max_ber),))

    @property
    def es_n0_db_values(self) -> List[float]:
        return [snr for snr, _ in self.points]

    def violation(self, measured: Mapping[float, float]) -> float:
        """Worst violation in decades over the curve (0 if satisfied).

        ``measured`` maps Es/N0 (dB) to measured BER; every curve point
        must be present.
        """
        worst = 0.0
        for es_n0_db, max_ber in self.points:
            if es_n0_db not in measured:
                raise ConfigurationError(
                    f"no measurement at Es/N0 = {es_n0_db} dB"
                )
            ber = measured[es_n0_db]
            if math.isnan(ber):
                return math.inf
            if ber > max_ber:
                floor = max(ber, 1e-300)
                worst = max(worst, math.log10(floor / max_ber))
        return worst


@dataclass
class DesignGoal:
    """Objectives plus constraints: the full specification of a search.

    ``ber_curve`` is optional; when present the evaluator is expected to
    publish a ``ber_violation`` metric (in decades) which is constrained
    to zero.
    """

    objectives: List[Objective] = field(default_factory=list)
    constraints: List[Constraint] = field(default_factory=list)
    ber_curve: Optional[BERThresholdCurve] = None

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigurationError("a design goal needs at least one objective")

    @property
    def primary(self) -> Objective:
        return self.objectives[0]

    def all_constraints(self) -> List[Constraint]:
        extra = []
        if self.ber_curve is not None:
            extra.append(Constraint(metric="ber_violation", upper=0.0))
        return self.constraints + extra

    def total_violation(self, metrics: Metrics) -> float:
        """Sum of relative violations (0 means feasible)."""
        return sum(c.violation(metrics) for c in self.all_constraints())

    def is_feasible(self, metrics: Metrics) -> bool:
        return self.total_violation(metrics) == 0.0

    def compare(self, a: Metrics, b: Metrics) -> int:
        """Feasibility-first comparison: negative when ``a`` is better.

        Feasible points beat infeasible ones; among feasible points the
        objectives decide lexicographically (primary first, later
        objectives only break ties — identical to the old primary-only
        rule for single-objective goals); among infeasible ones the
        smaller total violation wins (so the search climbs toward
        feasibility).
        """
        va, vb = self.total_violation(a), self.total_violation(b)
        feasible_a, feasible_b = va == 0.0, vb == 0.0
        if feasible_a != feasible_b:
            return -1 if feasible_a else 1
        if feasible_a:
            for objective in self.objectives:
                sa, sb = objective.score(a), objective.score(b)
                if sa < sb:
                    return -1
                if sa > sb:
                    return 1
            return 0
        if va < vb:
            return -1
        if va > vb:
            return 1
        return 0
