"""Persistent cross-run evaluation cache.

The multiresolution search never pays twice for the same (point,
fidelity) pair *within* a run; this module extends that guarantee
*across* runs.  Priced design points are appended to a JSONL file keyed
by the evaluator's *fingerprint* — a string covering everything that
could change the metrics of a point: the Monte-Carlo seed, the fidelity
budgets, the specification under evaluation, and the code version.  A
rerun of ``table3``/``table4`` (or any search over the same
specification) then starts warm and answers grid rounds from disk
instead of repaying the simulation bill.

Semantics mirror the in-memory :class:`~repro.core.evaluation.\
CachingEvaluator`: the store keeps the *highest* fidelity seen per
(fingerprint, point), and a lower-fidelity request is answered by that
higher-fidelity record, which is at least as accurate.  A fingerprint
change invalidates nothing on disk — old entries simply stop matching,
so one file can serve many specifications at once (the table sweeps
share a single cache file across their specs).
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, IO, Mapping, Optional, Tuple, Union

PointKey = Tuple[Tuple[str, Any], ...]

#: Bump to orphan every existing cache file (schema migrations).
CACHE_SCHEMA_VERSION = 1


def evaluator_fingerprint(evaluator: object) -> str:
    """The cache-key prefix identifying an evaluator's exact behavior.

    Evaluators that want cross-run caching expose a ``fingerprint()``
    method returning a stable string over their seed, budgets, and
    specification.  Anything else falls back to its qualified class
    name, which never matches across incompatible evaluators but also
    never pretends two configurations are interchangeable.
    """
    hook = getattr(evaluator, "fingerprint", None)
    if callable(hook):
        return str(hook())
    cls = type(evaluator)
    return (
        f"{cls.__module__}.{cls.__qualname__}"
        f":max_fidelity={getattr(evaluator, 'max_fidelity', 0)}"
    )


class PersistentEvalCache:
    """Append-only JSONL store of priced design points.

    Thread-safe; entries survive process restarts.  Records are written
    eagerly (one line per computed evaluation, flushed immediately) so a
    crashed or interrupted search still leaves its paid-for evaluations
    behind for the next run.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, PointKey], Tuple[int, Dict[str, float]]] = {}
        self._file: Optional[IO[str]] = None
        self.n_loaded = 0
        #: Corrupt (undecodable / malformed) lines skipped at load time.
        #: Schema-version mismatches are *not* corruption and stay silent.
        self.n_skipped = 0
        self._load()

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail line from an interrupted run — expected
                    # once at EOF, suspicious anywhere else; either way
                    # the entry is lost, so say so.
                    self._skip(line_no, "undecodable JSON")
                    continue
                if not isinstance(record, dict):
                    self._skip(line_no, "not a JSON object")
                    continue
                if record.get("schema") != CACHE_SCHEMA_VERSION:
                    continue  # orphaned by a schema bump, by design
                try:
                    key = (
                        str(record["fp"]),
                        tuple((str(k), v) for k, v in record["point"]),
                    )
                    fidelity = int(record["fid"])
                    metrics = {
                        str(k): float(v) for k, v in record["metrics"].items()
                    }
                except (KeyError, TypeError, ValueError):
                    self._skip(line_no, "malformed record")
                    continue
                existing = self._entries.get(key)
                if existing is None or fidelity > existing[0]:
                    self._entries[key] = (fidelity, metrics)
        self.n_loaded = len(self._entries)

    def _skip(self, line_no: int, reason: str) -> None:
        self.n_skipped += 1
        warnings.warn(
            f"evaluation cache {self.path}: skipping corrupt line "
            f"{line_no} ({reason})",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- lookup / insert -------------------------------------------------

    def get(
        self, fingerprint: str, key: PointKey, fidelity: int
    ) -> Optional[Tuple[int, Dict[str, float]]]:
        """The stored ``(fidelity, metrics)`` answering a request, or None.

        A stored record answers any request at or below its fidelity.
        """
        with self._lock:
            entry = self._entries.get((fingerprint, key))
            if entry is None or entry[0] < fidelity:
                return None
            return entry[0], dict(entry[1])

    def put(
        self,
        fingerprint: str,
        key: PointKey,
        fidelity: int,
        metrics: Mapping[str, float],
        elapsed_s: float = 0.0,
    ) -> bool:
        """Store one priced point; returns True if anything was written.

        Lower-or-equal-fidelity duplicates of an existing entry are
        dropped — the file only grows when knowledge improves.
        """
        metrics = {str(k): float(v) for k, v in metrics.items()}
        with self._lock:
            existing = self._entries.get((fingerprint, key))
            if existing is not None and existing[0] >= fidelity:
                return False
            self._entries[(fingerprint, key)] = (fidelity, metrics)
            record = {
                "schema": CACHE_SCHEMA_VERSION,
                "fp": fingerprint,
                "point": [[k, v] for k, v in key],
                "fid": fidelity,
                "metrics": metrics,
                "elapsed_s": round(float(elapsed_s), 6),
            }
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._file.flush()
            return True

    # -- bookkeeping -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Plain-dict store accounting (for status endpoints/reports)."""
        with self._lock:
            return {
                "path": str(self.path),
                "entries": len(self._entries),
                "loaded": self.n_loaded,
                "skipped": self.n_skipped,
            }

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "PersistentEvalCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
