"""Interpolation of smooth metrics between grid points (paper Sec. 4.4).

"Since our area and throughput functions are smooth and continuous, we
use interpolation between the points on the grid to calculate initial
estimates."  Design points live in a mixed discrete/continuous space,
so points are first mapped to normalized coordinates in the unit cube
and smooth metrics are interpolated there with inverse-distance
weighting (exact at the samples, bounded by the sample range — both
properties the search relies on).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.parameters import (
    ContinuousParameter,
    DesignSpace,
    DiscreteParameter,
    Point,
)
from repro.errors import DesignSpaceError


def point_coordinates(space: DesignSpace, point: Point) -> np.ndarray:
    """Normalized [0, 1] coordinates of a design point.

    Discrete parameters map to their index position within the value
    list; categorical (non-correlated) dimensions still get coordinates
    but carry no metric meaning — callers typically hold them fixed.
    """
    coords: List[float] = []
    for parameter in space.parameters:
        value = point[parameter.name]
        if isinstance(parameter, DiscreteParameter):
            if parameter.size == 1:
                coords.append(0.0)
            else:
                coords.append(parameter.index_of(value) / (parameter.size - 1))
        elif isinstance(parameter, ContinuousParameter):
            span = parameter.upper - parameter.lower
            coords.append(
                0.0 if span == 0 else (float(value) - parameter.lower) / span
            )
        else:  # pragma: no cover - union is exhaustive
            raise DesignSpaceError(f"unknown parameter type {parameter!r}")
    return np.asarray(coords, dtype=float)


def idw_interpolate(
    coordinates: np.ndarray,
    values: Sequence[float],
    query: np.ndarray,
    power: float = 2.0,
) -> float:
    """Inverse-distance-weighted interpolation.

    ``coordinates`` has shape ``(n, d)``; a query that coincides with a
    sample returns that sample's value exactly, and every result lies
    within [min(values), max(values)].
    """
    coordinates = np.asarray(coordinates, dtype=float)
    values_arr = np.asarray(values, dtype=float)
    if coordinates.ndim != 2 or len(values_arr) != coordinates.shape[0]:
        raise DesignSpaceError("coordinates and values shapes disagree")
    if coordinates.shape[0] == 0:
        raise DesignSpaceError("need at least one sample to interpolate")
    query = np.asarray(query, dtype=float)
    distances = np.linalg.norm(coordinates - query[np.newaxis, :], axis=1)
    exact = distances < 1e-12
    if np.any(exact):
        return float(values_arr[np.argmax(exact)])
    weights = distances ** (-power)
    return float(np.dot(weights, values_arr) / weights.sum())


class MetricInterpolator:
    """Accumulates (point, value) samples and interpolates new points.

    The search feeds it every evaluated grid point of a smooth metric
    (area, throughput) and asks for initial estimates at yet-unevaluated
    points on finer grids.
    """

    def __init__(self, space: DesignSpace, power: float = 2.0) -> None:
        self.space = space
        self.power = power
        self._coords: List[np.ndarray] = []
        self._values: List[float] = []

    def add(self, point: Point, value: float) -> None:
        if not np.isfinite(value):
            return  # infeasible samples carry no smooth information
        self._coords.append(point_coordinates(self.space, point))
        self._values.append(float(value))

    @property
    def n_samples(self) -> int:
        return len(self._values)

    def estimate(self, point: Point) -> float:
        if not self._values:
            raise DesignSpaceError("no samples added yet")
        return idw_interpolate(
            np.vstack(self._coords),
            self._values,
            point_coordinates(self.space, point),
            self.power,
        )
