"""Local sensitivity analysis of design points.

The paper classifies parameters as correlated/non-correlated and by
structure (monotonic, linear, quadratic, probabilistic) to steer the
search (Sec. 4.4).  This module measures those properties empirically:
around a given design point it perturbs one parameter at a time, prices
the neighbors, and reports per-parameter metric deltas — which both
validates a parameter classification and tells a designer which knobs
still have leverage at the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.evaluation import Evaluator
from repro.core.parameters import (
    ContinuousParameter,
    DesignSpace,
    DiscreteParameter,
    Point,
)
from repro.core.search import PointNormalizer
from repro.errors import DesignSpaceError

#: Relative step used for continuous parameters.
_CONTINUOUS_STEP_FRACTION = 0.1


@dataclass(frozen=True)
class ParameterSensitivity:
    """Metric response to perturbing one parameter at one point."""

    parameter: str
    metric: str
    #: Metric value one step below / at / one step above the point
    #: (None at a domain boundary).
    below: Optional[float]
    center: float
    above: Optional[float]

    @property
    def gradient(self) -> Optional[float]:
        """Central (or one-sided) difference, in metric units/step."""
        if self.below is not None and self.above is not None:
            return (self.above - self.below) / 2.0
        if self.above is not None:
            return self.above - self.center
        if self.below is not None:
            return self.center - self.below
        return None

    @property
    def is_monotonic_here(self) -> Optional[bool]:
        """Locally monotonic (no sign change across the point)?"""
        if self.below is None or self.above is None:
            return None
        left = self.center - self.below
        right = self.above - self.center
        return left * right >= 0

    @property
    def curvature(self) -> Optional[float]:
        """Second difference (positive = locally convex)."""
        if self.below is None or self.above is None:
            return None
        return self.above - 2.0 * self.center + self.below


def _neighbors(
    space: DesignSpace, point: Point, name: str
) -> Tuple[Optional[Point], Optional[Point]]:
    """The points one step below/above ``point`` on one axis."""
    parameter = space[name]
    below: Optional[Point] = None
    above: Optional[Point] = None
    if isinstance(parameter, DiscreteParameter):
        index = parameter.index_of(point[name])
        if index > 0:
            below = dict(point)
            below[name] = parameter.values[index - 1]
        if index < parameter.size - 1:
            above = dict(point)
            above[name] = parameter.values[index + 1]
    elif isinstance(parameter, ContinuousParameter):
        span = parameter.upper - parameter.lower
        step = span * _CONTINUOUS_STEP_FRACTION
        if step == 0:
            return None, None
        value = float(point[name])
        if value - step >= parameter.lower:
            below = dict(point)
            below[name] = value - step
        if value + step <= parameter.upper:
            above = dict(point)
            above[name] = value + step
    return below, above


def analyze_sensitivity(
    space: DesignSpace,
    point: Point,
    evaluator: Evaluator,
    metric: str,
    fidelity: int = 0,
    normalizer: Optional[PointNormalizer] = None,
    parameters: Optional[List[str]] = None,
) -> List[ParameterSensitivity]:
    """Per-parameter sensitivities of ``metric`` around ``point``."""
    names = parameters if parameters is not None else [
        p.name for p in space.parameters if not p.is_fixed
    ]

    def price(candidate: Optional[Point]) -> Optional[float]:
        if candidate is None:
            return None
        if normalizer is not None:
            candidate = normalizer(dict(candidate))
        value = evaluator.evaluate(candidate, fidelity).get(metric)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return None
        return float(value)

    center_value = price(dict(point))
    if center_value is None:
        raise DesignSpaceError(
            f"metric {metric!r} not available at the center point"
        )
    results = []
    for name in names:
        if name not in space:
            raise DesignSpaceError(f"unknown parameter {name!r}")
        below_point, above_point = _neighbors(space, point, name)
        results.append(
            ParameterSensitivity(
                parameter=name,
                metric=metric,
                below=price(below_point),
                center=center_value,
                above=price(above_point),
            )
        )
    return results


def format_sensitivity_table(
    sensitivities: List[ParameterSensitivity],
) -> str:
    """Human-readable table of a sensitivity analysis."""
    if not sensitivities:
        return "(no free parameters)"
    metric = sensitivities[0].metric
    lines = [
        f"sensitivity of {metric}:",
        f"{'parameter':>16s} {'below':>12s} {'center':>12s} {'above':>12s} "
        f"{'gradient':>10s}",
    ]

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return "-"
        if value == 0 or 1e-3 <= abs(value) < 1e5:
            return f"{value:.4g}"
        return f"{value:.2e}"

    for item in sensitivities:
        lines.append(
            f"{item.parameter:>16s} {fmt(item.below):>12s} "
            f"{fmt(item.center):>12s} {fmt(item.above):>12s} "
            f"{fmt(item.gradient):>10s}"
        )
    return "\n".join(lines)
