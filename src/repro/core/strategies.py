"""Pluggable search strategies beside the multiresolution grid funnel.

The paper's search (Sec. 4.4, :mod:`repro.core.search`) explores the
design space with a recursive grid; this module adds two alternative
exploration strategies that reuse the same evaluator stack, ranking
map, Bayesian regularization, and confirmation pass — so caching,
parallel workers, checkpoints, atlas warm starts, and the serve layer
compose with them unchanged:

- :class:`EvolutionaryStrategy` (``strategy="evolve"``): a seeded
  evolutionary search — the coarse grid seeds an initial population,
  then tournament selection plus neighbor mutation breed offspring
  generations at escalating fidelity.  Every random draw derives from
  ``SearchConfig.strategy_seed`` and the generation index alone, so
  serial, parallel, and checkpoint-resumed runs take bit-identical
  paths.
- :class:`SurrogateStrategy` (``strategy="surrogate"``): the grid
  funnel with model-ranked pruning — a cheap ridge-regression /
  nearest-neighbor blend (:class:`SurrogateModel`) is fitted on the
  normalized coordinates of everything evaluated so far (including
  atlas-replayed records) and ranks each refined grid before paying
  for it; only the most promising fraction is evaluated.  The strategy
  is RNG-free: ranking ties break on the frozen design point, so the
  selection is deterministic under any candidate ordering.  When too
  little training data exists to fit a model, a level falls back to
  evaluating its full grid (the plain grid behavior).

Both strategies leave their candidates in the search's ranked map and
let :meth:`MetacoreSearch._confirm_winner` re-price the leaders at the
evaluator's top fidelity — cheap evaluations rank, expensive ones
decide, exactly as in the grid funnel.

The module also provides the multi-criteria decision helpers
:func:`select_weighted_sum` and :func:`select_lexicographic` for
picking one design among Pareto survivors; both select only from the
Pareto front, so their answer is a front member for *any* weighting.
"""

from __future__ import annotations

import math
from functools import cmp_to_key
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluation import EvaluationRecord, Metrics
from repro.core.grid import GridSample, Region
from repro.core.objectives import DesignGoal, Objective
from repro.core.parameters import (
    ContinuousParameter,
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Point,
    frozen_point,
)
from repro.core.pareto import front_sort_key, pareto_front
from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.utils.rng import spawn_rng

#: The strategies :class:`repro.core.search.MetacoreSearch` dispatches on.
STRATEGIES = ("grid", "evolve", "surrogate")

#: Penalty weight collapsing constraint violation into score units
#: (matches the annealing baseline's scalarization).
VIOLATION_WEIGHT = 1.0e6


def validate_strategy(name: str) -> str:
    """Return ``name`` lower-cased, or raise on an unknown strategy."""
    normalized = str(name).lower()
    if normalized not in STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {name!r}; "
            f"choose one of {', '.join(STRATEGIES)}"
        )
    return normalized


def goal_scalar(goal: DesignGoal, metrics: Metrics) -> float:
    """Feasibility-first scalar score (lower is better).

    Infeasible points score ``VIOLATION_WEIGHT * (1 + violation)`` so
    any feasible point beats any infeasible one; feasible points score
    their primary objective.  Mirrors the total order of
    :meth:`DesignGoal.compare` closely enough for model fitting.
    """
    violation = goal.total_violation(metrics)
    if violation > 0:
        if not math.isfinite(violation):
            return math.inf
        return VIOLATION_WEIGHT * (1.0 + violation)
    return goal.primary.score(metrics)


# ---------------------------------------------------------------------------
# The regression surrogate
# ---------------------------------------------------------------------------


def model_features(space: DesignSpace, point: Point) -> np.ndarray:
    """Regression features of a design point.

    Correlated parameters map to one normalized [0, 1] coordinate (the
    same mapping :func:`repro.core.interpolate.point_coordinates`
    uses); *non-correlated* discrete parameters (categorical choices
    like a filter structure) are one-hot encoded instead — a linear
    model can then learn a per-category offset, where a fake numeric
    ordering of the categories would only inject noise.
    """
    features: List[float] = []
    for parameter in space.parameters:
        value = point[parameter.name]
        if isinstance(parameter, DiscreteParameter):
            if parameter.correlation is Correlation.NONE:
                index = parameter.index_of(value)
                features.extend(
                    1.0 if i == index else 0.0
                    for i in range(parameter.size)
                )
            elif parameter.size == 1:
                features.append(0.0)
            else:
                features.append(
                    parameter.index_of(value) / (parameter.size - 1)
                )
        elif isinstance(parameter, ContinuousParameter):
            span = parameter.upper - parameter.lower
            features.append(
                0.0
                if span == 0
                else (float(value) - parameter.lower) / span
            )
    return np.asarray(features, dtype=float)


class SurrogateModel:
    """Ridge regression blended with nearest-neighbor lookup.

    Features are the normalized unit-cube coordinates of a design point
    (:func:`model_features`, one-hot for categoricals); the target is
    the scalarized goal score.  The ridge half captures the smooth
    global trend (area and throughput are smooth in the paper's own
    words), the nearest-neighbor half keeps the model exact near
    training samples, where the funnel refines.

    The model is fully deterministic: fitting solves a closed-form
    normal equation and prediction is a pure function of the point, so
    :meth:`rank` orders any candidate list identically regardless of
    the order the candidates are presented in (ties break on the
    frozen design point).
    """

    def __init__(
        self,
        space: DesignSpace,
        ridge_lambda: float = 1e-3,
        nn_weight: float = 0.5,
    ) -> None:
        self.space = space
        self.ridge_lambda = float(ridge_lambda)
        self.nn_weight = float(nn_weight)
        self._weights: Optional[np.ndarray] = None
        self._train_coords: Optional[np.ndarray] = None
        self._train_scores: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._train_scores is None else len(self._train_scores)

    def fit(self, points: Sequence[Point], scores: Sequence[float]) -> bool:
        """Fit on (point, scalar score) samples; returns fit success.

        Infeasible samples carry a :data:`VIOLATION_WEIGHT`-scale
        penalty that would swamp the regression: a feasible candidate
        whose nearest training neighbor happens to be infeasible would
        inherit a penalty-scale prediction and be pruned no matter how
        good its own region looks.  They are instead compressed
        monotonically into a narrow band one score-span above the worst
        feasible sample — still repelling the ranking, ordered by
        violation, without poisoning their feasible neighbors.
        Non-finite scores (dead points) land at the top of that band.
        With no finite sample at all the model stays unfitted (the
        strategy then falls back to grid evaluation).
        """
        if len(points) != len(scores):
            raise ConfigurationError("points and scores lengths disagree")
        if not points:
            return False
        y = np.asarray([float(s) for s in scores], dtype=float)
        finite = np.isfinite(y)
        if not finite.any():
            return False
        feasible = finite & (y < VIOLATION_WEIGHT)
        if feasible.any():
            lo = float(y[feasible].min())
            hi = float(y[feasible].max())
        else:
            lo, hi = 0.0, 1.0
        cap = hi + max(hi - lo, 1.0)
        safe = np.where(finite, y, np.inf)
        y = np.where(
            feasible, y, cap + np.arctan(safe / VIOLATION_WEIGHT)
        )
        coords = np.vstack(
            [model_features(self.space, point) for point in points]
        )
        design = np.hstack([coords, np.ones((coords.shape[0], 1))])
        gram = design.T @ design + self.ridge_lambda * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ y)
        self._train_coords = coords
        self._train_scores = y
        return True

    def predict(self, point: Point) -> float:
        """Predicted scalar score of a single point (lower = better)."""
        return float(self.predict_many([point])[0])

    def predict_many(self, points: Sequence[Point]) -> np.ndarray:
        """Vectorized prediction; aligns with ``points`` order."""
        if not self.is_fitted:
            raise ConfigurationError("surrogate model is not fitted")
        assert self._train_coords is not None
        assert self._train_scores is not None
        if len(points) == 0:
            return np.empty(0, dtype=float)
        coords = np.vstack(
            [model_features(self.space, point) for point in points]
        )
        design = np.hstack([coords, np.ones((coords.shape[0], 1))])
        ridge = design @ self._weights
        # Nearest training neighbor; distance ties resolve to the best
        # (lowest) score among the tied neighbors, which is independent
        # of training insertion order.
        distances = np.linalg.norm(
            coords[:, None, :] - self._train_coords[None, :, :], axis=2
        )
        nearest = distances.min(axis=1)
        nn = np.array(
            [
                self._train_scores[
                    np.isclose(row, near, rtol=0.0, atol=1e-12)
                ].min()
                for row, near in zip(distances, nearest)
            ]
        )
        return (1.0 - self.nn_weight) * ridge + self.nn_weight * nn

    def rank(self, points: Sequence[Point]) -> List[int]:
        """Indices of ``points`` ordered best-predicted first.

        The order is invariant under any shuffle of ``points``:
        predictions are pure per-point functions and ties break on the
        frozen (sorted-key) design point, never on list position.
        """
        predictions = self.predict_many(points)
        keyed = [
            (float(prediction), frozen_point(point), index)
            for index, (prediction, point) in enumerate(
                zip(predictions, points)
            )
        ]
        keyed.sort(key=lambda item: (item[0], _tie_key(item[1])))
        return [index for _, _, index in keyed]


def _tie_key(key: Tuple) -> Tuple:
    """A totally ordered stand-in for a frozen point (mixed types)."""
    return tuple((name, repr(value)) for name, value in key)


# ---------------------------------------------------------------------------
# Multi-criteria decision helpers
# ---------------------------------------------------------------------------


def select_weighted_sum(
    records: Sequence[EvaluationRecord],
    objectives: Sequence[Objective],
    weights: Sequence[float],
) -> EvaluationRecord:
    """Pick one Pareto survivor by weighted-sum scalarization.

    Objective scores are min-max normalized over the front before
    weighting, so weights express relative priorities rather than unit
    conversions.  The candidate pool is the Pareto front itself, so the
    selection is a front member for any non-negative weighting; ties
    break on the front's deterministic sort key.
    """
    if len(weights) != len(objectives):
        raise ConfigurationError(
            f"{len(objectives)} objectives need {len(objectives)} weights, "
            f"got {len(weights)}"
        )
    if any(w < 0 for w in weights):
        raise ConfigurationError("MCDM weights must be non-negative")
    front = pareto_front(records, objectives)
    if not front:
        raise ConfigurationError("no records to select from")
    columns = []
    for objective in objectives:
        scores = [objective.score(record.metrics) for record in front]
        finite = [s for s in scores if math.isfinite(s)]
        lo = min(finite) if finite else 0.0
        hi = max(finite) if finite else 0.0
        span = hi - lo
        cap = 1.0 if finite else 0.0
        columns.append(
            [
                (min(max((s - lo) / span, 0.0), 1.0) if span > 0 else 0.0)
                if math.isfinite(s)
                else cap
                for s in scores
            ]
        )
    totals = [
        sum(weight * column[i] for weight, column in zip(weights, columns))
        for i in range(len(front))
    ]
    best_index = min(
        range(len(front)),
        key=lambda i: (totals[i], front_sort_key(front[i], objectives)),
    )
    return front[best_index]


def select_lexicographic(
    records: Sequence[EvaluationRecord],
    objectives: Sequence[Objective],
    priority: Optional[Sequence[str]] = None,
) -> EvaluationRecord:
    """Pick one Pareto survivor by strict objective priority.

    ``priority`` names objectives most-important first (default: the
    order given).  The winner minimizes the first objective's score,
    breaking ties with the next, and so on; the final tie-break is the
    front's deterministic sort key, and the pool is the Pareto front,
    so the answer is always a front member.
    """
    front = pareto_front(records, objectives)
    if not front:
        raise ConfigurationError("no records to select from")
    by_name = {objective.metric: objective for objective in objectives}
    if priority is None:
        ordered = list(objectives)
    else:
        unknown = [name for name in priority if name not in by_name]
        if unknown:
            raise ConfigurationError(
                f"priority names unknown objectives: {', '.join(unknown)}"
            )
        ordered = [by_name[name] for name in priority]
        ordered.extend(o for o in objectives if o.metric not in set(priority))
    return min(
        front,
        key=lambda record: (
            tuple(objective.score(record.metrics) for objective in ordered),
            front_sort_key(record, objectives),
        ),
    )


# ---------------------------------------------------------------------------
# Exploration strategies (driven by MetacoreSearch)
# ---------------------------------------------------------------------------


class EvolutionaryStrategy:
    """Seeded tournament-selection + mutation exploration.

    The coarse grid (the same one the grid funnel starts from) seeds
    and prices the initial population at fidelity 0; each generation
    then breeds ``evolve_population`` offspring by binary tournament
    over the current elite and a neighbor mutation of the winner, and
    prices them at a fidelity that escalates with the generation index
    — cheap early exploration, accurate late refinement, exactly the
    funnel's schedule.

    Determinism: each generation's RNG is
    ``spawn_rng(strategy_seed, "evolve", generation)`` and offspring
    are bred serially before the batch is priced, so the path depends
    only on the seed and the (deterministic) evaluated metrics — never
    on timing, worker count, or checkpoint replay.
    """

    name = "evolve"

    def __init__(self, search) -> None:
        self.search = search

    def explore(self) -> int:
        """Populate the search's ranked map; returns evaluations saved.

        "Saved" counts evaluation requests answered by the cache
        (offspring that re-proposed an already-priced design at the
        same or lower fidelity) — proposals that cost nothing.
        """
        search = self.search
        config = search.config
        registry = get_registry()
        tracer = get_tracer()
        population_size = max(2, int(config.evolve_population))
        generations = max(0, int(config.evolve_generations))
        hits_before = search.evaluator.cache_hits
        full = Region.full(search.space)
        search._regions_seen.add((full.bounds, 0))
        registry.counter("search.regions").inc()
        with tracer.span("search.evolve.seed") as seed_span:
            seeds = self._initial_population(full, population_size)
            priced = search.evaluator.evaluate_many(
                seeds, search._fidelity_for_level(0)
            )
            for seed, raw_metrics in zip(seeds, priced):
                metrics = search._apply_bayes(seed, dict(raw_metrics))
                search._record_ranked(frozen_point(seed), metrics)
            seed_span.set(seeds=len(seeds))
        population = self._elite(population_size)
        for generation in range(1, generations + 1):
            if not population:
                break
            level = min(generation, config.max_resolution)
            fidelity = search._fidelity_for_level(level)
            rng = spawn_rng(config.strategy_seed, "evolve", generation)
            offspring: List[Point] = []
            batch_keys: set = set()
            for _ in range(population_size):
                parent = self._tournament(population, rng)
                child = search._normalize(
                    _mutate_point(search.space, dict(parent), rng)
                )
                key = frozen_point(child)
                if key in batch_keys:
                    continue  # duplicate proposal within the batch
                batch_keys.add(key)
                offspring.append(child)
            with tracer.span(
                "search.evolve.generation",
                generation=generation,
                fidelity=fidelity,
                offspring=len(offspring),
            ):
                priced = search.evaluator.evaluate_many(offspring, fidelity)
                for child, raw_metrics in zip(offspring, priced):
                    metrics = search._apply_bayes(child, dict(raw_metrics))
                    search._record_ranked(frozen_point(child), metrics)
            population = self._elite(population_size)
        self._polish()
        saved = search.evaluator.cache_hits - hits_before
        registry.counter(f"search.strategy.{self.name}.evals_saved").inc(
            saved
        )
        return saved

    def _initial_population(
        self, full: Region, population_size: int
    ) -> List[Point]:
        """Coarse grid corners plus seeded uniform draws.

        The coarse grid anchors the population on the same footing the
        grid funnel starts from; uniform draws (derived from the
        strategy seed alone) add the diversity a 2-samples-per-axis
        grid lacks.
        """
        search = self.search
        config = search.config
        grid = full.grid(0, config.max_grid_points)
        seeds: List[Point] = []
        seen: set = set()
        for raw in grid.points:
            point = search._normalize(dict(raw))
            key = frozen_point(point)
            if key in seen:
                continue
            seen.add(key)
            seeds.append(point)
        rng = spawn_rng(config.strategy_seed, "evolve", "init")
        attempts = 0
        while len(seeds) < population_size and attempts < 20 * population_size:
            attempts += 1
            point = search._normalize(_random_point(search.space, rng))
            key = frozen_point(point)
            if key in seen:
                continue
            seen.add(key)
            seeds.append(point)
        return seeds

    def _elite(self, population_size: int) -> List[Point]:
        """The current top candidates of the whole ranked map."""
        search = self.search
        ranked = search._ranked
        keys = sorted(
            ranked,
            key=cmp_to_key(
                lambda a, b: search.goal.compare(ranked[a], ranked[b])
            ),
        )
        return [dict(key) for key in keys[:population_size]]

    #: Hill-climb rounds after the last generation (each round prices
    #: the unexplored one-step neighborhoods of the top elites).
    POLISH_ROUNDS = 12
    #: Hill climbs run from this many elites at once.  A single-start
    #: climb gets trapped when the incumbent sits in the wrong basin
    #: (e.g. the feasibility ridge between filter structures); climbing
    #: the top few in lockstep lets a runner-up's basin overtake.
    POLISH_STARTS = 3

    def _polish(self) -> None:
        """Deterministic multi-start hill climb from the top elites.

        Evolution gets close; a short steepest-descent walk over the
        one-step neighborhood finishes the job, making the final
        selection locally optimal in grid-index space — the same
        property the grid funnel's deepest refinement delivers.
        Converges when a round proposes nothing new.
        """
        search = self.search
        config = search.config
        fidelity = search._fidelity_for_level(config.max_resolution)
        tracer = get_tracer()
        with tracer.span(
            "search.evolve.polish", fidelity=fidelity
        ) as polish_span:
            rounds = 0
            seen: set = set()
            for _ in range(self.POLISH_ROUNDS):
                neighbors = self._polish_proposals(seen)
                if not neighbors:
                    break  # every elite basin is locally optimal
                rounds += 1
                priced = search.evaluator.evaluate_many(neighbors, fidelity)
                for neighbor, raw_metrics in zip(neighbors, priced):
                    metrics = search._apply_bayes(
                        neighbor, dict(raw_metrics)
                    )
                    search._record_ranked(frozen_point(neighbor), metrics)
            polish_span.set(rounds=rounds)

    def _polish_proposals(self, seen: set) -> List[Point]:
        """One round of unseen hill-climb proposals from the elites.

        Elites are grouped into *tie classes* (identical objective
        metrics under the goal's total order) so the top
        :attr:`POLISH_STARTS` classes are genuinely different basins —
        a plateau (e.g. a continuous axis that does not move the
        objective) would otherwise flood every start with variants of
        one design.  Within a class, members are tried in rank order
        until one still has unseen neighbors: that is what lets the
        climb *drift across* a plateau (each round advances one step
        along the flat axis) instead of stalling on its exhausted
        first member.
        """
        search = self.search
        ranked = search._ranked
        classes: List[Metrics] = []
        productive: set = set()
        proposals: List[Point] = []
        for point in self._elite(len(ranked)):
            metrics = ranked[frozen_point(point)]
            tie_class = next(
                (
                    index
                    for index, chosen in enumerate(classes)
                    if search.goal.compare(metrics, chosen) == 0
                ),
                None,
            )
            if tie_class is None:
                if len(classes) >= self.POLISH_STARTS:
                    continue
                classes.append(metrics)
                tie_class = len(classes) - 1
            if tie_class in productive:
                continue
            seen.add(frozen_point(point))
            fresh = self._neighborhood(point, seen)
            if fresh:
                proposals.extend(fresh)
                productive.add(tie_class)
            if len(productive) >= self.POLISH_STARTS:
                break
        return proposals

    def _neighborhood(self, incumbent: Point, seen: set) -> List[Point]:
        """One-step neighbors of ``incumbent`` not yet in ``seen``.

        Ordered axes move one index (discrete) or 10% of the span
        (continuous) in each direction; categorical axes
        (:attr:`Correlation.NONE`) propose every alternative value,
        since their indices carry no geometry.  Updates ``seen``.
        """
        search = self.search
        neighbors: List[Point] = []
        for parameter in search.space.parameters:
            if parameter.is_fixed:
                continue
            if isinstance(parameter, DiscreteParameter):
                if parameter.correlation is Correlation.NONE:
                    moves = [
                        value
                        for value in parameter.values
                        if value != incumbent[parameter.name]
                    ]
                else:
                    position = parameter.index_of(
                        incumbent[parameter.name]
                    )
                    moves = [
                        parameter.values[position + step]
                        for step in (-1, 1)
                        if 0 <= position + step < parameter.size
                    ]
            elif isinstance(parameter, ContinuousParameter):
                span = parameter.upper - parameter.lower
                value = float(incumbent[parameter.name])
                moves = [
                    min(
                        max(value + step, parameter.lower),
                        parameter.upper,
                    )
                    for step in (-0.1 * span, 0.1 * span)
                ]
            else:  # pragma: no cover - union is exhaustive
                continue
            for moved in moves:
                neighbor = dict(incumbent)
                neighbor[parameter.name] = moved
                neighbor = search._normalize(neighbor)
                key = frozen_point(neighbor)
                if key in seen:
                    continue
                seen.add(key)
                neighbors.append(neighbor)
        return neighbors

    def _tournament(
        self, population: List[Point], rng: np.random.Generator
    ) -> Point:
        """Binary tournament: two uniform draws, the better one wins."""
        search = self.search
        first = population[int(rng.integers(len(population)))]
        second = population[int(rng.integers(len(population)))]
        metrics_a = search._ranked.get(frozen_point(first))
        metrics_b = search._ranked.get(frozen_point(second))
        if metrics_a is None:
            return second
        if metrics_b is None:
            return first
        return (
            first
            if search.goal.compare(metrics_a, metrics_b) <= 0
            else second
        )


def _random_point(
    space: DesignSpace, rng: np.random.Generator
) -> Point:
    """One uniform draw from the design space."""
    point: Point = {}
    for parameter in space.parameters:
        if isinstance(parameter, DiscreteParameter):
            point[parameter.name] = parameter.values[
                int(rng.integers(parameter.size))
            ]
        elif isinstance(parameter, ContinuousParameter):
            point[parameter.name] = float(
                rng.uniform(parameter.lower, parameter.upper)
            )
    return point


def _mutate_point(
    space: DesignSpace, point: Point, rng: np.random.Generator
) -> Point:
    """Perturb one or two free parameters of a design point.

    Discrete steps draw an exponential magnitude in index space —
    mostly adjacent moves (the annealing baseline's neighborhood) with
    an occasional long jump, plus a small uniform-resample chance; the
    mix keeps locality without trapping the population in a basin.
    """
    free = [p for p in space.parameters if not p.is_fixed]
    mutated = dict(point)
    if not free:
        return mutated
    n_moves = 2 if (len(free) > 1 and rng.random() < 0.3) else 1
    chosen = rng.choice(len(free), size=n_moves, replace=False)
    for index in chosen:
        parameter = free[int(index)]
        if isinstance(parameter, DiscreteParameter):
            if (
                parameter.correlation is Correlation.NONE
                or rng.random() < 0.1
            ):
                # Categorical axes have no index geometry — a "step" is
                # meaningless, so always resample uniformly.
                mutated[parameter.name] = parameter.values[
                    int(rng.integers(parameter.size))
                ]
                continue
            position = parameter.index_of(mutated[parameter.name])
            step = 1 + int(rng.exponential(0.15 * parameter.size))
            if rng.random() < 0.5:
                step = -step
            position = min(max(position + step, 0), parameter.size - 1)
            mutated[parameter.name] = parameter.values[position]
        elif isinstance(parameter, ContinuousParameter):
            span = parameter.upper - parameter.lower
            value = float(mutated[parameter.name]) + float(
                rng.normal(0.0, 0.15 * span)
            )
            mutated[parameter.name] = min(
                max(value, parameter.lower), parameter.upper
            )
    return mutated


class SurrogateStrategy:
    """The grid funnel with model-ranked pruning of refined grids.

    Level 0 evaluates the full coarse grid (identical to the grid
    strategy — this is also the model's training set); every deeper
    level ranks the refined regions' candidate grids with the
    :class:`SurrogateModel` and evaluates only the top
    ``surrogate_keep`` fraction (never fewer than ``refine_top_k``
    candidates, and always including each region's anchor point, so the
    greedy funnel's own descent path stays priced).  The model is
    refitted after every level on everything evaluated so far —
    including records replayed from the atlas or a persistent cache,
    which sharpen the ranking for free.

    Pruned candidates are counted as saved evaluations
    (``search.strategy.surrogate.evals_saved``).  Levels that cannot
    fit a model (no finite training scores yet) fall back to full grid
    evaluation and are counted in
    ``search.strategy.surrogate.fallbacks``.
    """

    name = "surrogate"

    def __init__(self, search) -> None:
        self.search = search
        self.model = SurrogateModel(search.space)

    def explore(self) -> int:
        """Run the pruned funnel; returns candidate evaluations saved."""
        search = self.search
        self._training_points: List[Point] = []
        self._training_scores: List[float] = []
        self._saved = 0
        self._fallbacks = 0

        # Records already in the cache (atlas replay, preloads) are
        # free training data for the first fit.
        for key, _fidelity, metrics in search.evaluator.cached_records():
            point = dict(key)
            try:
                search.space.validate_point(point)
            except Exception:
                continue  # replayed from an incompatible space slice
            self._absorb(point, metrics)
        if self._training_points:
            self._refit()

        self._walk(Region.full(search.space), level=0, anchor=None)

        registry = get_registry()
        registry.counter(f"search.strategy.{self.name}.evals_saved").inc(
            self._saved
        )
        if self._fallbacks:
            registry.counter(
                f"search.strategy.{self.name}.fallbacks"
            ).inc(self._fallbacks)
        return self._saved

    def _walk(
        self, region: Region, level: int, anchor: Optional[Point]
    ) -> None:
        """One recursion of the grid funnel, with model pruning.

        This deliberately mirrors ``MetacoreSearch._search_region``
        step for step — same depth-first descent order, same
        ``(bounds, level)`` region dedupe, same per-region grid with
        duplicates across sibling regions re-submitted — because the
        Bayesian BER regularization accumulates per-point state whose
        posteriors depend on evaluation order.  The only deviation is
        the pruning step: a fitted model ranks the region's grid and
        only the top ``surrogate_keep`` fraction (plus the survivor
        point that spawned the region) is priced.
        """
        search = self.search
        config = search.config
        goal = search.goal
        region_key = (region.bounds, level)
        if region_key in search._regions_seen:
            return
        search._regions_seen.add(region_key)
        registry = get_registry()
        registry.counter("search.regions").inc()
        tracer = get_tracer()
        with tracer.span("search.region", level=level) as region_span:
            resolution = level * config.resolution_increment
            grid = region.grid(resolution, config.max_grid_points)
            fidelity = search._fidelity_for_level(level)
            points: List[Point] = []
            seen: set = set()
            for raw_point in grid.points:
                point = search._normalize(dict(raw_point))
                key = frozen_point(point)
                if key in seen:
                    continue  # normalization may collapse grid points
                seen.add(key)
                points.append(point)
            kept = self._prune(points, level, anchor)
            priced = search.evaluator.evaluate_many(kept, fidelity)
            evaluated: List[Tuple[Point, Metrics]] = []
            for point, raw_metrics in zip(kept, priced):
                metrics = search._apply_bayes(point, dict(raw_metrics))
                search._record_ranked(frozen_point(point), metrics)
                self._absorb(point, metrics)
                evaluated.append((point, metrics))
            self._refit()
            registry.counter("search.grid_points").inc(len(kept))
            region_span.set(
                grid_points=len(grid.points),
                evaluated=len(evaluated),
                fidelity=fidelity,
            )
            if level >= config.max_resolution:
                region_span.set(survivors=0)
                return
            ranked = sorted(
                evaluated,
                key=cmp_to_key(lambda a, b: goal.compare(a[1], b[1])),
            )
            survivors: List[Tuple[Point, Region]] = []
            for point, metrics in ranked[: config.refine_top_k]:
                if not math.isfinite(
                    goal.primary.score(metrics)
                ) and not math.isfinite(goal.total_violation(metrics)):
                    continue  # nothing to learn from a dead region
                grid_point = search._closest_grid_point(point, grid)
                if grid_point is None:
                    continue
                survivors.append(
                    (point, region.refine_around(grid_point, grid.samples))
                )
            region_span.set(survivors=len(survivors))
            registry.counter("search.survivors").inc(len(survivors))
        for point, sub_region in survivors:
            self._walk(sub_region, level + 1, anchor=point)

    def _prune(
        self, points: List[Point], level: int, anchor: Optional[Point]
    ) -> List[Point]:
        """Model-ranked subset of a region's grid worth pricing.

        The coarse level-0 grid is never pruned (it is the training
        set); deeper levels without a fitted model fall back to the
        full grid.  The anchor — the survivor whose refinement created
        this region — is always kept so the funnel's own descent path
        stays priced.
        """
        config = self.search.config
        if level == 0:
            return points
        if not self.model.is_fitted:
            self._fallbacks += 1
            return points
        anchor_key = (
            None
            if anchor is None
            else frozen_point(self.search._normalize(dict(anchor)))
        )
        with get_tracer().span(
            "search.surrogate.rank", level=level, candidates=len(points)
        ) as rank_span:
            order = self.model.rank(points)
            n_keep = max(
                1, math.ceil(config.surrogate_keep * len(points))
            )
            kept_indices = set(order[:n_keep])
            if anchor_key is not None:
                for index, point in enumerate(points):
                    if frozen_point(point) == anchor_key:
                        kept_indices.add(index)
            # Keep grid order, not rank order: the Bayesian BER
            # regularization is order-sensitive and must see the same
            # sequence the unpruned funnel would.
            kept = [
                point
                for index, point in enumerate(points)
                if index in kept_indices
            ]
            self._saved += len(points) - len(kept)
            rank_span.set(
                kept=len(kept), pruned=len(points) - len(kept)
            )
        return kept

    def _absorb(self, point: Point, metrics: Metrics) -> None:
        self._training_points.append(dict(point))
        self._training_scores.append(
            goal_scalar(self.search.goal, metrics)
        )

    def _refit(self) -> None:
        with get_tracer().span(
            "search.surrogate.fit", samples=len(self._training_points)
        ) as fit_span:
            fitted = self.model.fit(
                self._training_points, self._training_scores
            )
            fit_span.set(fitted=fitted)
