"""Multiresolution grids and region refinement (paper Fig. 6).

The search starts "on a fixed grid in the solution space" and refines
"regions enclosed by the points that are more likely to contain
promising solutions".  A :class:`Region` is an axis-aligned box in the
design space (index ranges over discrete parameters, intervals over
continuous ones); ``Region.grid`` samples it at a resolution, and
``refine_around`` builds the sub-region enclosed by a promising point's
grid neighbors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.parameters import (
    DesignSpace,
    DiscreteParameter,
    Point,
)
from repro.errors import DesignSpaceError

#: The paper's initial evaluation budget per grid.
DEFAULT_MAX_GRID_POINTS = 256

#: Per-free-dimension samples at resolution r (2 at the coarsest grid:
#: 8 free dimensions x 2 = 256 instances, the paper's initial budget).
BASE_SAMPLES_PER_DIM = 2

Bounds = Union[Tuple[int, int], Tuple[float, float]]


@dataclass(frozen=True)
class GridSample:
    """A sampled grid: the points plus the per-dimension sample lists
    (needed later to find a point's grid neighbors for refinement)."""

    points: Tuple[Point, ...]
    samples: Dict[str, Sequence[object]]


@dataclass(frozen=True)
class Region:
    """An axis-aligned box within a design space.

    ``bounds`` maps each parameter name to an inclusive (lo, hi) pair:
    value *indices* for discrete parameters, raw values for continuous
    ones.
    """

    space: DesignSpace
    bounds: Tuple[Tuple[str, Bounds], ...]

    @classmethod
    def full(cls, space: DesignSpace) -> "Region":
        bounds = []
        for parameter in space.parameters:
            if isinstance(parameter, DiscreteParameter):
                bounds.append((parameter.name, (0, parameter.size - 1)))
            else:
                bounds.append((parameter.name, (parameter.lower, parameter.upper)))
        return cls(space=space, bounds=tuple(bounds))

    def bound_of(self, name: str) -> Bounds:
        for bound_name, bound in self.bounds:
            if bound_name == name:
                return bound
        raise DesignSpaceError(f"region has no bound for {name!r}")

    def _with_bound(self, name: str, bound: Bounds) -> "Region":
        return Region(
            space=self.space,
            bounds=tuple(
                (n, bound if n == name else b) for n, b in self.bounds
            ),
        )

    # ------------------------------------------------------------------

    def grid(
        self,
        resolution: int,
        max_points: int = DEFAULT_MAX_GRID_POINTS,
    ) -> GridSample:
        """Sample the region at a resolution, within the point budget.

        Each non-fixed dimension gets ``BASE_SAMPLES_PER_DIM +
        resolution`` evenly spaced samples (clipped to what the region
        holds); if the Cartesian product exceeds ``max_points`` the
        largest dimensions lose samples first.
        """
        if resolution < 0:
            raise DesignSpaceError("resolution must be non-negative")
        if max_points < 1:
            raise DesignSpaceError("max_points must be positive")
        target = BASE_SAMPLES_PER_DIM + resolution
        counts: Dict[str, int] = {}
        for parameter in self.space.parameters:
            lo, hi = self.bound_of(parameter.name)
            if isinstance(parameter, DiscreteParameter):
                available = int(hi) - int(lo) + 1
                if not parameter.correlation.is_correlated:
                    # Non-correlated (categorical) parameters carry no
                    # neighborhood structure to refine: enumerate them
                    # fully (Sec. 4.4's parameter classification).
                    counts[parameter.name] = available
                    continue
            else:
                available = 1 if lo == hi else target
            counts[parameter.name] = min(target, available)
        counts = _apply_budget(counts, max_points)

        samples: Dict[str, Sequence[object]] = {}
        value_lists: List[Sequence[object]] = []
        for parameter in self.space.parameters:
            lo, hi = self.bound_of(parameter.name)
            count = counts[parameter.name]
            if isinstance(parameter, DiscreteParameter):
                indices = parameter.sample_indices(int(lo), int(hi), count)
                values = [parameter.values[i] for i in indices]
            else:
                values = parameter.sample(float(lo), float(hi), count)
            samples[parameter.name] = values
            value_lists.append(values)
        points = tuple(
            dict(zip(self.space.names, combo))
            for combo in itertools.product(*value_lists)
        )
        return GridSample(points=points, samples=samples)

    # ------------------------------------------------------------------

    def refine_around(self, point: Point, samples: Dict[str, Sequence[object]]) -> "Region":
        """The sub-region enclosed by ``point``'s grid neighbors.

        For each dimension, the new bounds run from the sample just
        below the point's value to the sample just above it (clipped to
        this region) — the paper's "regions enclosed by the points".
        """
        region = self
        for parameter in self.space.parameters:
            name = parameter.name
            sampled = list(samples[name])
            value = point[name]
            if value not in sampled:
                raise DesignSpaceError(
                    f"point value {value!r} for {name} was not a grid sample"
                )
            position = sampled.index(value)
            lo_sample = sampled[max(position - 1, 0)]
            hi_sample = sampled[min(position + 1, len(sampled) - 1)]
            if isinstance(parameter, DiscreteParameter):
                bound: Bounds = (
                    parameter.index_of(lo_sample),
                    parameter.index_of(hi_sample),
                )
            else:
                bound = (float(lo_sample), float(hi_sample))
            region = region._with_bound(name, bound)
        return region

    def volume_fraction(self) -> float:
        """Fraction of the full space this region spans (for reports)."""
        fraction = 1.0
        for parameter in self.space.parameters:
            lo, hi = self.bound_of(parameter.name)
            if isinstance(parameter, DiscreteParameter):
                if parameter.size > 1:
                    fraction *= (int(hi) - int(lo) + 1) / parameter.size
            else:
                full = parameter.upper - parameter.lower
                if full > 0:
                    fraction *= (float(hi) - float(lo)) / full
        return fraction


def _apply_budget(counts: Dict[str, int], max_points: int) -> Dict[str, int]:
    """Trim per-dimension sample counts until their product fits."""
    counts = dict(counts)

    def product() -> int:
        total = 1
        for count in counts.values():
            total *= count
        return total

    while product() > max_points:
        name = max(
            (n for n, c in counts.items() if c > 1),
            key=lambda n: counts[n],
            default=None,
        )
        if name is None:
            break
        counts[name] -= 1
    return counts
