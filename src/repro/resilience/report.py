"""Human-readable rendering of campaign results.

Turns a :class:`~repro.resilience.campaign.CampaignResult` into the
``campaign-report`` CLI output: BER degradation curves per (design,
storage class), the masked/degraded/decode-failure breakdown, and the
critical-bit fraction ranking of the storage classes.
"""

from __future__ import annotations

from typing import List

from repro.resilience.campaign import CampaignResult
from repro.resilience.faults import NO_TARGET


def _format_ber(value: float) -> str:
    if value != value:  # NaN
        return "      n/a"
    return f"{value:9.3e}"


def format_campaign_report(result: CampaignResult) -> str:
    """Render a campaign result as a text report."""
    config = result.config
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append("fault-injection campaign report")
    lines.append("=" * 72)
    lines.append(
        f"model: {config.model}, seed: {config.seed}, "
        f"word: {config.word_bits}.{config.frac_bits} fixed-point, "
        f"{config.max_bits} bits/cell"
    )
    n_designs = len({cell.label for cell in result.cells})
    lines.append(
        f"cells: {len(result.cells)} ({n_designs} designs x "
        f"{len(config.targets)} classes x {len(config.rates)} rates x "
        f"{len(config.es_n0_db)} SNRs + references)"
    )
    lines.append(
        f"injected faults: {result.total_injected()}, "
        f"persistent-hits: {result.persistent_hits}, "
        f"time: cpu {result.cpu_time_s:.3f}s / wall {result.wall_time_s:.3f}s"
    )

    curves = result.degradation_curves()
    snrs = sorted(config.es_n0_db)
    for (label, target), by_rate in sorted(curves.items()):
        if target == NO_TARGET:
            continue
        lines.append("")
        lines.append(f"{label}  [{target}]")
        header = "  rate      " + " ".join(f"Es/N0={s:+.1f}dB" for s in snrs)
        lines.append(header)
        for rate in sorted(by_rate):
            row = by_rate[rate]
            cells = " ".join(
                f"{_format_ber(row[s]):>12s}" if s in row else f"{'-':>12s}"
                for s in snrs
            )
            tag = "ref" if rate == 0.0 else f"{rate:.1e}"
            lines.append(f"  {tag:<9s} {cells}")

    counts = result.classification_counts()
    if counts:
        total = sum(counts.values())
        lines.append("")
        lines.append("failure-mode classification (injected cells):")
        for name in ("masked", "degraded", "decode_failure"):
            count = counts.get(name, 0)
            share = 100.0 * count / total if total else 0.0
            lines.append(f"  {name:<16s} {count:>6d}  ({share:5.1f}%)")

    critical = result.critical_fraction()
    if critical:
        lines.append("")
        lines.append("critical-bit fraction per storage class:")
        ranked = sorted(critical.items(), key=lambda kv: kv[1], reverse=True)
        for target, fraction in ranked:
            bar = "#" * int(round(fraction * 40))
            lines.append(f"  {target:<16s} {fraction:6.1%}  {bar}")
    return "\n".join(lines)
