"""Dependability engineering for MetaCore instances and searches.

Two halves:

- **Fault injection** (:mod:`~repro.resilience.faults`,
  :mod:`~repro.resilience.campaign`, :mod:`~repro.resilience.report`):
  deterministic SEU/stuck-at fault models with injection points in the
  Viterbi datapath and IIR state words, and a campaign runner that
  sweeps fault-rate × design-point grids and classifies the outcomes
  DAVOS-style (masked / degraded / decode-failure).
- **Crash-tolerant sessions** (:mod:`~repro.resilience.session`,
  :mod:`~repro.resilience.shim`): atomic per-round search checkpoints
  with resume, and a retry/backoff/quarantine evaluator shim so one
  poisoned design point cannot take down a whole search.
"""

from repro.resilience.campaign import (
    Campaign,
    CampaignCell,
    CampaignConfig,
    CampaignEvaluator,
    CampaignResult,
)
from repro.resilience.faults import (
    FAULT_MODELS,
    NO_TARGET,
    STORAGE_CLASSES,
    FaultInjector,
    FaultSpec,
    simulate_with_faults,
)
from repro.resilience.report import format_campaign_report
from repro.resilience.session import (
    CheckpointingEvaluator,
    RoundBudgetExceeded,
    SearchSession,
    SessionResult,
)
from repro.resilience.shim import DEFAULT_FAILURE_METRICS, ResilientEvaluator

__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignConfig",
    "CampaignEvaluator",
    "CampaignResult",
    "CheckpointingEvaluator",
    "DEFAULT_FAILURE_METRICS",
    "FAULT_MODELS",
    "FaultInjector",
    "FaultSpec",
    "NO_TARGET",
    "ResilientEvaluator",
    "RoundBudgetExceeded",
    "STORAGE_CLASSES",
    "SearchSession",
    "SessionResult",
    "format_campaign_report",
    "simulate_with_faults",
]
