"""Crash-tolerant search sessions: atomic checkpoints + resume.

A production search over a real specification runs for hours; a worker
crash, an OOM kill, or a pre-empted machine must not throw that work
away.  This module makes a :class:`~repro.core.search.MetacoreSearch`
restartable:

- :class:`CheckpointingEvaluator` sits under the search's in-memory
  cache and writes an **atomic JSON checkpoint** (temp file +
  ``os.replace``) after every computed evaluation round, recording each
  priced (point, fidelity, metrics) triple;
- on resume, the checkpoint's records answer their evaluations
  **bit-identically** (JSON round-trips Python floats exactly), so the
  search replays deterministically — it fast-forwards through the
  restored rounds without touching the inner evaluator and continues
  from where the crashed run stopped, reaching the *same final
  selection* as an uninterrupted run;
- :class:`SearchSession` bundles the wiring: it builds the search over
  the checkpointing layer, runs it, and reports how many rounds were
  restored vs. computed.

``max_rounds`` turns the evaluator into a deterministic crash machine
for tests and CI: the checkpoint for round *k* is written *before*
:class:`RoundBudgetExceeded` is raised, exactly like a kill arriving
between rounds.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.evalcache import PersistentEvalCache, evaluator_fingerprint
from repro.core.evaluation import (
    Evaluator,
    Metrics,
    TimedEvaluation,
    evaluate_many_timed,
)
from repro.core.objectives import DesignGoal
from repro.core.parameters import DesignSpace, Point, frozen_point
from repro.core.search import (
    MetacoreSearch,
    PointNormalizer,
    SearchConfig,
    SearchResult,
)
from repro.errors import ReproError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer, trace_event

#: Bump to orphan existing checkpoint files on format changes.
CHECKPOINT_SCHEMA_VERSION = 1


class RoundBudgetExceeded(ReproError):
    """The session's ``max_rounds`` budget ran out mid-search.

    The checkpoint of every completed round is already on disk when
    this is raised; re-running with ``resume=True`` continues the
    search.  Used to simulate kills deterministically in tests/CI.
    """

    def __init__(self, rounds: int, checkpoint_path: Path) -> None:
        super().__init__(
            f"evaluation round budget ({rounds}) exhausted; "
            f"checkpoint saved at {checkpoint_path}"
        )
        self.rounds = rounds
        self.checkpoint_path = checkpoint_path


class CheckpointingEvaluator:
    """Record every computed evaluation into an atomic JSON checkpoint.

    Sits between the search's in-memory cache and the real evaluator.
    Requests answered by the checkpoint cost nothing and are returned
    bit-identically to the original computation; everything else goes
    to the inner evaluator (which may itself be parallel and/or
    resilient) and is checkpointed after the batch completes.

    The checkpoint is guarded by the inner evaluator's fingerprint: a
    checkpoint written under a different seed/spec/code version is
    ignored (with a warning) rather than silently replayed.
    """

    def __init__(
        self,
        inner: Evaluator,
        checkpoint_path: Union[str, Path],
        resume: bool = False,
        max_rounds: Optional[int] = None,
    ) -> None:
        self.inner = inner
        self.checkpoint_path = Path(checkpoint_path)
        self.max_rounds = max_rounds
        self._fingerprint = evaluator_fingerprint(inner)
        #: (frozen point, fidelity) -> (metrics, elapsed_s).  Keyed by the
        #: *exact* fidelity, unlike the caching layers above: replay must
        #: answer a round with what that round actually computed, or the
        #: resumed search would see different (higher-fidelity) metrics
        #: than the original run did and could walk a different path.
        self._records: Dict[Tuple[Tuple, int], Tuple[Metrics, float]] = {}
        #: Rounds (computed batches) completed, including restored ones.
        self.rounds_completed = 0
        self.restored_rounds = 0
        self.restored_records = 0
        self.replay_hits = 0
        if resume:
            self._restore()

    # -- evaluator protocol ---------------------------------------------

    @property
    def max_fidelity(self) -> int:
        return self.inner.max_fidelity

    def fingerprint(self) -> str:
        return self._fingerprint

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self.evaluate_many_timed([point], fidelity)[0].metrics

    def evaluate_many(self, points: Sequence[Point], fidelity: int) -> List[Metrics]:
        return [t.metrics for t in self.evaluate_many_timed(points, fidelity)]

    def evaluate_many_timed(
        self, points: Sequence[Point], fidelity: int
    ) -> List[TimedEvaluation]:
        """Answer from the checkpoint where possible; compute the rest.

        Each call with at least one computed point is one *round*; the
        checkpoint is rewritten atomically after the round completes.
        """
        results: List[Optional[TimedEvaluation]] = [None] * len(points)
        misses: List[Tuple[int, Point]] = []
        for index, point in enumerate(points):
            record = self._records.get((frozen_point(point), fidelity))
            if record is not None:
                self.replay_hits += 1
                results[index] = TimedEvaluation(
                    metrics=dict(record[0]), elapsed_s=record[1]
                )
            else:
                misses.append((index, point))
        if misses:
            if (
                self.max_rounds is not None
                and self.rounds_completed >= self.max_rounds
            ):
                raise RoundBudgetExceeded(self.max_rounds, self.checkpoint_path)
            timed = evaluate_many_timed(
                self.inner, [p for _, p in misses], fidelity
            )
            for (index, point), evaluation in zip(misses, timed):
                self._records[(frozen_point(point), fidelity)] = (
                    dict(evaluation.metrics),
                    evaluation.elapsed_s,
                )
                results[index] = evaluation
            self.rounds_completed += 1
            self._save()
        return results  # type: ignore[return-value]

    # -- checkpoint I/O ---------------------------------------------------

    def _restore(self) -> None:
        if not self.checkpoint_path.exists():
            return
        try:
            with self.checkpoint_path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"checkpoint {self.checkpoint_path} is unreadable "
                f"({exc}); starting fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        if not isinstance(data, dict) or data.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            warnings.warn(
                f"checkpoint {self.checkpoint_path} has an unknown schema; "
                "starting fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        if data.get("fingerprint") != self._fingerprint:
            warnings.warn(
                f"checkpoint {self.checkpoint_path} was written by a "
                "different evaluator configuration; starting fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        for record in data.get("records", []):
            try:
                key = tuple((str(k), v) for k, v in record["point"])
                fidelity = int(record["fid"])
                metrics = {str(k): float(v) for k, v in record["metrics"].items()}
                elapsed = float(record.get("elapsed_s", 0.0))
            except (KeyError, TypeError, ValueError):
                continue
            self._records[(key, fidelity)] = (metrics, elapsed)
        self.rounds_completed = int(data.get("rounds", 0))
        self.restored_rounds = self.rounds_completed
        self.restored_records = len(self._records)
        get_registry().counter("session.restored_records").inc(self.restored_records)
        trace_event(
            "session.checkpoint_restored",
            path=str(self.checkpoint_path),
            rounds=self.restored_rounds,
            records=self.restored_records,
        )

    def _save(self) -> None:
        """Atomically rewrite the checkpoint (temp file + rename)."""
        payload: Dict[str, Any] = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": self._fingerprint,
            "rounds": self.rounds_completed,
            "records": [
                {
                    "point": [[k, v] for k, v in key],
                    "fid": fidelity,
                    "metrics": metrics,
                    "elapsed_s": elapsed,
                }
                for (key, fidelity), (metrics, elapsed) in self._records.items()
            ],
        }
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.checkpoint_path.with_name(
            self.checkpoint_path.name + ".tmp"
        )
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.checkpoint_path)
        get_registry().counter("session.checkpoint_writes").inc()
        trace_event(
            "session.checkpoint_written",
            path=str(self.checkpoint_path),
            rounds=self.rounds_completed,
            records=len(self._records),
        )


@dataclass
class SessionResult:
    """A search result plus the session's crash-tolerance accounting."""

    result: SearchResult
    #: Rounds replayed from the checkpoint (0 on a cold run).
    restored_rounds: int = 0
    #: Evaluation records restored from the checkpoint.
    restored_records: int = 0
    #: Rounds completed in total (restored + newly computed).
    rounds_completed: int = 0
    #: Quarantined points (from the resilient shim, when one is attached).
    quarantined: List[str] = field(default_factory=list)
    n_retries: int = 0

    def summary(self) -> str:
        lines = [self.result.summary()]
        lines.append(
            f"session: {self.rounds_completed} rounds "
            f"({self.restored_rounds} restored, "
            f"{self.restored_records} records from checkpoint)"
        )
        if self.n_retries:
            lines.append(f"retries: {self.n_retries}")
        if self.quarantined:
            lines.append(f"quarantined points ({len(self.quarantined)}):")
            lines.extend(f"  {entry}" for entry in self.quarantined)
        return "\n".join(lines)


@dataclass
class SearchSession:
    """A restartable :class:`MetacoreSearch` run.

    Wires the checkpointing layer (and, optionally, the resilient
    retry/quarantine shim) under a fresh search and runs it.  The same
    session parameters re-run with ``resume=True`` after a crash
    fast-forward through the checkpoint and finish the search.
    """

    space: DesignSpace
    goal: DesignGoal
    evaluator: Evaluator
    checkpoint_path: Union[str, Path]
    config: Optional[SearchConfig] = None
    normalizer: Optional[PointNormalizer] = None
    store: Optional[PersistentEvalCache] = None
    resume: bool = False
    #: Abort (with checkpoint intact) after this many computed rounds.
    max_rounds: Optional[int] = None
    #: Attach the retry/quarantine shim between checkpoint and evaluator.
    resilient: bool = False
    max_retries: int = 2
    backoff_s: float = 0.1
    timeout_s: Optional[float] = None
    #: Atlas seed source (see :class:`repro.atlas.similarity.AtlasSeeder`),
    #: forwarded to the underlying search for warm starts.
    atlas: Optional[object] = None

    def run(self) -> SessionResult:
        """Run (or resume) the search; checkpoints land on every round."""
        from repro.resilience.shim import ResilientEvaluator

        inner: Evaluator = self.evaluator
        shim: Optional[ResilientEvaluator] = None
        if self.resilient:
            shim = ResilientEvaluator(
                inner,
                max_retries=self.max_retries,
                backoff_s=self.backoff_s,
                timeout_s=self.timeout_s,
            )
            inner = shim
        checkpointer = CheckpointingEvaluator(
            inner,
            self.checkpoint_path,
            resume=self.resume,
            max_rounds=self.max_rounds,
        )
        with get_tracer().span(
            "session.run", resume=self.resume, restored=checkpointer.restored_rounds
        ):
            search = MetacoreSearch(
                self.space,
                self.goal,
                checkpointer,
                config=self.config,
                normalizer=self.normalizer,
                store=self.store,
                atlas=self.atlas,
            )
            result = search.run()
        return SessionResult(
            result=result,
            restored_rounds=checkpointer.restored_rounds,
            restored_records=checkpointer.restored_records,
            rounds_completed=checkpointer.rounds_completed,
            quarantined=shim.quarantine_summary() if shim else [],
            n_retries=shim.n_retries if shim else 0,
        )
