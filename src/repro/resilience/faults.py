"""Deterministic fault models for dependability campaigns.

A deployable MetaCore instance is characterized not only on (BER, area,
throughput) but on how gracefully it degrades under hardware faults —
the dependability-campaign methodology of SEU/stuck-at fault-injection
frameworks such as DAVOS.  This module provides the two classic fault
models over the library's simulated datapaths:

- **SEU** (single-event upset): transient bit-flips.  Each storage word
  flips a uniformly chosen bit with probability ``rate`` per update
  cycle — the soft-error model for radiation-induced upsets in
  satellite links.
- **stuck-at**: permanent faults.  A fraction ``rate`` of the bits of a
  register file is stuck at a fixed 0/1 value for the whole run — the
  manufacturing-defect / wear-out model.

Faults are injected into the *fixed-point image* of each storage word
(``word_bits`` total, ``frac_bits`` fractional), which is how the
values live in hardware; the float simulation value is quantized,
corrupted, and converted back.

Injection points (storage classes):

- ``path_metrics`` — the Viterbi accumulated-error registers,
- ``branch_metrics`` — the branch-metric values read each trellis step,
- ``traceback`` — the survivor (decision) memory,
- ``iir_state`` — the delay-line state words of an IIR realization.

Determinism
-----------
Every fault is derived from ``(seed, fault spec, instance label, block
content)`` — never from shared mutable RNG state — so the same campaign
cell produces bit-identical results no matter which worker process
prices it or in what order (serial == parallel).  With ``rate == 0``
the injector is inert: every hook returns its input unchanged without
touching an RNG, so an instrumented decoder is bit-identical to (and as
fast as) an uninstrumented one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed, make_rng

#: Supported fault models.
FAULT_MODELS: Tuple[str, ...] = ("seu", "stuck")

#: Storage classes with injection hooks.
PATH_METRICS = "path_metrics"
BRANCH_METRICS = "branch_metrics"
TRACEBACK = "traceback"
IIR_STATE = "iir_state"
STORAGE_CLASSES: Tuple[str, ...] = (
    PATH_METRICS,
    BRANCH_METRICS,
    TRACEBACK,
    IIR_STATE,
)

#: Sentinel target used for zero-rate (reference) campaign cells.
NO_TARGET = "none"


@dataclass(frozen=True)
class FaultSpec:
    """One fault configuration: model, intensity, and where it strikes.

    ``rate`` means:

    - for ``seu``: the probability that a storage word flips one bit
      per update cycle;
    - for ``stuck``: the fraction of the bits of each targeted register
      file that is permanently stuck (at least one bit once positive).
    """

    model: str = "seu"
    rate: float = 0.0
    targets: Tuple[str, ...] = (PATH_METRICS,)
    #: Fixed-point image of each storage word: total and fractional bits.
    word_bits: int = 16
    frac_bits: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in FAULT_MODELS:
            raise ConfigurationError(
                f"unknown fault model {self.model!r}; expected {FAULT_MODELS}"
            )
        if self.rate < 0.0 or self.rate > 1.0:
            raise ConfigurationError("fault rate must lie in [0, 1]")
        for target in self.targets:
            if target not in STORAGE_CLASSES and target != NO_TARGET:
                raise ConfigurationError(
                    f"unknown storage class {target!r}; "
                    f"expected one of {STORAGE_CLASSES}"
                )
        if not 2 <= self.word_bits <= 62:
            raise ConfigurationError("word_bits must lie in [2, 62]")
        if not 0 <= self.frac_bits < self.word_bits:
            raise ConfigurationError("frac_bits must lie in [0, word_bits)")

    def describe(self) -> str:
        """Stable identifier used in fingerprints and seed derivation."""
        targets = ",".join(sorted(self.targets))
        return (
            f"{self.model}:rate={self.rate:.6g}:targets={targets}"
            f":word={self.word_bits}.{self.frac_bits}:seed={self.seed}"
        )


def _block_digest(data: np.ndarray) -> int:
    """Content hash of an input block, used to derive per-block streams."""
    digest = hashlib.sha256(np.ascontiguousarray(data).tobytes()).digest()
    return int.from_bytes(digest[:8], "little")


class FaultInjector:
    """Deterministic fault injection over the datapath hook protocol.

    One injector serves one decoder/filter *instance* for one fault
    spec.  Attach it via :attr:`ViterbiDecoder.fault_hook` (the decoder
    calls :meth:`begin_block` and the ``on_*`` hooks itself) or through
    :func:`simulate_with_faults` for IIR realizations.

    The injector counts every corrupted bit in :attr:`n_injected`
    (per storage class) so campaigns can report injection totals.
    """

    def __init__(self, spec: FaultSpec, instance: str) -> None:
        self.spec = spec
        self.instance = str(instance)
        #: True when the injector can alter anything at all.
        self.active = spec.rate > 0.0 and any(
            t in STORAGE_CLASSES for t in spec.targets
        )
        self.n_injected: Dict[str, int] = {}
        self._rng: Optional[np.random.Generator] = None
        #: Stuck positions per (class, register-file width):
        #: (word_idx, bit_idx, bit_val) arrays, derived once on demand.
        self._stuck: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # -- block lifecycle -------------------------------------------------

    def begin_block(self, data: np.ndarray) -> None:
        """Start a new input block; derives the block's fault stream.

        The SEU stream is keyed by the *content* of the block, so faults
        do not depend on call order or process placement.
        """
        if not self.active:
            return
        if self.spec.model == "seu":
            self._rng = make_rng(
                derive_seed(
                    self.spec.seed,
                    "faults",
                    self.spec.describe(),
                    self.instance,
                    _block_digest(data),
                )
            )

    # -- datapath hook protocol -----------------------------------------

    def on_path_metrics(self, acc: np.ndarray) -> np.ndarray:
        """Corrupt the accumulated-error registers (frames, states)."""
        return self._corrupt_float(acc, PATH_METRICS)

    def on_branch_metrics(self, metrics: np.ndarray) -> np.ndarray:
        """Corrupt branch-metric words (frames, ..., 2)."""
        return self._corrupt_float(metrics, BRANCH_METRICS)

    def on_traceback(self, decisions: np.ndarray) -> np.ndarray:
        """Corrupt the survivor memory (steps, frames, states) in place.

        Each cell stores one decision bit, so SEU flips the cell and
        stuck-at forces whole survivor columns.
        """
        if not self._enabled(TRACEBACK):
            return decisions
        if self.spec.model == "seu":
            rng = self._require_rng()
            n_cells = decisions.size
            n_faults = int(rng.binomial(n_cells, self.spec.rate))
            if n_faults:
                idx = rng.integers(0, n_cells, size=n_faults)
                decisions.flat[idx] = decisions.flat[idx] ^ 1
                self._count(TRACEBACK, n_faults)
        else:
            width = decisions.shape[-1]
            word_idx, _bits, vals = self._stuck_positions(
                TRACEBACK, width, bits_per_word=1
            )
            decisions[..., word_idx] = vals.astype(decisions.dtype)
            self._count(TRACEBACK, word_idx.size)
        return decisions

    def iir_state_hook(self, state: np.ndarray, n: int) -> np.ndarray:
        """Per-sample corruption of an IIR delay-line state vector."""
        if state.size == 0:
            return state
        return self._corrupt_float(state, IIR_STATE)

    # -- internals -------------------------------------------------------

    def _enabled(self, cls: str) -> bool:
        return self.active and cls in self.spec.targets

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            # Hook used without begin_block (e.g. a bare filter call):
            # fall back to a per-instance stream so behavior stays
            # deterministic for a fixed call sequence.
            self._rng = make_rng(
                derive_seed(
                    self.spec.seed, "faults", self.spec.describe(), self.instance
                )
            )
        return self._rng

    def _count(self, cls: str, n: int) -> None:
        self.n_injected[cls] = self.n_injected.get(cls, 0) + int(n)

    def _corrupt_float(self, arr: np.ndarray, cls: str) -> np.ndarray:
        """Inject into the fixed-point image of a float word file.

        Axis layout: the last axes (everything after the leading frame
        axis, or the whole array for 1-D state vectors) form the
        register file; SEU strikes uniformly across all words of all
        frames, stuck-at pins the same file positions in every frame.
        """
        if not self._enabled(cls):
            return arr
        if self.spec.model == "seu":
            rng = self._require_rng()
            n_faults = int(rng.binomial(arr.size, self.spec.rate))
            if n_faults:
                idx = rng.integers(0, arr.size, size=n_faults)
                bits = rng.integers(0, self.spec.word_bits, size=n_faults)
                ints = self._to_fixed(arr.flat[idx])
                ints ^= np.int64(1) << bits.astype(np.int64)
                arr.flat[idx] = self._from_fixed(ints)
                self._count(cls, n_faults)
        else:
            # Register file = the trailing axes of one frame (the whole
            # array for a 1-D state vector).
            width = arr.size // arr.shape[0] if arr.ndim > 1 else arr.size
            word_idx, bit_idx, vals = self._stuck_positions(
                cls, width, bits_per_word=self.spec.word_bits
            )
            # Mutate through a contiguous alias so reshape never copies
            # the writes away.
            contig = arr if arr.flags["C_CONTIGUOUS"] else np.ascontiguousarray(arr)
            file_view = contig.reshape(-1, width)
            sub = file_view[:, word_idx]
            file_view[:, word_idx] = self._force_bits(sub, bit_idx, vals)
            if contig is not arr:
                arr[...] = contig
            self._count(cls, word_idx.size * file_view.shape[0])
        return arr

    def _stuck_positions(
        self, cls: str, width: int, bits_per_word: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The permanently-stuck (word, bit, value) set of one file."""
        key = (cls, width)
        positions = self._stuck.get(key)
        if positions is None:
            rng = make_rng(
                derive_seed(
                    self.spec.seed,
                    "stuck",
                    self.spec.describe(),
                    self.instance,
                    cls,
                    width,
                )
            )
            n_bits = width * bits_per_word
            n_stuck = max(1, int(round(self.spec.rate * n_bits)))
            n_stuck = min(n_stuck, n_bits)
            positions = (
                rng.integers(0, width, size=n_stuck),
                rng.integers(0, bits_per_word, size=n_stuck),
                rng.integers(0, 2, size=n_stuck),
            )
            self._stuck[key] = positions
        return positions

    # -- fixed-point bit surgery ----------------------------------------

    def _to_fixed(self, values: np.ndarray) -> np.ndarray:
        """Two's-complement ``word_bits`` image of float values (saturating)."""
        scale = float(1 << self.spec.frac_bits)
        half = 1 << (self.spec.word_bits - 1)
        ints = np.clip(np.rint(values * scale), -half, half - 1).astype(np.int64)
        return ints & ((1 << self.spec.word_bits) - 1)

    def _from_fixed(self, ints: np.ndarray) -> np.ndarray:
        scale = float(1 << self.spec.frac_bits)
        half = 1 << (self.spec.word_bits - 1)
        signed = np.where(ints >= half, ints - (1 << self.spec.word_bits), ints)
        return signed.astype(float) / scale

    def _force_bits(
        self, values: np.ndarray, bits: np.ndarray, vals: np.ndarray
    ) -> np.ndarray:
        """Force chosen bits of every row of a (frames, n_stuck) block."""
        ints = self._to_fixed(values)
        masks = np.int64(1) << bits.astype(np.int64)
        set_mask = np.where(vals.astype(bool), masks, 0)
        clear_mask = np.where(vals.astype(bool), 0, masks)
        ints = (ints | set_mask) & ~clear_mask
        return self._from_fixed(ints)


def simulate_with_faults(
    realization, x: np.ndarray, injector: FaultInjector
) -> np.ndarray:
    """Run an IIR realization with state-word fault injection.

    Attaches the injector to the realization's ``fault_hook`` for the
    duration of one ``simulate`` call, deriving the fault stream from
    the input block's content (so results are order-independent).
    """
    x = np.asarray(x, dtype=float)
    injector.begin_block(x)
    realization.fault_hook = injector.iir_state_hook
    try:
        return realization.simulate(x)
    finally:
        realization.fault_hook = None
