"""Dependability campaigns: fault-rate × design-point sweeps.

A campaign measures how gracefully a set of Viterbi design points
degrades under injected hardware faults, DAVOS-style: every cell of the
(design point × storage class × fault rate × Es/N0) grid runs a BER
measurement with a deterministic :class:`~repro.resilience.faults.\
FaultInjector` attached to the decoder, paired against the fault-free
reference of the same cell (same noise realizations, since the noise
streams are derived from the decoder description, not the injector).

Each cell is priced through the standard evaluator machinery —
:class:`~repro.core.parallel.ParallelEvaluator` fans cells out over
worker processes and :class:`~repro.core.evalcache.PersistentEvalCache`
warm-starts re-runs — so a campaign scales exactly like a search.

Per faulty cell the campaign reports the classic failure-mode
classification:

- **masked** — the injected faults did not measurably degrade BER
  (within counting noise of the reference);
- **degraded** — BER got worse but the code still delivers coding gain;
- **decode_failure** — coded BER at or above the uncoded channel BER:
  the decoder output is no better than not decoding at all.

The *critical-bit fraction* of a storage class is the fraction of its
faulty cells that were not masked — which storage needs hardening
(TMR, parity) first.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.evalcache import PersistentEvalCache
from repro.core.evaluation import CachingEvaluator, EvaluationLog
from repro.core.parallel import ParallelEvaluator
from repro.core.parameters import Point, frozen_point
from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.resilience.faults import (
    BRANCH_METRICS,
    FAULT_MODELS,
    NO_TARGET,
    PATH_METRICS,
    STORAGE_CLASSES,
    TRACEBACK,
    FaultInjector,
    FaultSpec,
)
from repro.viterbi.ber import BERSimulator, DEFAULT_SEED
from repro.viterbi.channel import AWGNChannel
from repro.viterbi.encoder import ConvolutionalEncoder
from repro.viterbi.metacore import (
    build_decoder,
    describe_point,
    normalize_viterbi_point,
    polynomials_for_point,
)

#: Cell keys that carry the fault configuration (the rest of a cell
#: point is the Viterbi design point).
CELL_KEYS = ("fault_rate", "fault_target", "es_n0_db")

#: Relative BER margin below which an injected cell counts as masked.
MASKED_MARGIN = 0.10

#: Campaign file schema version.
CAMPAIGN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignConfig:
    """The fault grid and measurement budget of one campaign."""

    model: str = "seu"
    #: Fault intensities to sweep (the 0.0 reference is added implicitly).
    rates: Tuple[float, ...] = (1e-4, 1e-3)
    #: Storage classes injected (one class per cell, so criticality is
    #: attributable per class).
    targets: Tuple[str, ...] = (PATH_METRICS, BRANCH_METRICS, TRACEBACK)
    #: Channel qualities of the BER degradation curves.
    es_n0_db: Tuple[float, ...] = (0.0, 2.0)
    #: Data bits decoded per cell measurement.
    max_bits: int = 24_000
    word_bits: int = 16
    frac_bits: int = 8
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.model not in FAULT_MODELS:
            raise ConfigurationError(
                f"unknown fault model {self.model!r}; expected {FAULT_MODELS}"
            )
        for target in self.targets:
            if target not in STORAGE_CLASSES:
                raise ConfigurationError(
                    f"unknown storage class {target!r}; "
                    f"expected one of {STORAGE_CLASSES}"
                )
        if any(rate <= 0 or rate > 1 for rate in self.rates):
            raise ConfigurationError("campaign rates must lie in (0, 1]")
        if self.max_bits < 512:
            raise ConfigurationError("campaign needs at least 512 bits per cell")

    def describe(self) -> str:
        """Stable string for evaluator fingerprints."""
        return (
            f"model={self.model}"
            f":rates={','.join(f'{r:.6g}' for r in self.rates)}"
            f":targets={','.join(self.targets)}"
            f":snr={','.join(f'{s:.6g}' for s in self.es_n0_db)}"
            f":bits={self.max_bits}"
            f":word={self.word_bits}.{self.frac_bits}"
            f":seed={self.seed}"
        )


class CampaignEvaluator:
    """Price one campaign cell: a faulty (or reference) BER measurement.

    Implements the standard evaluator protocol so the parallel and
    persistent-cache layers apply unchanged.  A cell point is a Viterbi
    design point plus ``fault_rate``/``fault_target``/``es_n0_db``
    coordinates; fidelity is ignored (the campaign budget is fixed).

    Deterministic by construction: the noise stream derives from
    (seed, decoder description, Es/N0, batch) and the fault stream from
    (seed, fault spec, instance, block content), so a cell's metrics do
    not depend on which worker prices it or in what order.
    """

    max_fidelity = 0

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self._decoders: Dict[Tuple, Any] = {}
        self._simulators: Dict[Tuple, BERSimulator] = {}

    def fingerprint(self) -> str:
        import repro

        return f"campaign:v{repro.__version__}:{self.config.describe()}"

    @staticmethod
    def split_cell(cell: Point) -> Tuple[Point, float, str, float]:
        """Separate a cell point into (design point, rate, target, snr)."""
        design = {k: v for k, v in cell.items() if k not in CELL_KEYS}
        return (
            design,
            float(cell["fault_rate"]),
            str(cell["fault_target"]),
            float(cell["es_n0_db"]),
        )

    def _decoder(self, design: Point):
        key = frozen_point(design)
        decoder = self._decoders.get(key)
        if decoder is None:
            decoder = self._decoders[key] = build_decoder(design)
        return decoder

    def _simulator(self, design: Point) -> BERSimulator:
        k = int(design["K"])
        polys = polynomials_for_point(design)
        key = (k, polys)
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = self._simulators[key] = BERSimulator(
                ConvolutionalEncoder(k, polys), seed=self.config.seed
            )
        return simulator

    def evaluate(self, cell: Point, fidelity: int) -> Dict[str, float]:
        design, rate, target, es_n0_db = self.split_cell(cell)
        design = normalize_viterbi_point(design)
        decoder = self._decoder(design)
        injector: Optional[FaultInjector] = None
        if rate > 0.0 and target != NO_TARGET:
            spec = FaultSpec(
                model=self.config.model,
                rate=rate,
                targets=(target,),
                word_bits=self.config.word_bits,
                frac_bits=self.config.frac_bits,
                seed=self.config.seed,
            )
            injector = FaultInjector(spec, instance=describe_point(design))
            decoder.fault_hook = injector
        try:
            # Full budget, no early stop: faulty and reference cells see
            # identical noise realizations, so their BERs pair exactly.
            measured = self._simulator(design).measure(
                decoder,
                es_n0_db,
                max_bits=self.config.max_bits,
                target_errors=None,
            )
        finally:
            decoder.fault_hook = None
        metrics: Dict[str, float] = {
            "ber": measured.errors / measured.bits,
            "errors": float(measured.errors),
            "bits": float(measured.bits),
            "n_injected": 0.0,
        }
        if injector is not None:
            metrics["n_injected"] = float(sum(injector.n_injected.values()))
        return metrics


@dataclass(frozen=True)
class CampaignCell:
    """One priced campaign cell, with its dependability classification."""

    design: Tuple[Tuple[str, Any], ...]
    label: str
    fault_rate: float
    fault_target: str
    es_n0_db: float
    ber: float
    errors: int
    bits: int
    n_injected: int
    ref_ber: float
    uncoded_ber: float
    #: "reference" | "masked" | "degraded" | "decode_failure"
    classification: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": [[k, v] for k, v in self.design],
            "label": self.label,
            "fault_rate": self.fault_rate,
            "fault_target": self.fault_target,
            "es_n0_db": self.es_n0_db,
            "ber": self.ber,
            "errors": self.errors,
            "bits": self.bits,
            "n_injected": self.n_injected,
            "ref_ber": self.ref_ber,
            "uncoded_ber": self.uncoded_ber,
            "classification": self.classification,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignCell":
        return cls(
            design=tuple((str(k), v) for k, v in data["design"]),
            label=str(data["label"]),
            fault_rate=float(data["fault_rate"]),
            fault_target=str(data["fault_target"]),
            es_n0_db=float(data["es_n0_db"]),
            ber=float(data["ber"]),
            errors=int(data["errors"]),
            bits=int(data["bits"]),
            n_injected=int(data["n_injected"]),
            ref_ber=float(data["ref_ber"]),
            uncoded_ber=float(data["uncoded_ber"]),
            classification=str(data["classification"]),
        )


@dataclass
class CampaignResult:
    """All cells of a campaign plus sweep-level accounting."""

    config: CampaignConfig
    cells: List[CampaignCell] = field(default_factory=list)
    persistent_hits: int = 0
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0

    @property
    def faulty_cells(self) -> List[CampaignCell]:
        return [c for c in self.cells if c.classification != "reference"]

    def classification_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.faulty_cells:
            counts[cell.classification] = counts.get(cell.classification, 0) + 1
        return counts

    def critical_fraction(self) -> Dict[str, float]:
        """Non-masked fraction of injected cells, per storage class."""
        totals: Dict[str, int] = {}
        critical: Dict[str, int] = {}
        for cell in self.faulty_cells:
            totals[cell.fault_target] = totals.get(cell.fault_target, 0) + 1
            if cell.classification != "masked":
                critical[cell.fault_target] = (
                    critical.get(cell.fault_target, 0) + 1
                )
        return {
            target: critical.get(target, 0) / total
            for target, total in sorted(totals.items())
        }

    def degradation_curves(
        self,
    ) -> Dict[Tuple[str, str], Dict[float, Dict[float, float]]]:
        """(design label, target) -> {rate -> {Es/N0 -> BER}} curves.

        Rate 0.0 rows are the fault-free references.
        """
        curves: Dict[Tuple[str, str], Dict[float, Dict[float, float]]] = {}
        for cell in self.cells:
            if cell.classification == "reference":
                # The reference row belongs to every target of the design.
                targets = sorted(
                    {c.fault_target for c in self.faulty_cells if c.label == cell.label}
                ) or [NO_TARGET]
            else:
                targets = [cell.fault_target]
            for target in targets:
                curve = curves.setdefault((cell.label, target), {})
                curve.setdefault(cell.fault_rate, {})[cell.es_n0_db] = cell.ber
        return curves

    def total_injected(self) -> int:
        return sum(cell.n_injected for cell in self.cells)

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "config": {
                "model": self.config.model,
                "rates": list(self.config.rates),
                "targets": list(self.config.targets),
                "es_n0_db": list(self.config.es_n0_db),
                "max_bits": self.config.max_bits,
                "word_bits": self.config.word_bits,
                "frac_bits": self.config.frac_bits,
                "seed": self.config.seed,
            },
            "cells": [cell.to_dict() for cell in self.cells],
            "persistent_hits": self.persistent_hits,
            "wall_time_s": round(self.wall_time_s, 6),
            "cpu_time_s": round(self.cpu_time_s, 6),
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignResult":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema") != CAMPAIGN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"campaign file {path} has unsupported schema "
                f"{data.get('schema')!r}"
            )
        raw = data["config"]
        config = CampaignConfig(
            model=str(raw["model"]),
            rates=tuple(float(r) for r in raw["rates"]),
            targets=tuple(str(t) for t in raw["targets"]),
            es_n0_db=tuple(float(s) for s in raw["es_n0_db"]),
            max_bits=int(raw["max_bits"]),
            word_bits=int(raw["word_bits"]),
            frac_bits=int(raw["frac_bits"]),
            seed=int(raw["seed"]),
        )
        return cls(
            config=config,
            cells=[CampaignCell.from_dict(c) for c in data["cells"]],
            persistent_hits=int(data.get("persistent_hits", 0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            cpu_time_s=float(data.get("cpu_time_s", 0.0)),
        )


@dataclass
class Campaign:
    """A fault-injection campaign over a set of Viterbi design points."""

    points: List[Point]
    config: CampaignConfig = field(default_factory=CampaignConfig)
    #: Worker processes for cell evaluation (1 = serial in-process).
    workers: int = 1
    #: Persistent cross-run cache path (None = cold).
    cache_path: Optional[str] = None

    def cells(self) -> List[Point]:
        """The full cell grid, one reference cell per (design, Es/N0)."""
        if not self.points:
            raise ConfigurationError("campaign needs at least one design point")
        cells: List[Point] = []
        for raw in self.points:
            design = normalize_viterbi_point(dict(raw))
            for es_n0_db in self.config.es_n0_db:
                cells.append(
                    {
                        **design,
                        "fault_rate": 0.0,
                        "fault_target": NO_TARGET,
                        "es_n0_db": float(es_n0_db),
                    }
                )
                for target in self.config.targets:
                    for rate in self.config.rates:
                        cells.append(
                            {
                                **design,
                                "fault_rate": float(rate),
                                "fault_target": target,
                                "es_n0_db": float(es_n0_db),
                            }
                        )
        return cells

    def run(self) -> CampaignResult:
        """Price every cell (parallel, cached) and classify the results."""
        evaluator: Any = CampaignEvaluator(self.config)
        parallel: Optional[ParallelEvaluator] = None
        store: Optional[PersistentEvalCache] = None
        log = EvaluationLog()
        registry = get_registry()
        try:
            if self.workers and self.workers > 1:
                parallel = ParallelEvaluator(evaluator, workers=self.workers)
                evaluator = parallel
            if self.cache_path:
                store = PersistentEvalCache(self.cache_path)
            caching = CachingEvaluator(evaluator, log, store=store)
            cells = self.cells()
            with get_tracer().span(
                "campaign.run", cells=len(cells), model=self.config.model
            ) as campaign_span:
                priced = caching.evaluate_many(cells, 0)
                result = self._classify(cells, priced)
                result.persistent_hits = caching.persistent_hits
                result.wall_time_s = log.wall_time_s
                result.cpu_time_s = log.cpu_time_s
                counts = result.classification_counts()
                campaign_span.set(
                    injected=result.total_injected(),
                    persistent_hits=result.persistent_hits,
                    **counts,
                )
            registry.counter("campaign.cells").inc(len(cells))
            registry.counter("campaign.injected").inc(result.total_injected())
            for name, count in counts.items():
                registry.counter(f"campaign.{name}").inc(count)
            return result
        finally:
            if parallel is not None:
                parallel.close()
            if store is not None:
                store.close()

    # ------------------------------------------------------------------

    def _classify(
        self, cells: List[Point], priced: List[Dict[str, float]]
    ) -> CampaignResult:
        """Pair every faulty cell with its reference and classify it."""
        refs: Dict[Tuple, Dict[str, float]] = {}
        for cell, metrics in zip(cells, priced):
            design, rate, _target, es_n0_db = CampaignEvaluator.split_cell(cell)
            if rate == 0.0:
                refs[(frozen_point(design), es_n0_db)] = metrics
        result = CampaignResult(config=self.config)
        for cell, metrics in zip(cells, priced):
            design, rate, target, es_n0_db = CampaignEvaluator.split_cell(cell)
            key = frozen_point(design)
            uncoded = AWGNChannel(es_n0_db).uncoded_ber()
            ber = float(metrics["ber"])
            bits = int(metrics["bits"])
            if rate == 0.0:
                ref_ber = ber
                classification = "reference"
            else:
                ref = refs.get((key, es_n0_db))
                ref_ber = float(ref["ber"]) if ref else math.nan
                classification = self._classify_cell(ber, ref_ber, uncoded, bits)
            result.cells.append(
                CampaignCell(
                    design=key,
                    label=describe_point(design),
                    fault_rate=rate,
                    fault_target=target,
                    es_n0_db=es_n0_db,
                    ber=ber,
                    errors=int(metrics["errors"]),
                    bits=bits,
                    n_injected=int(metrics.get("n_injected", 0.0)),
                    ref_ber=ref_ber,
                    uncoded_ber=uncoded,
                    classification=classification,
                )
            )
        return result

    @staticmethod
    def _classify_cell(
        ber: float, ref_ber: float, uncoded_ber: float, bits: int
    ) -> str:
        """DAVOS-style masked / degraded / decode-failure verdict."""
        # Counting slack: two extra bit errors are within Monte-Carlo
        # noise at these budgets, never evidence of degradation.
        slack = 2.0 / max(bits, 1)
        if math.isnan(ref_ber) or ber <= ref_ber * (1.0 + MASKED_MARGIN) + slack:
            return "masked"
        if ber >= uncoded_ber:
            return "decode_failure"
        return "degraded"
