"""Fault-tolerant evaluator shim: retry, backoff, quarantine.

A long search prices thousands of points through worker processes; one
*poisoned* point (a parameter combination that crashes or hangs the
evaluator) must not take down the whole ``evaluate_many`` batch — nor
should the search re-pay a known-bad point every round.  The
:class:`ResilientEvaluator` wraps any evaluator with:

- **batch survival** — when a batch call raises, the shim falls back to
  pricing the batch one point at a time, so only the poisoned point is
  affected;
- **bounded retry with backoff** — each failing point is retried up to
  ``max_retries`` times with exponential backoff (transient failures
  such as a briefly broken pool heal themselves);
- **quarantine** — a point that exhausts its retries (or exceeds the
  per-point ``timeout_s`` budget) is quarantined: it is answered with
  ``failure_metrics`` (infinitely bad, so the search discards it) and
  never sent to the inner evaluator again.

Retries and quarantines are visible in the observability layer
(``resilience.retry``/``resilience.quarantine`` events and matching
counters), and therefore in the ``trace-report`` summary.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evalcache import evaluator_fingerprint
from repro.core.evaluation import (
    Evaluator,
    Metrics,
    TimedEvaluation,
    evaluate_many_timed,
)
from repro.core.parameters import Point, frozen_point
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event

#: Metrics answered for quarantined points: infeasible on every axis the
#: goals rank by, plus an explicit marker reports can filter on.
DEFAULT_FAILURE_METRICS: Dict[str, float] = {
    "area_mm2": math.inf,
    "ber_violation": math.inf,
    "spec_violation": math.inf,
    "evaluation_failed": 1.0,
}


class ResilientEvaluator:
    """Wrap an evaluator so point failures degrade, not crash, a search.

    Parameters
    ----------
    inner:
        The evaluator to protect.
    max_retries:
        Additional attempts after the first failure of a point (per
        request).  ``0`` quarantines on the first failure.
    backoff_s:
        Sleep before retry ``i`` is ``backoff_s * 2**i`` (0 disables —
        useful in tests).
    timeout_s:
        Per-point wall-clock budget.  The evaluation itself is not
        interrupted (the evaluator may run in this process), but a
        point whose successful evaluation exceeded the budget is
        quarantined afterwards so later rounds never pay it again.
    failure_metrics:
        The record answered for quarantined points.
    """

    def __init__(
        self,
        inner: Evaluator,
        max_retries: int = 2,
        backoff_s: float = 0.1,
        timeout_s: Optional[float] = None,
        failure_metrics: Optional[Metrics] = None,
    ) -> None:
        self.inner = inner
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.timeout_s = timeout_s
        self.failure_metrics = dict(
            failure_metrics if failure_metrics is not None else DEFAULT_FAILURE_METRICS
        )
        #: frozen point -> human-readable reason it was quarantined.
        self.quarantine: Dict[Tuple, str] = {}
        self.n_retries = 0

    # -- evaluator protocol ---------------------------------------------

    @property
    def max_fidelity(self) -> int:
        return self.inner.max_fidelity

    def fingerprint(self) -> str:
        """Delegate: resilience never changes what a point is worth."""
        return evaluator_fingerprint(self.inner)

    def evaluate(self, point: Point, fidelity: int) -> Metrics:
        return self._evaluate_one(point, fidelity).metrics

    def evaluate_many(self, points: Sequence[Point], fidelity: int) -> List[Metrics]:
        return [t.metrics for t in self.evaluate_many_timed(points, fidelity)]

    def evaluate_many_timed(
        self, points: Sequence[Point], fidelity: int
    ) -> List[TimedEvaluation]:
        """Price a batch; quarantined points are answered locally.

        The healthy points go to the inner evaluator as one batch (so a
        parallel inner still fans out).  If that batch call itself
        raises, the shim degrades to per-point evaluation with retry —
        only the poisoned points end up quarantined.
        """
        results: List[Optional[TimedEvaluation]] = [None] * len(points)
        live: List[Tuple[int, Point]] = []
        for index, point in enumerate(points):
            if frozen_point(point) in self.quarantine:
                results[index] = TimedEvaluation(
                    metrics=dict(self.failure_metrics), elapsed_s=0.0
                )
            else:
                live.append((index, point))
        if live:
            try:
                timed = evaluate_many_timed(
                    self.inner, [p for _, p in live], fidelity
                )
                for (index, point), evaluation in zip(live, timed):
                    results[index] = self._postcheck(point, evaluation)
            except Exception as exc:
                trace_event(
                    "resilience.batch_fallback",
                    points=len(live),
                    error=type(exc).__name__,
                )
                get_registry().counter("resilience.batch_fallbacks").inc()
                for index, point in live:
                    results[index] = self._evaluate_one(point, fidelity)
        return results  # type: ignore[return-value]

    # -- internals -------------------------------------------------------

    def _evaluate_one(self, point: Point, fidelity: int) -> TimedEvaluation:
        key = frozen_point(point)
        if key in self.quarantine:
            return TimedEvaluation(metrics=dict(self.failure_metrics), elapsed_s=0.0)
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.n_retries += 1
                get_registry().counter("resilience.retries").inc()
                trace_event(
                    "resilience.retry",
                    attempt=attempt,
                    error=type(last_error).__name__,
                )
                if self.backoff_s:
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            start = time.perf_counter()
            try:
                metrics = self.inner.evaluate(dict(point), fidelity)
            except Exception as exc:
                last_error = exc
                continue
            evaluation = TimedEvaluation(
                metrics=dict(metrics), elapsed_s=time.perf_counter() - start
            )
            return self._postcheck(point, evaluation)
        self._quarantine(
            key, f"failed {self.max_retries + 1} attempts: {last_error!r}"
        )
        return TimedEvaluation(metrics=dict(self.failure_metrics), elapsed_s=0.0)

    def _postcheck(
        self, point: Point, evaluation: TimedEvaluation
    ) -> TimedEvaluation:
        """Quarantine budget-busting points after a successful run.

        The completed result is still used — it was paid for — but the
        point will not be priced again.
        """
        if self.timeout_s is not None and evaluation.elapsed_s > self.timeout_s:
            self._quarantine(
                frozen_point(point),
                f"exceeded {self.timeout_s:.3g}s budget "
                f"({evaluation.elapsed_s:.3g}s)",
            )
        return evaluation

    def _quarantine(self, key: Tuple, reason: str) -> None:
        if key in self.quarantine:
            return
        self.quarantine[key] = reason
        get_registry().counter("resilience.quarantined").inc()
        trace_event(
            "resilience.quarantine",
            point=dict(key),
            reason=reason,
        )

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict resilience accounting (for status endpoints)."""
        return {
            "retries": self.n_retries,
            "quarantined": len(self.quarantine),
            "quarantine_reasons": list(self.quarantine.values()),
        }

    def quarantine_summary(self) -> List[str]:
        """Human-readable quarantine list for reports."""
        lines = []
        for key, reason in self.quarantine.items():
            point = ", ".join(f"{k}={v}" for k, v in key)
            lines.append(f"{{{point}}}: {reason}")
        return lines
