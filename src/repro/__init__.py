"""repro — a reproduction of *MetaCores: Design and Optimization
Techniques* (Meguerdichian, Koushanfar, Mogre, Petranovic, Potkonjak;
DAC 2001).

The package is organized as the paper is:

- :mod:`repro.core` — the MetaCore methodology itself: design-space
  parameterization, objectives/constraints, cost-evaluation engine, and
  the multiresolution design-space search.
- :mod:`repro.viterbi` — the primary driver: a complete Viterbi
  decoding substrate including the paper's new multiresolution Viterbi
  decoding algorithm and a Monte-Carlo BER simulator.
- :mod:`repro.iir` — the validation example: IIR filter design from
  scratch, seven realization structures, and fixed-point effects.
- :mod:`repro.hardware` — the cost-evaluation substrate standing in for
  Trimaran/TR4101 (Viterbi area/throughput) and HYPER (IIR behavioral
  synthesis estimation).
- :mod:`repro.observability` — span tracing, a metrics registry, and
  JSONL run-telemetry export instrumenting the search/evaluation hot
  paths (free when disabled).
"""

__version__ = "1.0.0"

from repro.errors import (
    ConfigurationError,
    DesignSpaceError,
    FilterDesignError,
    InfeasibleSpecError,
    ReproError,
    SynthesisError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DesignSpaceError",
    "InfeasibleSpecError",
    "SynthesisError",
    "FilterDesignError",
]
