"""Classic Viterbi decoder (paper Sec. 3.2).

The decoder performs the two tasks the paper describes: *trellis
update* (add-compare-select over all states for every received symbol
tuple) and *trace-back* (following survivor branches for ``L`` steps
from the state with the smallest accumulated error).

The implementation is vectorized along two axes: all trellis states are
updated with numpy array operations, and many independent frames are
decoded simultaneously (the Monte-Carlo BER simulator feeds batches of
frames).  Trace-back with a genuine sliding depth ``L`` — the design
parameter the paper's search explores — is vectorized over emission
times, so its cost is ``L`` numpy gathers per frame batch rather than
``L`` per decoded bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.viterbi import kernels
from repro.viterbi.kernels import DECODE_KERNELS
from repro.viterbi.metrics import shared_metric_table
from repro.viterbi.quantize import Quantizer
from repro.viterbi.trellis import Trellis

#: Accumulated-error value used for "impossible" initial states.
_UNREACHABLE = 1.0e12


class ViterbiDecoder:
    """Hard- or soft-decision Viterbi decoder.

    Parameters
    ----------
    trellis:
        Precomputed code trellis.
    quantizer:
        Symbol quantizer; its resolution decides hard vs. soft decoding.
    traceback_depth:
        ``L`` — the number of trellis steps followed back from the best
        state before a bit is emitted.  The paper searches multiples of
        ``K`` and observes depths beyond ``7K`` stop improving BER.
    kernel:
        ``"fused"`` (default) uses the precomputed-lookup kernels of
        :mod:`repro.viterbi.kernels` whenever no fault hook is attached;
        ``"reference"`` always runs the step-by-step loop.  Both produce
        bit-identical outputs — the switch exists for A/B debugging and
        benchmarking, and deliberately does not appear in
        :meth:`describe` (same decoder, same results, same seeds).
    """

    def __init__(
        self,
        trellis: Trellis,
        quantizer: Quantizer,
        traceback_depth: int,
        kernel: str = "fused",
    ) -> None:
        if traceback_depth < 1:
            raise ConfigurationError("traceback depth must be at least 1")
        if kernel not in DECODE_KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {DECODE_KERNELS}"
            )
        self.trellis = trellis
        self.quantizer = quantizer
        self.traceback_depth = int(traceback_depth)
        self.kernel = kernel
        self.metric_table = shared_metric_table(trellis, quantizer)
        #: Optional fault-injection hook (see :mod:`repro.resilience`).
        #: When set, the decoder routes its branch-metric, path-metric,
        #: and survivor-memory words through it every trellis step.
        self.fault_hook = None

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------

    def _initial_metrics(self, n_frames: int) -> np.ndarray:
        """Accumulated error metrics before any symbol: state 0 known."""
        acc = np.full((n_frames, self.trellis.n_states), _UNREACHABLE)
        acc[:, 0] = 0.0
        return acc

    def _fused_available(self) -> bool:
        """Whether the precomputed lookup tables exist for this code."""
        return self.metric_table.combo_lut() is not None

    def active_kernel(self) -> str:
        """The kernel a hook-free decode would take right now.

        ``"fused"`` degrades to ``"reference"`` when the metric table is
        too large to precompute; an attached *active* fault hook also
        forces the reference loop, but that is a per-decode condition
        not reflected here.
        """
        if self.kernel == "fused" and self._fused_available():
            return "fused"
        return "reference"

    def _forward(
        self, received: np.ndarray, sigma: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run add-compare-select over a batch of frames.

        ``received`` has shape ``(frames, steps, n_symbols)`` (analog
        samples).  Returns ``(decisions, best)`` where ``decisions`` has
        shape ``(steps, frames, states)`` holding the winning
        predecessor slot (0/1) per state, and ``best`` has shape
        ``(steps, frames)`` holding the state with the smallest
        accumulated error after each step.

        Dispatches to the fused kernel when it is selected, available,
        and no active fault hook needs the step-by-step loop; the two
        paths are bit-identical (tested exhaustively), so which one ran
        is unobservable from the outputs.
        """
        hook = self.fault_hook
        if (
            (hook is None or not getattr(hook, "active", True))
            and self.kernel == "fused"
            and self._fused_available()
        ):
            return self._forward_fused(received, sigma)
        return self._forward_reference(received, sigma)

    def _forward_fused(
        self, received: np.ndarray, sigma: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return kernels.fused_forward(self, received, sigma)

    def _forward_reference(
        self, received: np.ndarray, sigma: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The hookable step-by-step loop (ground truth for the kernels)."""
        n_frames, n_steps, _ = received.shape
        levels = self.quantizer.quantize(received, sigma)
        predecessors = self.trellis.predecessors
        acc = self._initial_metrics(n_frames)
        decisions = np.empty(
            (n_steps, n_frames, self.trellis.n_states), dtype=np.uint8
        )
        best = np.empty((n_steps, n_frames), dtype=np.int64)
        hook = self.fault_hook
        if hook is not None and not getattr(hook, "active", True):
            hook = None  # inert injector: skip the per-step calls entirely
        for t in range(n_steps):
            metrics = self.metric_table.compute(levels[:, t, :])
            if hook is not None:
                metrics = hook.on_branch_metrics(metrics)
            candidates = acc[:, predecessors] + metrics
            slots = np.argmin(candidates, axis=2)
            acc = np.take_along_axis(
                candidates, slots[:, :, np.newaxis], axis=2
            )[:, :, 0]
            if hook is not None:
                acc = hook.on_path_metrics(acc)
            decisions[t] = slots.astype(np.uint8)
            best[t] = np.argmin(acc, axis=1)
            # Renormalize so accumulated errors stay bounded over long
            # frames (the hardware analogue is metric rescaling).
            acc -= acc.min(axis=1, keepdims=True)
        self._final_metrics = acc
        return decisions, best

    # ------------------------------------------------------------------
    # Trace-back
    # ------------------------------------------------------------------

    def _input_bits(self, states: np.ndarray) -> np.ndarray:
        """Input bit that led into each state (top state bit)."""
        shift = max(self.trellis.constraint_length - 2, 0)
        return ((states >> shift) & 1).astype(np.int8)

    def _traceback(
        self, decisions: np.ndarray, best: np.ndarray
    ) -> np.ndarray:
        """Dispatch trace-back to the fused or reference implementation.

        Mirrors the :meth:`_forward` dispatch so one decode runs either
        entirely fused or entirely on the reference path; the two
        trace-backs walk identical survivor branches and return
        identical bits.
        """
        hook = self.fault_hook
        if (
            (hook is None or not getattr(hook, "active", True))
            and self.kernel == "fused"
            and self._fused_available()
        ):
            return kernels.fused_traceback(self, decisions, best)
        return self._traceback_reference(decisions, best)

    def _traceback_reference(
        self, decisions: np.ndarray, best: np.ndarray
    ) -> np.ndarray:
        """Sliding trace-back with depth ``L`` over a decoded batch.

        Bit ``u_tau`` is the top bit of the survivor state at time
        ``tau + 1``; for ``tau <= steps - L`` that state is found by
        walking ``L - 1`` survivor branches back from the best state
        after step ``tau + L - 1``; the trailing ``L - 1`` bits come
        from one final walk from the best end state.
        """
        n_steps, n_frames, _ = decisions.shape
        depth = min(self.traceback_depth, n_steps)
        predecessors = self.trellis.predecessors
        bits = np.empty((n_frames, n_steps), dtype=np.int8)
        frame_idx = np.arange(n_frames)

        n_lead = n_steps - depth + 1
        if n_lead > 0:
            taus = np.arange(n_lead)
            states = best[taus + depth - 1]  # (n_lead, frames)
            for j in range(depth - 1):
                t_idx = taus + depth - 1 - j
                slots = decisions[
                    t_idx[:, np.newaxis], frame_idx[np.newaxis, :], states
                ]
                states = predecessors[states, slots]
            bits[:, :n_lead] = self._input_bits(states).T

        # Final walk for the last depth-1 bits (or all bits when the
        # frame is shorter than the trace-back depth).
        states = best[n_steps - 1]
        stop = max(n_lead, 0)
        for tau in range(n_steps - 1, stop - 1, -1):
            bits[:, tau] = self._input_bits(states)
            slots = decisions[tau, frame_idx, states]
            states = predecessors[states, slots]
        return bits

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def decode(
        self, received: np.ndarray, sigma: Optional[float] = None
    ) -> np.ndarray:
        """Decode analog received symbols back to data bits.

        ``received`` has shape ``(steps, n_symbols)`` for a single frame
        or ``(frames, steps, n_symbols)`` for a batch; the result
        mirrors the leading shape with one bit per step.  ``sigma`` is
        the channel noise level, required by adaptive quantizers.
        """
        received = np.asarray(received, dtype=float)
        squeeze = received.ndim == 2
        if squeeze:
            received = received[np.newaxis]
        if received.ndim != 3 or received.shape[2] != self.trellis.n_symbols:
            raise ConfigurationError(
                "received must have shape (frames, steps, "
                f"{self.trellis.n_symbols})"
            )
        hook = self.fault_hook
        if hook is not None:
            hook.begin_block(received)
        decisions, best = self._forward(received, sigma)
        if hook is not None:
            decisions = hook.on_traceback(decisions)
        bits = self._traceback(decisions, best)
        return bits[0] if squeeze else bits

    def describe(self) -> str:
        """One-line summary used in experiment reports."""
        return (
            f"Viterbi(K={self.trellis.constraint_length}, "
            f"L={self.traceback_depth}, "
            f"R={self.quantizer.bits}bit)"
        )
