"""Monte-Carlo bit-error-rate simulation (paper Sec. 4.2).

The paper measures the application-level performance of every Viterbi
instance by software simulation of the full encode → AWGN → quantize →
decode chain under varying signal-to-noise ratios.  This module provides
that simulator with reproducible seeding, batched frame decoding, early
termination once enough errors have been observed, and Wilson
confidence intervals on every estimate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer, trace_event
from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import binomial_confidence_interval, mean_improvement_percent
from repro.viterbi.channel import AWGNChannel
from repro.viterbi.decoder import ViterbiDecoder
from repro.viterbi.encoder import ConvolutionalEncoder
from repro.viterbi.puncture import PuncturePattern

#: Default master seed so example scripts and benchmarks are repeatable.
DEFAULT_SEED = 20010618  # DAC 2001 opened June 18, 2001.


@dataclass(frozen=True)
class BERPoint:
    """One measured point of a BER curve."""

    es_n0_db: float
    bits: int
    errors: int

    @property
    def ber(self) -> float:
        """The measured bit error rate."""
        return self.errors / self.bits if self.bits else float("nan")

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson confidence interval on the error rate."""
        return binomial_confidence_interval(self.errors, self.bits, z)

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return (
            f"Es/N0={self.es_n0_db:+.1f} dB: BER={self.ber:.3e} "
            f"[{lo:.2e}, {hi:.2e}] ({self.errors}/{self.bits})"
        )


@dataclass
class BERSweep:
    """A BER curve: one decoder measured across an SNR sweep."""

    label: str
    points: List[BERPoint] = field(default_factory=list)

    @property
    def es_n0_db(self) -> List[float]:
        return [p.es_n0_db for p in self.points]

    @property
    def ber(self) -> List[float]:
        return [p.ber for p in self.points]

    def at(self, es_n0_db: float) -> BERPoint:
        """The measured point closest to the requested Es/N0."""
        if not self.points:
            raise ConfigurationError("sweep has no points")
        return min(self.points, key=lambda p: abs(p.es_n0_db - es_n0_db))

    def improvement_over(self, baseline: "BERSweep") -> float:
        """Mean per-point BER improvement (%) relative to ``baseline``.

        This is the statistic behind the paper's "M=4 results in a 64%
        improvement in BER over pure hard-decision decoding".
        """
        return mean_improvement_percent(baseline.ber, self.ber)


class BERSimulator:
    """Monte-Carlo BER measurement for Viterbi decoders.

    Parameters
    ----------
    encoder:
        The convolutional encoder under test.
    frame_length:
        Data bits per simulated frame.  Frames are decoded in parallel
        batches, so this mostly trades memory for vectorization.
    frames_per_batch:
        How many independent frames are decoded simultaneously.
    seed:
        Master seed; every (decoder, Es/N0, batch) tuple derives its own
        independent, reproducible stream from it.
    adaptive_batching:
        When on (default), consecutive seed-batches are generated ahead
        and decoded as one larger frame batch, with the group size
        growing geometrically up to ``max_batch_frames`` frames.  Frame
        decoding is per-frame independent and every seed-batch keeps its
        own RNG stream, so measurements are *exactly* those of
        batch-at-a-time simulation — grouping only amortizes the fixed
        per-trellis-step cost, which is what dominates high-SNR points
        that decode many error-free batches.  Decoders with a fault
        hook attached always run batch-at-a-time (fault streams are
        derived per decoded block).
    max_batch_frames:
        Upper bound on the frames decoded in one call when adaptive
        batching grows the group.  The default keeps the decoder's
        per-step working set (accumulated metrics, candidates, branch
        metrics) cache-resident; growing the group further is measurably
        slower, not faster.
    """

    def __init__(
        self,
        encoder: ConvolutionalEncoder,
        frame_length: int = 512,
        frames_per_batch: int = 32,
        seed: int = DEFAULT_SEED,
        puncture: Optional[PuncturePattern] = None,
        adaptive_batching: bool = True,
        max_batch_frames: int = 256,
    ) -> None:
        if frame_length < 8:
            raise ConfigurationError("frame length must be at least 8 bits")
        if frames_per_batch < 1:
            raise ConfigurationError("need at least one frame per batch")
        if max_batch_frames < 1:
            raise ConfigurationError("max_batch_frames must be at least 1")
        self.encoder = encoder
        self.frame_length = int(frame_length)
        self.frames_per_batch = int(frames_per_batch)
        self.seed = int(seed)
        self.puncture = puncture
        self.adaptive_batching = bool(adaptive_batching)
        self.max_batch_frames = int(max_batch_frames)
        if puncture is not None:
            if puncture.n_symbols != encoder.n_outputs:
                raise ConfigurationError(
                    "puncture pattern width does not match the encoder"
                )
            # Whole puncturing cycles per frame.
            remainder = self.frame_length % puncture.period
            if remainder:
                self.frame_length += puncture.period - remainder

    def _generate_frames(
        self, channel: AWGNChannel, batch_seed: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate one seed-batch; return (data bits, received samples).

        The whole encode → puncture → AWGN chain runs off one RNG stream
        derived from ``batch_seed``, so a seed-batch's frames are the
        same whether it is decoded alone or concatenated with others.
        """
        rng = make_rng(batch_seed)
        bits = rng.integers(
            0, 2, size=(self.frames_per_batch, self.frame_length), dtype=np.int8
        )
        # Terminate every frame (K-1 zero flush bits) so frame tails do
        # not impose an artificial error floor; only the data bits are
        # counted.
        flushed = self.encoder.terminate(bits)
        symbols = self.encoder.encode(flushed)
        steps = flushed.shape[-1]
        if self.puncture is not None:
            pad = (-steps) % self.puncture.period
            if pad:
                symbols = np.concatenate(
                    [symbols, np.zeros(symbols.shape[:-2] + (pad, symbols.shape[-1]), dtype=symbols.dtype)],
                    axis=-2,
                )
                steps += pad
            punctured = self.puncture.puncture(symbols)
            received = channel.transmit(punctured, rng)
            received = self.puncture.depuncture(received, steps)
        else:
            received = channel.transmit(symbols, rng)
        return bits, received

    def _run_batch(
        self,
        decoder: ViterbiDecoder,
        channel: AWGNChannel,
        batch_seed: int,
    ) -> Tuple[int, int]:
        """Simulate one batch of frames; return (errors, bits)."""
        bits, received = self._generate_frames(channel, batch_seed)
        decoded = decoder.decode(received, sigma=channel.sigma)
        data = decoded[..., : self.frame_length]
        errors = int(np.count_nonzero(data != bits))
        return errors, bits.size

    def measure(
        self,
        decoder: ViterbiDecoder,
        es_n0_db: float,
        max_bits: int = 100_000,
        target_errors: Optional[int] = 100,
        seed: Optional[int] = None,
    ) -> BERPoint:
        """Measure BER at one Es/N0.

        Batches are simulated until ``target_errors`` bit errors have
        been seen or ``max_bits`` data bits have been decoded, whichever
        comes first.  Early termination keeps high-SNR points (where
        errors are rare but the estimate is already noisy) from
        dominating run time, exactly like the paper's short low-accuracy
        simulations on the coarse search grid.

        With :attr:`adaptive_batching` on, consecutive seed-batches are
        decoded together in geometrically growing groups; the group is
        accounted seed-batch by seed-batch against the same stop
        conditions, so the returned point (bits, errors, and therefore
        BER) is identical to batch-at-a-time simulation — group sizing
        only changes wall-clock, never the measurement.
        """
        if max_bits < self.frame_length:
            raise ConfigurationError("max_bits smaller than one frame")
        channel = AWGNChannel(es_n0_db)
        master = self.seed if seed is None else int(seed)
        registry = get_registry()
        hook = getattr(decoder, "fault_hook", None)
        # Fault streams derive from each decoded block's content, so a
        # hooked decoder (even an inert one, conservatively) always
        # simulates batch-at-a-time.
        adaptive = self.adaptive_batching and hook is None
        if hook is None or not getattr(hook, "active", True):
            kernel_name = decoder.active_kernel()
        else:
            kernel_name = "reference"
        max_group = max(1, self.max_batch_frames // self.frames_per_batch)
        batch_bits = self.frames_per_batch * self.frame_length
        total_errors = 0
        total_bits = 0
        batch = 0
        early_stop = False
        decoded_frames = 0
        trellis_steps = 0
        decode_s = 0.0
        growth = 1
        with get_tracer().span(
            "ber.measure", es_n0_db=es_n0_db, max_bits=max_bits
        ) as measure_span:
            while total_bits < max_bits:
                size = 1
                if adaptive:
                    # Grow geometrically, but never decode more batches
                    # than the bit budget admits or than the observed
                    # error rate suggests the target still needs.
                    remaining = -((total_bits - max_bits) // batch_bits)
                    size = min(growth, max_group, remaining)
                    if target_errors is not None and total_errors > 0:
                        per_batch = total_errors / batch
                        needed = target_errors - total_errors
                        size = min(size, max(1, math.ceil(needed / per_batch)))
                    if batch > 0 and total_errors == 0:
                        # Error-free so far: an early stop is unlikely,
                        # so bet on decoding the remaining bit budget in
                        # the largest groups the cap allows (the waste
                        # if errors do appear is bounded by one group).
                        growth = max_group
                    else:
                        growth = min(growth * 2, max_group)
                group_bits = []
                group_received = []
                for i in range(size):
                    batch_seed = derive_seed(
                        master,
                        "ber",
                        decoder.describe(),
                        round(es_n0_db, 6),
                        batch + i,
                    )
                    bits_i, received_i = self._generate_frames(
                        channel, batch_seed
                    )
                    group_bits.append(bits_i)
                    group_received.append(received_i)
                received = (
                    group_received[0]
                    if size == 1
                    else np.concatenate(group_received, axis=0)
                )
                start = time.perf_counter()
                decoded = decoder.decode(received, sigma=channel.sigma)
                decode_s += time.perf_counter() - start
                decoded_frames += received.shape[0]
                trellis_steps += received.shape[0] * received.shape[1]
                data = decoded[..., : self.frame_length]
                target_reached = False
                for i, bits_i in enumerate(group_bits):
                    rows = data[
                        i * self.frames_per_batch : (i + 1) * self.frames_per_batch
                    ]
                    total_errors += int(np.count_nonzero(rows != bits_i))
                    total_bits += bits_i.size
                    batch += 1
                    if (
                        target_errors is not None
                        and total_errors >= target_errors
                    ):
                        early_stop = total_bits < max_bits
                        target_reached = True
                        break
                    if total_bits >= max_bits:
                        break  # trailing group batches are discarded
                if target_reached:
                    break
            registry.counter("ber.frames").inc(batch * self.frames_per_batch)
            registry.counter("ber.bits").inc(total_bits)
            registry.counter("ber.decoded_frames").inc(decoded_frames)
            registry.counter("ber.decode_s").inc(decode_s)
            registry.counter("ber.trellis_steps").inc(trellis_steps)
            prefix = f"ber.kernel.{kernel_name}"
            registry.counter(prefix + ".frames").inc(decoded_frames)
            registry.counter(prefix + ".steps").inc(trellis_steps)
            registry.counter(prefix + ".decode_s").inc(decode_s)
            frames_per_sec = (
                decoded_frames / decode_s if decode_s > 0.0 else 0.0
            )
            if frames_per_sec:
                registry.gauge("ber.frames_per_sec").set(frames_per_sec)
            measure_span.set(
                batches=batch,
                bits=total_bits,
                errors=total_errors,
                early_stop=early_stop,
                kernel=kernel_name,
                decoded_frames=decoded_frames,
                frames_per_sec=round(frames_per_sec, 3),
            )
            if early_stop:
                registry.counter("ber.early_stops").inc()
                trace_event(
                    "ber.early_stop",
                    es_n0_db=es_n0_db,
                    bits=total_bits,
                    errors=total_errors,
                )
        return BERPoint(es_n0_db=es_n0_db, bits=total_bits, errors=total_errors)

    def sweep(
        self,
        decoder: ViterbiDecoder,
        es_n0_db_values: Sequence[float],
        max_bits: int = 100_000,
        target_errors: Optional[int] = 100,
        label: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> BERSweep:
        """Measure a full BER curve over an Es/N0 sweep."""
        sweep = BERSweep(label=label or decoder.describe())
        for es_n0_db in es_n0_db_values:
            sweep.points.append(
                self.measure(
                    decoder,
                    es_n0_db,
                    max_bits=max_bits,
                    target_errors=target_errors,
                    seed=seed,
                )
            )
        return sweep
