"""Trellis precomputation for Viterbi decoding (paper Sec. 3.2, Fig. 3).

The trellis is the encoder state-transition diagram unrolled in time.
For decoding we need the *backward* view: for every state, its two
predecessor states, the input bit that caused each transition, and the
channel symbols the encoder would have emitted on that branch.  All of
this is precomputed once per code here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.viterbi.encoder import ConvolutionalEncoder


@dataclass(frozen=True)
class Trellis:
    """Backward-oriented trellis tables for one convolutional code.

    Attributes
    ----------
    n_states:
        Number of trellis states, ``2**(K-1)``.
    n_symbols:
        Channel symbols per branch (``n`` of the rate ``1/n`` code).
    predecessors:
        ``(n_states, 2)`` — the two states with a branch into each state.
    branch_inputs:
        ``(n_states, 2)`` — the encoder input bit on each such branch.
        With the register convention used here this is the same for both
        branches of a state (it is the state's most significant bit),
        but it is stored per-branch for clarity and generality.
    branch_symbols:
        ``(n_states, 2, n_symbols)`` — expected channel symbols per branch.
    """

    constraint_length: int
    polynomials: Tuple[int, ...]
    n_states: int
    n_symbols: int
    predecessors: np.ndarray = field(repr=False)
    branch_inputs: np.ndarray = field(repr=False)
    branch_symbols: np.ndarray = field(repr=False)

    @classmethod
    def from_encoder(cls, encoder: ConvolutionalEncoder) -> "Trellis":
        """Build the backward trellis from an encoder's forward tables."""
        n_states = encoder.n_states
        n_symbols = encoder.n_outputs
        predecessors = np.empty((n_states, 2), dtype=np.int64)
        branch_inputs = np.empty((n_states, 2), dtype=np.int8)
        branch_symbols = np.empty((n_states, 2, n_symbols), dtype=np.int8)
        fill = np.zeros(n_states, dtype=np.int64)
        for state in range(n_states):
            for bit in (0, 1):
                nxt = encoder.next_state(state, bit)
                slot = fill[nxt]
                predecessors[nxt, slot] = state
                branch_inputs[nxt, slot] = bit
                branch_symbols[nxt, slot] = encoder.output_symbols(state, bit)
                fill[nxt] += 1
        if not np.all(fill == 2):
            raise AssertionError("trellis is not 2-regular; encoder tables broken")
        return cls(
            constraint_length=encoder.constraint_length,
            polynomials=encoder.polynomials,
            n_states=n_states,
            n_symbols=n_symbols,
            predecessors=predecessors,
            branch_inputs=branch_inputs,
            branch_symbols=branch_symbols,
        )

    def input_bit_of_state(self, state: np.ndarray) -> np.ndarray:
        """The input bit that *led into* a state.

        With ``next = (u << (K-2)) | (s >> 1)``, the most significant
        state bit is the most recent input, so the bit that produced the
        transition into ``state`` is simply its top bit.
        """
        shift = self.constraint_length - 2
        return (np.asarray(state) >> shift) & 1

    def cache_key(self) -> Tuple[int, Tuple[int, ...]]:
        """The identity of this trellis for memoization purposes."""
        return self.constraint_length, self.polynomials

    def describe(self) -> str:
        """Human-readable branch table (the textual form of Fig. 3)."""
        lines = [
            f"Trellis: K={self.constraint_length}, "
            f"{self.n_states} states, {self.n_symbols} symbols/branch"
        ]
        for state in range(self.n_states):
            for slot in range(2):
                pred = self.predecessors[state, slot]
                bit = self.branch_inputs[state, slot]
                sym = "".join(str(s) for s in self.branch_symbols[state, slot])
                lines.append(
                    f"  {pred:>3} --{bit}/{sym}--> {state:>3}"
                )
        return "\n".join(lines)


@lru_cache(maxsize=64)
def _trellis_for_cached(
    constraint_length: int, polynomials: Tuple[int, ...]
) -> Trellis:
    encoder = ConvolutionalEncoder(constraint_length, polynomials)
    return Trellis.from_encoder(encoder)


def trellis_for(
    constraint_length: int, polynomials: Sequence[int]
) -> Trellis:
    """The (memoized) trellis of a convolutional code.

    Many design points of a search differ only in ``L``/``M`` and share
    a code; building the trellis once per ``(K, polynomials)`` pair
    avoids rebuilding identical tables on every evaluation.  The
    returned :class:`Trellis` is frozen and its arrays are treated as
    read-only by the decoders, so sharing one instance is safe.
    """
    return _trellis_for_cached(int(constraint_length), tuple(polynomials))
