"""Rate-1/n convolutional encoder (paper Sec. 3.1, Fig. 2).

The encoder is a shift register of ``K`` bits (the current input plus
the ``K-1`` previous inputs).  Each output symbol is the XOR of the
register bits selected by one generator polynomial.  The state is the
``K-1`` previous bits with the most recent bit in the most significant
position, so the state transition for input ``u`` from state ``s`` is::

    next_state = (u << (K - 2)) | (s >> 1)

which matches the trellis convention used throughout the decoder.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.viterbi.polynomials import default_polynomials, validate_polynomials


def _parity(values: np.ndarray) -> np.ndarray:
    """Bitwise parity (popcount mod 2) of an integer array."""
    out = np.zeros_like(values)
    work = values.copy()
    while np.any(work):
        out ^= work & 1
        work >>= 1
    return out


class ConvolutionalEncoder:
    """A rate ``1/n`` convolutional encoder.

    Parameters
    ----------
    constraint_length:
        ``K``, the total register length (current bit + K-1 memory bits).
        The paper explores K in {3, ..., 9}.
    polynomials:
        Generator polynomials as integers (conventionally written in
        octal).  Defaults to the best-known rate-1/2 generators for K.
    """

    def __init__(
        self,
        constraint_length: int,
        polynomials: Optional[Sequence[int]] = None,
    ) -> None:
        if constraint_length < 2:
            raise ConfigurationError("constraint length must be at least 2")
        self.constraint_length = int(constraint_length)
        if polynomials is None:
            polynomials = default_polynomials(self.constraint_length)
        self.polynomials: Tuple[int, ...] = validate_polynomials(
            polynomials, self.constraint_length
        )
        self.n_outputs = len(self.polynomials)
        self.n_states = 1 << (self.constraint_length - 1)
        # Precomputed lookup tables: for every (state, input) pair, the
        # next state and the emitted symbols.  These tables are shared
        # with the trellis used by the decoder.
        self._next_state, self._outputs = self._build_tables()

    @property
    def rate(self) -> float:
        """Code rate k/n (k=1 for this encoder family)."""
        return 1.0 / self.n_outputs

    def _build_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        k = self.constraint_length
        states = np.arange(self.n_states, dtype=np.int64)
        next_state = np.empty((self.n_states, 2), dtype=np.int64)
        outputs = np.empty((self.n_states, 2, self.n_outputs), dtype=np.int8)
        for bit in (0, 1):
            register = (bit << (k - 1)) | states
            next_state[:, bit] = (bit << (k - 2)) | (states >> 1)
            for j, poly in enumerate(self.polynomials):
                outputs[:, bit, j] = _parity(register & poly)
        return next_state, outputs

    def next_state(self, state: int, bit: int) -> int:
        """State reached from ``state`` on input ``bit``."""
        return int(self._next_state[state, bit])

    def output_symbols(self, state: int, bit: int) -> Tuple[int, ...]:
        """Channel symbols emitted from ``state`` on input ``bit``."""
        return tuple(int(v) for v in self._outputs[state, bit])

    def encode(self, bits: np.ndarray, initial_state: int = 0) -> np.ndarray:
        """Encode a bit array.

        ``bits`` may be 1-D (one message) or 2-D ``(frames, length)``;
        the result appends an axis of size ``n`` holding the channel
        symbols per input bit, i.e. shape ``(..., length, n)``.

        Each output stream is a mod-2 convolution of the input with one
        generator polynomial, so the whole encode is a handful of
        shifted XORs over the bit array instead of a per-bit register
        walk (see :meth:`_encode_stepwise`, the definitional loop this
        is tested against).
        """
        bits = np.asarray(bits)
        if bits.ndim not in (1, 2):
            raise ConfigurationError("bits must be a 1-D or 2-D array")
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ConfigurationError("bits must be 0/1 valued")
        if initial_state < 0 or initial_state >= self.n_states:
            raise ConfigurationError("initial_state out of range")
        squeeze = bits.ndim == 1
        frames = bits.reshape(1, -1) if squeeze else bits
        n_frames, length = frames.shape
        k = self.constraint_length
        # Register bit p at time t holds input u[t - (k - 1 - p)];
        # the k-1 inputs "before" the frame come from initial_state,
        # whose bit i is u[i - (k - 1)].
        padded = np.empty((n_frames, k - 1 + length), dtype=np.int8)
        for i in range(k - 1):
            padded[:, i] = (initial_state >> i) & 1
        padded[:, k - 1 :] = frames
        symbols = np.zeros((n_frames, length, self.n_outputs), dtype=np.int8)
        for j, poly in enumerate(self.polynomials):
            for d in range(k):
                if (poly >> (k - 1 - d)) & 1:
                    symbols[:, :, j] ^= padded[:, k - 1 - d : k - 1 - d + length]
        return symbols[0] if squeeze else symbols

    def _encode_stepwise(
        self, bits: np.ndarray, initial_state: int = 0
    ) -> np.ndarray:
        """Definitional per-bit register walk (ground truth for encode)."""
        bits = np.asarray(bits)
        squeeze = bits.ndim == 1
        frames = bits.reshape(1, -1) if squeeze else bits
        n_frames, length = frames.shape
        state = np.full(n_frames, int(initial_state), dtype=np.int64)
        symbols = np.empty((n_frames, length, self.n_outputs), dtype=np.int8)
        for t in range(length):
            bit = frames[:, t].astype(np.int64)
            symbols[:, t, :] = self._outputs[state, bit]
            state = self._next_state[state, bit]
        return symbols[0] if squeeze else symbols

    def terminate(self, bits: np.ndarray) -> np.ndarray:
        """Append the K-1 zero flush bits that return the encoder to state 0."""
        bits = np.asarray(bits)
        tail_shape = bits.shape[:-1] + (self.constraint_length - 1,)
        tail = np.zeros(tail_shape, dtype=bits.dtype)
        return np.concatenate([bits, tail], axis=-1)

    def __repr__(self) -> str:
        polys = ",".join(format(p, "o") for p in self.polynomials)
        return (
            f"ConvolutionalEncoder(K={self.constraint_length}, "
            f"G=({polys}) octal, rate=1/{self.n_outputs})"
        )
