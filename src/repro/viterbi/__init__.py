"""Viterbi decoding substrate and the multiresolution Viterbi MetaCore.

Implements the full simulation chain of the paper's primary driver:
convolutional encoding, BPSK/AWGN transmission, hard / fixed / adaptive
quantization, classic Viterbi decoding, the new multiresolution Viterbi
decoding algorithm (Sec. 3.3), and Monte-Carlo BER measurement.
"""

from repro.viterbi.polynomials import (
    BEST_RATE_HALF,
    BEST_RATE_THIRD,
    default_polynomials,
    parse_octal,
    to_octal,
)
from repro.viterbi.encoder import ConvolutionalEncoder
from repro.viterbi.trellis import Trellis, trellis_for
from repro.viterbi.channels import (
    BinarySymmetricChannel,
    RayleighFadingChannel,
)
from repro.viterbi.channel import (
    AWGNChannel,
    bpsk_modulate,
    es_n0_db_to_linear,
    es_n0_linear_to_db,
    noise_sigma,
)
from repro.viterbi.quantize import (
    AdaptiveQuantizer,
    FixedQuantizer,
    HardQuantizer,
    Quantizer,
    make_quantizer,
)
from repro.viterbi.diagram import encoder_diagram, trellis_section_diagram
from repro.viterbi.metrics import BranchMetricTable, shared_metric_table
from repro.viterbi.kernels import DECODE_KERNELS
from repro.viterbi.decoder import ViterbiDecoder
from repro.viterbi.multires import (
    NORMALIZATION_METHODS,
    MultiresolutionViterbiDecoder,
)
from repro.viterbi.puncture import (
    PuncturePattern,
    STANDARD_PATTERNS,
    standard_pattern,
)
from repro.viterbi.ber import BERPoint, BERSimulator, BERSweep, DEFAULT_SEED
from repro.viterbi.tailbiting import decode_tailbiting, encode_tailbiting
from repro.viterbi.bounds import (
    DistanceSpectrum,
    distance_spectrum,
    estimate_ber,
    pairwise_error_hard,
    pairwise_error_multires,
    pairwise_error_soft,
)
from repro.viterbi.metacore import (
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    build_decoder,
    describe_point,
    instance_params,
    normalize_viterbi_point,
    traceback_depth,
    viterbi_design_space,
)

__all__ = [
    "BinarySymmetricChannel",
    "RayleighFadingChannel",
    "decode_tailbiting",
    "encode_tailbiting",
    "encoder_diagram",
    "trellis_section_diagram",
    "trellis_for",
    "shared_metric_table",
    "PuncturePattern",
    "STANDARD_PATTERNS",
    "standard_pattern",
    "DistanceSpectrum",
    "distance_spectrum",
    "estimate_ber",
    "pairwise_error_hard",
    "pairwise_error_multires",
    "pairwise_error_soft",
    "ViterbiMetaCore",
    "ViterbiMetacoreEvaluator",
    "ViterbiSpec",
    "build_decoder",
    "describe_point",
    "instance_params",
    "normalize_viterbi_point",
    "traceback_depth",
    "viterbi_design_space",
    "BEST_RATE_HALF",
    "BEST_RATE_THIRD",
    "default_polynomials",
    "parse_octal",
    "to_octal",
    "ConvolutionalEncoder",
    "Trellis",
    "AWGNChannel",
    "bpsk_modulate",
    "es_n0_db_to_linear",
    "es_n0_linear_to_db",
    "noise_sigma",
    "AdaptiveQuantizer",
    "FixedQuantizer",
    "HardQuantizer",
    "Quantizer",
    "make_quantizer",
    "BranchMetricTable",
    "DECODE_KERNELS",
    "ViterbiDecoder",
    "MultiresolutionViterbiDecoder",
    "NORMALIZATION_METHODS",
    "BERPoint",
    "BERSimulator",
    "BERSweep",
    "DEFAULT_SEED",
]
